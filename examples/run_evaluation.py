"""Rerun the paper's full evaluation: Table 1, Figure 6, Figure 7.

Loads all seven reconstructed dataset pairs, runs both the semantic
approach and the RIC-based baseline on every benchmark mapping case, and
prints the regenerated exhibits. Equivalent to
``python -m repro.evaluation.harness --details``.

Run:  python examples/run_evaluation.py
"""

from repro.evaluation import (
    render_case_details,
    render_figure6,
    render_figure7,
    render_table1,
    run_all,
)


def main() -> None:
    results = run_all()
    print(render_table1(results))
    print()
    print(render_figure6(results))
    print()
    print(render_figure7(results))
    print()
    print(render_case_details(results))


if __name__ == "__main__":
    main()
