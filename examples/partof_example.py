"""The paper's Example 1.3 — partOf semantics prioritize candidates.

The source has two indistinguishable functional relationships between
Faculty and Department — ``chairOf`` (a **partOf** relationship) and
``deanOf`` (plain). The target's ``foo`` is partOf. Cardinality alone
cannot tell the two candidates apart; the semantic type can.

Run:  python examples/partof_example.py
"""

from repro.datasets.paper_examples import partof_example
from repro.discovery import discover_mappings


def source_tables(candidate):
    return sorted({atom.bare_predicate for atom in candidate.source_query.body})


def main() -> None:
    scenario = partof_example(target_is_partof=True)
    print("Target relationship 'foo' is partOf.")
    result = discover_mappings(
        scenario.source, scenario.target, scenario.correspondences
    )
    print(f"Candidates: {len(result)}")
    for candidate in result:
        print(f"  {candidate.to_tgd('M')}")
    print("  → ⟨deanOf, foo⟩ was eliminated; only ⟨chairOf, foo⟩ remains.\n")

    plain = partof_example(target_is_partof=False)
    result = discover_mappings(
        plain.source, plain.target, plain.correspondences
    )
    print("With a plain target relationship, both candidates are plausible:")
    for candidate in result:
        print(f"  {candidate.to_tgd('M')}")


if __name__ == "__main__":
    main()
