"""The full two-phase pipeline: match columns, then derive mappings.

The paper assumes correspondences come from a matcher (phase one) and
contributes the derivation of mapping expressions (phase two). This
example runs both phases over the reconstructed 3Sdb pair: the built-in
name-based matcher proposes correspondences (with a couple of synonyms a
curator would supply), and the semantic mapper interprets each proposed
group.

Run:  python examples/match_and_map.py
"""

from repro.discovery import discover_mappings
from repro.datasets.registry import load_dataset
from repro.matching import as_correspondence_set, suggest_correspondences


def main() -> None:
    pair = load_dataset("3Sdb")
    synonyms = {
        "gname": "genename",
        "bstissue": "tissue",
        "sciname": "resname",
        "ttype": "atype",
        "sdate": "edate",
    }
    suggestions = suggest_correspondences(
        pair.source, pair.target, synonyms=synonyms, threshold=0.8
    )
    print(f"Matcher proposed {len(suggestions)} correspondences:")
    for suggestion in suggestions:
        print(f"  {suggestion}")

    # Interpret pairs of related suggestions together, the way a user
    # would group them in a mapping tool.
    groups = [
        ["sample.tissue ↔ biosample.bstissue", "gene.genename ↔ gene2.gname2"],
        ["assay.atype ↔ test.ttype", "experiment.edate ↔ study.sdate"],
    ]
    by_text = {str(s.correspondence): s for s in suggestions}
    for group in groups:
        chosen = [by_text[text] for text in group if text in by_text]
        if len(chosen) < 2:
            print(f"\n(skipping group {group}: matcher missed a pair)")
            continue
        correspondences = as_correspondence_set(chosen)
        print(f"\nInterpreting {correspondences}:")
        result = discover_mappings(pair.source, pair.target, correspondences)
        for index, candidate in enumerate(result, start=1):
            print(f"  {candidate.to_tgd(f'M{index}')}")


if __name__ == "__main__":
    main()
