"""Quickstart: discover a schema mapping from conceptual models.

Builds two tiny independently designed schemas (a publisher's catalog vs
a retailer's inventory), derives each schema *and its table semantics*
from its conceptual model with er2rel, states two column
correspondences, and lets the semantic mapper discover the GLAV mapping.

Run:  python examples/quickstart.py
"""

from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.discovery import discover_mappings
from repro.semantics import design_schema


def main() -> None:
    # -- Source: the publisher's catalog ---------------------------------
    publisher_cm = ConceptualModel("catalog")
    publisher_cm.add_class("Title", attributes=["isbn", "name"], key=["isbn"])
    publisher_cm.add_class("Imprint", attributes=["label"], key=["label"])
    publisher_cm.add_relationship(
        "releasedUnder", "Title", "Imprint", "1..1", "0..*"
    )
    source = design_schema(publisher_cm, "catalog")
    print("SOURCE SCHEMA")
    print(source.schema.describe())
    print()

    # -- Target: the retailer's inventory --------------------------------
    retailer_cm = ConceptualModel("inventory")
    retailer_cm.add_class("Product", attributes=["sku", "descr"], key=["sku"])
    retailer_cm.add_class("Brand", attributes=["bname"], key=["bname"])
    retailer_cm.add_relationship("soldAs", "Product", "Brand", "1..1", "0..*")
    target = design_schema(retailer_cm, "inventory")
    print("TARGET SCHEMA")
    print(target.schema.describe())
    print()

    # -- Correspondences: what a matcher would give us -------------------
    correspondences = CorrespondenceSet.parse(
        [
            "title.name <-> product.descr",
            "imprint.label <-> brand.bname",
        ]
    )
    print("CORRESPONDENCES")
    for correspondence in correspondences:
        print(f"  {correspondence}")
    print()

    # -- Discovery --------------------------------------------------------
    result = discover_mappings(source.semantics, target.semantics, correspondences)
    print(
        f"DISCOVERED {len(result)} MAPPING CANDIDATE(S) "
        f"in {result.elapsed_seconds * 1000:.1f} ms"
    )
    for index, candidate in enumerate(result, start=1):
        print(f"  {candidate.to_tgd(f'M{index}')}")


if __name__ == "__main__":
    main()
