"""Data exchange over a reconstructed benchmark pair.

Generates a consistent synthetic instance of the Hotel source schema,
discovers the mappings for every benchmark case, executes them as
source-to-target tgds, and materializes the target database — the "data
exchange" application that motivates mapping discovery in the paper's
introduction.

Run:  python examples/data_exchange_demo.py
"""

from repro.datasets.instances import generate_instance
from repro.datasets.registry import load_dataset
from repro.discovery import discover_mappings
from repro.mappings import certain_rows, exchange


def main() -> None:
    pair = load_dataset("Hotel")
    source_instance = generate_instance(pair.source.schema, rows_per_table=4)
    print(
        f"Synthetic source instance: {source_instance.size()} rows over "
        f"{len(pair.source.schema)} tables (consistent: "
        f"{source_instance.is_consistent()})"
    )

    tgds = []
    for mapping_case in pair.cases:
        result = discover_mappings(
            pair.source, pair.target, mapping_case.correspondences
        )
        best = result.best()
        tgds.append(best.to_tgd(mapping_case.case_id))
        print(f"\n[{mapping_case.case_id}]")
        print(f"  {tgds[-1]}")

    target_instance = exchange(tgds, source_instance, pair.target.schema)
    print("\nExchanged target instance:")
    for table in pair.target.schema:
        total = target_instance.size(table.name)
        complete = len(certain_rows(target_instance, table.name))
        if total:
            print(
                f"  {table.name:<12} {total:>3} rows "
                f"({complete} without labeled nulls)"
            )
    print("\nSample of the 'property' table:")
    for row in target_instance.rows("property")[:5]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
