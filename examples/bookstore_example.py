"""The paper's Example 1.1 / 3.2, end to end — including data exchange.

Shows the headline contrast:

* the RIC-based baseline produces only the partial mappings M1–M4
  (Skolems needed for the missing halves of each target tuple);
* the semantic approach composes ``writes`` with ``soldAt`` into the
  natural mapping M5 pairing authors with bookstores stocking their
  books;
* executing both on a concrete source instance shows M5 filling complete
  target tuples where the baseline mappings leave labeled nulls.

Run:  python examples/bookstore_example.py
"""

from repro.baseline import discover_ric_mappings
from repro.datasets.paper_examples import bookstore_example
from repro.discovery import discover_mappings
from repro.mappings import certain_rows, exchange
from repro.relational import Instance


def main() -> None:
    scenario = bookstore_example()
    print("Example 1.1 — correspondences:")
    for correspondence in scenario.correspondences:
        print(f"  {correspondence}")
    print()

    print("RIC-BASED TECHNIQUE (Clio-style):")
    ric = discover_ric_mappings(
        scenario.source.schema,
        scenario.target.schema,
        scenario.correspondences,
    )
    for index, candidate in enumerate(ric, start=1):
        print(f"  {candidate.to_tgd(f'M{index}')}")
    print(
        "  → none of these pairs an author with the bookstores that stock\n"
        "    their books (each covers a single correspondence).\n"
    )

    print("SEMANTIC APPROACH:")
    semantic = discover_mappings(
        scenario.source, scenario.target, scenario.correspondences
    )
    m5 = semantic.best()
    print(f"  {m5.to_tgd('M5')}")
    print()

    # ------------------------------------------------------------------
    # Data exchange: run both mapping sets over an instance.
    # ------------------------------------------------------------------
    instance = Instance(scenario.source.schema)
    instance.add_all("person", [("Atwood",), ("Borges",)])
    instance.add_all("book", [("b1",), ("b2",)])
    instance.add_all("writes", [("Atwood", "b1"), ("Borges", "b2")])
    instance.add_all("bookstore", [("s1",), ("s2",)])
    instance.add_all("soldat", [("b1", "s1"), ("b2", "s1"), ("b2", "s2")])

    target = exchange(
        [m5.to_tgd("M5")], instance, scenario.target.schema
    )
    print("M5 exchanged over a sample instance → hasbooksoldat:")
    for row in target.rows("hasbooksoldat"):
        print(f"  {row}")
    print(
        f"  ({len(certain_rows(target, 'hasbooksoldat'))} complete tuples, "
        f"no labeled nulls)"
    )

    baseline_target = exchange(
        [candidate.to_tgd(f"M{i}") for i, candidate in enumerate(ric, 1)],
        instance,
        scenario.target.schema,
    )
    nulls = [
        row
        for row in baseline_target.rows("hasbooksoldat")
        if row not in certain_rows(baseline_target, "hasbooksoldat")
    ]
    print(
        f"\nBaseline mappings exchanged → {baseline_target.size('hasbooksoldat')}"
        f" tuples, {len(nulls)} of them with labeled nulls, e.g.:"
    )
    for row in nulls[:3]:
        print(f"  {row}")


if __name__ == "__main__":
    main()
