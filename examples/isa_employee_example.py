"""The paper's Example 1.2 — merging ISA siblings invisible to RICs.

The source encodes an Employee hierarchy as one table per subclass
(``programmer``, ``engineer``); the target encodes the same hierarchy as
one wide ``employee`` table. Crucially, the two databases use different
identifiers (``ssn`` vs ``eid``), so the keys do not correspond and the
RIC-based technique has no constraint connecting the two source tables.
The superclass in the conceptual model makes the connection visible.

Run:  python examples/isa_employee_example.py
"""

from repro.baseline import discover_ric_mappings
from repro.datasets.paper_examples import employee_example
from repro.discovery import discover_mappings


def main() -> None:
    scenario = employee_example()
    print("Source schema:")
    print(scenario.source.schema.describe())
    print("\nTarget schema:")
    print(scenario.target.schema.describe())
    print("\nCorrespondences (names match; ssn/eid do NOT correspond):")
    for correspondence in scenario.correspondences:
        print(f"  {correspondence}")

    print("\nRIC-BASED TECHNIQUE:")
    ric = discover_ric_mappings(
        scenario.source.schema,
        scenario.target.schema,
        scenario.correspondences,
    )
    for index, candidate in enumerate(ric, start=1):
        print(f"  {candidate.to_tgd(f'R{index}')}")
    print(
        "  → (programmer, employee) and (engineer, employee) separately;\n"
        "    the information about engineer-programmers is never merged."
    )

    print("\nSEMANTIC APPROACH:")
    semantic = discover_mappings(
        scenario.source, scenario.target, scenario.correspondences
    )
    for candidate in semantic:
        print(f"  {candidate.to_tgd('M')}")
    print(
        "  → one mapping joining programmer and engineer on the shared\n"
        "    ssn key, discovered through the invisible Employee superclass."
    )

    # The disjointness variant: if Engineer and Programmer were declared
    # disjoint, the merging tree would denote the empty class.
    from repro.datasets.paper_examples import employee_example as build

    disjoint = build(disjoint_subclasses=True)
    filtered = discover_mappings(
        disjoint.source, disjoint.target, disjoint.correspondences
    )
    merged = [
        candidate
        for candidate in filtered
        if {"engineer", "programmer"}
        <= {atom.bare_predicate for atom in candidate.source_query.body}
    ]
    print(
        f"\nWith disjoint(Engineer, Programmer): {len(merged)} merging "
        f"candidates survive (the tree is inconsistent and is eliminated)."
    )


if __name__ == "__main__":
    main()
