"""Recovering semantics for a legacy schema, then discovering mappings.

The paper's pipeline assumes table semantics exist; when they don't, a
companion tool recovers them from the bare schema plus an existing CM.
This example plays that scenario: the Network source schema arrives as
*plain DDL* (no semantics), gets parsed, anchored against the networkA
ontology by the heuristic recoverer, and then drives the same mapping
discovery as hand-curated semantics would.

Run:  python examples/legacy_recovery.py
"""

from repro.datasets.registry import load_dataset
from repro.discovery import SemanticMapper
from repro.relational.ddl import emit_ddl, parse_ddl
from repro.semantics import recover_semantics


def main() -> None:
    pair = load_dataset("Network")

    # Pretend the source arrives as bare DDL from a legacy database.
    ddl = emit_ddl(pair.source.schema)
    legacy_schema = parse_ddl(ddl, schema_name="networkA")
    print(
        f"Parsed legacy schema: {len(legacy_schema)} tables, "
        f"{len(legacy_schema.rics)} foreign keys — no semantics attached."
    )

    report = recover_semantics(legacy_schema, pair.source.model)
    print(
        f"Recovered semantics for "
        f"{len(report.semantics.tables_with_semantics())}/"
        f"{len(legacy_schema)} tables "
        f"(skipped: {report.skipped_tables or 'none'}, "
        f"unmapped columns: {report.unmapped_columns or 'none'})"
    )
    tree = report.semantics.tree("interface")
    print("\nRecovered s-tree for 'interface':")
    print(tree.describe())

    # The recovered semantics drive discovery exactly like curated ones.
    case = next(
        c for c in pair.cases if c.case_id == "network-router-switch-merge"
    )
    result = SemanticMapper(
        report.semantics, pair.target, case.correspondences
    ).discover()
    print(f"\n[{case.case_id}] with recovered source semantics:")
    for candidate in result:
        print(f"  {candidate.to_tgd('M')}")


if __name__ == "__main__":
    main()
