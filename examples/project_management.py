"""The paper's Example 3.1 — Case A.1's anchored functional tree.

The target table ``proj(pnum, dept, emp)`` is an anchored s-tree rooted
at Proj; the source root corresponding to the anchor is Project, and the
minimal functional tree from it composes ``controlledBy`` with
``hasManager``: each project's managing employee is the manager of its
controlling department.

Run:  python examples/project_management.py
"""

from repro.datasets.paper_examples import project_example
from repro.discovery import discover_mappings
from repro.mappings import query_to_algebra


def main() -> None:
    scenario = project_example()
    print("Source schema:")
    print(scenario.source.schema.describe())
    print("\nTarget schema:")
    print(scenario.target.schema.describe())

    result = discover_mappings(
        scenario.source, scenario.target, scenario.correspondences
    )
    candidate = result.best()
    print(f"\nDiscovered in {result.elapsed_seconds * 1000:.1f} ms:")
    print(f"  {candidate.to_tgd('M')}")

    algebra = query_to_algebra(
        candidate.source_query, scenario.source.schema
    )
    print("\nSource expression as relational algebra:")
    print(f"  {algebra.render()}")


if __name__ == "__main__":
    main()
