"""CM graphs: the labeled directed graphs compiled from conceptual models.

Per Section 2 of the paper, a CM graph has a *class node* per class, an
*attribute node* per (class, attribute) pair, and directed edges:

* for each binary relationship ``p`` from ``C1`` to ``C2``: an edge labeled
  ``p`` from ``C1`` to ``C2`` **and** an inverse edge labeled ``p⁻`` from
  ``C2`` to ``C1``;
* for each attribute ``f`` of ``C``: a functional edge labeled ``f`` from
  ``C`` to the attribute node;
* for each ``C1`` ISA ``C2``: an edge labeled ``isa`` with cardinality
  ``1..1`` forward and ``0..1`` inverse (plus the inverse edge ``isa⁻``).

*Functional edges* — upper-bound 1 in the traversal direction — are the
edges minimal functional trees may use (Section 3.2).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterator

import networkx as nx

from repro.exceptions import ConceptualModelError
from repro.cm.cardinality import Cardinality, ConnectionCategory
from repro.cm.model import ConceptualModel, ISA_LABEL, SemanticType

#: Suffix marking inverse-direction edge labels, e.g. ``writes⁻``.
INVERSE_MARK = "⁻"


def attribute_node_id(class_name: str, attribute: str) -> str:
    """The node id of an attribute node, ``"Class.attr"``."""
    return f"{class_name}.{attribute}"


@dataclass(frozen=True)
class CMEdge:
    """One directed edge of a CM graph.

    ``forward_card`` bounds targets-per-source along this edge's direction
    (the edge is *functional* iff its upper bound is 1); ``backward_card``
    bounds the inverse. ``base_name`` is the underlying relationship name,
    shared by an edge and its inverse.
    """

    label: str
    source: str
    target: str
    kind: str  # "relationship" | "role" | "isa" | "attribute"
    forward_card: Cardinality
    backward_card: Cardinality
    semantic_type: SemanticType = SemanticType.PLAIN
    is_inverse: bool = False
    base_name: str = ""

    KIND_RELATIONSHIP = "relationship"
    KIND_ROLE = "role"
    KIND_ISA = "isa"
    KIND_ATTRIBUTE = "attribute"

    @property
    def is_functional(self) -> bool:
        """Functional in the traversal (source→target) direction."""
        return self.forward_card.is_functional

    @property
    def is_isa(self) -> bool:
        return self.kind == self.KIND_ISA

    @property
    def is_attribute(self) -> bool:
        return self.kind == self.KIND_ATTRIBUTE

    @property
    def category(self) -> ConnectionCategory:
        return ConnectionCategory.of(self.forward_card, self.backward_card)

    def reversed(self) -> "CMEdge":
        """The same edge traversed the other way."""
        if self.is_inverse:
            label = self.label[: -len(INVERSE_MARK)]
        else:
            label = self.label + INVERSE_MARK
        return replace(
            self,
            label=label,
            source=self.target,
            target=self.source,
            forward_card=self.backward_card,
            backward_card=self.forward_card,
            is_inverse=not self.is_inverse,
        )

    def __str__(self) -> str:
        arrow = "->-" if self.is_functional else "---"
        return f"{self.source} ---{self.label}{arrow} {self.target}"


class CMGraph:
    """The compiled graph of a :class:`ConceptualModel`.

    Construction materializes both directions of every relationship and
    ISA link, so traversal code never needs to special-case inverses.
    """

    def __init__(self, model: ConceptualModel) -> None:
        self.model = model
        self._graph = nx.MultiDiGraph()
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        for cls in self.model.classes.values():
            self._graph.add_node(cls.name, kind="class", reified=cls.reified)
            for attr in cls.attributes:
                node = attribute_node_id(cls.name, attr)
                self._graph.add_node(node, kind="attribute", owner=cls.name)
                edge = CMEdge(
                    label=attr,
                    source=cls.name,
                    target=node,
                    kind=CMEdge.KIND_ATTRIBUTE,
                    forward_card=Cardinality(1, 1),
                    backward_card=Cardinality(0, None),
                    base_name=attr,
                )
                self._add_edge(edge)
        for rel in self.model.relationships.values():
            kind = CMEdge.KIND_ROLE if rel.is_role else CMEdge.KIND_RELATIONSHIP
            forward = CMEdge(
                label=rel.name,
                source=rel.domain,
                target=rel.range,
                kind=kind,
                forward_card=rel.to_card,
                backward_card=rel.from_card,
                semantic_type=rel.semantic_type,
                base_name=rel.name,
            )
            self._add_edge(forward)
            self._add_edge(forward.reversed())
        for sub, sup in sorted(self.model.isa_links):
            forward = CMEdge(
                label=ISA_LABEL,
                source=sub,
                target=sup,
                kind=CMEdge.KIND_ISA,
                forward_card=Cardinality(1, 1),
                backward_card=Cardinality(0, 1),
                base_name=ISA_LABEL,
            )
            self._add_edge(forward)
            self._add_edge(forward.reversed())

    def _add_edge(self, edge: CMEdge) -> None:
        self._graph.add_edge(edge.source, edge.target, key=edge.label, edge=edge)

    # ------------------------------------------------------------------
    # Nodes
    # ------------------------------------------------------------------
    def has_node(self, node: str) -> bool:
        return self._graph.has_node(node)

    def class_nodes(self) -> tuple[str, ...]:
        """Class node names, in model declaration order."""
        return self.model.class_names()

    def attribute_nodes(self) -> tuple[str, ...]:
        return tuple(
            sorted(
                n
                for n, data in self._graph.nodes(data=True)
                if data["kind"] == "attribute"
            )
        )

    def is_class_node(self, node: str) -> bool:
        return (
            self._graph.has_node(node)
            and self._graph.nodes[node]["kind"] == "class"
        )

    def is_attribute_node(self, node: str) -> bool:
        return (
            self._graph.has_node(node)
            and self._graph.nodes[node]["kind"] == "attribute"
        )

    def is_reified(self, node: str) -> bool:
        """True for class nodes standing for reified relationships."""
        return bool(
            self._graph.has_node(node)
            and self._graph.nodes[node].get("reified", False)
        )

    def attribute_owner(self, attr_node: str) -> str:
        """The class node owning an attribute node."""
        if not self.is_attribute_node(attr_node):
            raise ConceptualModelError(f"{attr_node!r} is not an attribute node")
        return self._graph.nodes[attr_node]["owner"]

    # ------------------------------------------------------------------
    # Edges
    # ------------------------------------------------------------------
    def edges(self) -> Iterator[CMEdge]:
        """All directed edges (both directions of every relationship)."""
        for _, _, data in self._graph.edges(data=True):
            yield data["edge"]

    def edges_from(
        self,
        node: str,
        functional_only: bool = False,
        include_attributes: bool = False,
    ) -> tuple[CMEdge, ...]:
        """Outgoing edges of ``node``, deterministically ordered.

        Attribute edges are excluded by default because connection
        discovery runs over class nodes only.
        """
        if not self._graph.has_node(node):
            raise ConceptualModelError(f"CM graph has no node {node!r}")
        result = []
        for _, _, data in self._graph.out_edges(node, data=True):
            edge: CMEdge = data["edge"]
            if edge.is_attribute and not include_attributes:
                continue
            if functional_only and not edge.is_functional:
                continue
            result.append(edge)
        return tuple(sorted(result, key=lambda e: (e.label, e.target)))

    def edge(self, source: str, label: str, target: str | None = None) -> CMEdge:
        """Look up the edge with ``label`` leaving ``source``.

        ISA edges all share the ``isa``/``isa⁻`` labels, so when a class
        has several sub- or superclasses the ``target`` argument must
        disambiguate; an ambiguous lookup without it is an error.
        """
        matches = [
            data["edge"]
            for _, edge_target, key, data in self._graph.out_edges(
                source, keys=True, data=True
            )
            if key == label and (target is None or edge_target == target)
        ]
        if not matches:
            raise ConceptualModelError(
                f"no edge labeled {label!r} leaving node {source!r}"
                + (f" toward {target!r}" if target else "")
            )
        if len(matches) > 1:
            raise ConceptualModelError(
                f"edge label {label!r} leaving {source!r} is ambiguous "
                f"(targets {sorted(e.target for e in matches)}); pass target"
            )
        return matches[0]

    def edges_between(self, source: str, target: str) -> tuple[CMEdge, ...]:
        """All directed edges from ``source`` to ``target``."""
        if not self._graph.has_edge(source, target):
            return ()
        return tuple(
            sorted(
                (data["edge"] for data in self._graph[source][target].values()),
                key=lambda e: e.label,
            )
        )

    def attribute_edge(self, class_name: str, attribute: str) -> CMEdge:
        """The edge from a class node to one of its attribute nodes."""
        return self.edge(class_name, attribute)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------
    def functional_edges_from(self, node: str) -> tuple[CMEdge, ...]:
        """Outgoing non-attribute functional edges (tree-growing steps)."""
        return self.edges_from(node, functional_only=True)

    def degree(self, node: str) -> int:
        """Number of outgoing non-attribute edges."""
        return len(self.edges_from(node))

    def size(self) -> tuple[int, int]:
        """(number of class nodes, number of attribute nodes)."""
        classes = sum(
            1 for _, d in self._graph.nodes(data=True) if d["kind"] == "class"
        )
        attributes = self._graph.number_of_nodes() - classes
        return classes, attributes

    def describe(self) -> str:
        """Multi-line dump of nodes and forward edges."""
        lines = [f"CM graph of {self.model.name}:"]
        for node in self.class_nodes():
            marker = "◇" if self.is_reified(node) else ""
            lines.append(f"  node {node}{marker}")
        for edge in sorted(
            self.edges(), key=lambda e: (e.source, e.label, e.target)
        ):
            if edge.is_inverse or edge.is_attribute:
                continue
            lines.append(f"  {edge}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        classes, attributes = self.size()
        return (
            f"CMGraph({self.model.name!r}, classes={classes}, "
            f"attributes={attributes})"
        )
