"""The conceptual modeling language (CML) of the paper.

A :class:`ConceptualModel` captures the common features of EER and UML:

* *classes* (entity sets) with simple single-valued attributes, some of
  which may be designated *key* (identifier) attributes;
* *binary relationships* with ``min..max`` cardinality constraints on both
  ends and an optional semantic type (e.g. **partOf**);
* *ISA* (subclass) links, with optional *disjointness* and *completeness*
  (cover) constraints among subclasses;
* *reified relationships* — classes standing for n-ary or attributed
  relationships, connected to their participants by functional *roles*
  (Section 3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import ConceptualModelError
from repro.cm.cardinality import Cardinality, ConnectionCategory, ZERO_MANY


class SemanticType(enum.Enum):
    """Semantic flavor of a relationship, used by compatibility checks.

    The paper's Example 1.3 uses **partOf** to disambiguate otherwise
    indistinguishable functional relationships.
    """

    PLAIN = "plain"
    PART_OF = "partOf"


@dataclass(frozen=True)
class CMClass:
    """A class (entity set) with attributes and an optional key.

    ``reified=True`` marks classes standing for reified relationships —
    the diamond-tagged ``Sell◇`` style nodes of Section 3.3.
    """

    name: str
    attributes: tuple[str, ...] = ()
    key: tuple[str, ...] = ()
    reified: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConceptualModelError("class name must be non-empty")
        if len(set(self.attributes)) != len(self.attributes):
            raise ConceptualModelError(
                f"class {self.name!r} repeats attributes: {self.attributes}"
            )
        missing = [a for a in self.key if a not in self.attributes]
        if missing:
            raise ConceptualModelError(
                f"key of class {self.name!r} mentions unknown attributes "
                f"{missing}"
            )

    def __str__(self) -> str:
        suffix = "◇" if self.reified else ""
        return f"{self.name}{suffix}"


@dataclass(frozen=True)
class Relationship:
    """A directed binary relationship ``domain --name--> range``.

    ``to_card`` bounds how many *range* objects one *domain* object relates
    to (so the relationship is functional domain→range iff
    ``to_card.upper == 1``); ``from_card`` bounds the inverse.

    ``is_role=True`` marks the functional links from a reified relationship
    class to its participants.
    """

    name: str
    domain: str
    range: str
    to_card: Cardinality = ZERO_MANY
    from_card: Cardinality = ZERO_MANY
    semantic_type: SemanticType = SemanticType.PLAIN
    is_role: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConceptualModelError("relationship name must be non-empty")

    @property
    def is_functional(self) -> bool:
        """Functional in the domain→range direction."""
        return self.to_card.is_functional

    @property
    def is_inverse_functional(self) -> bool:
        return self.from_card.is_functional

    @property
    def is_many_many(self) -> bool:
        return not self.is_functional and not self.is_inverse_functional

    @property
    def category(self) -> ConnectionCategory:
        """Connection category read in the domain→range direction."""
        return ConnectionCategory.of(self.to_card, self.from_card)

    def __str__(self) -> str:
        return (
            f"{self.domain} --{self.name}[{self.from_card}/{self.to_card}]"
            f"--> {self.range}"
        )


#: The label used for ISA edges everywhere in the library.
ISA_LABEL = "isa"


class ConceptualModel:
    """A mutable container for a CM, validated on every addition.

    >>> cm = ConceptualModel("books")
    >>> _ = cm.add_class("Person", attributes=["pname"], key=["pname"])
    >>> _ = cm.add_class("Book", attributes=["bid"], key=["bid"])
    >>> _ = cm.add_relationship("writes", "Person", "Book",
    ...                         to_card="0..*", from_card="1..*")
    >>> cm.relationship("writes").is_many_many
    True
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ConceptualModelError("model name must be non-empty")
        self.name = name
        self._classes: dict[str, CMClass] = {}
        self._relationships: dict[str, Relationship] = {}
        self._isa: set[tuple[str, str]] = set()
        self._disjoint: list[frozenset[str]] = []
        self._covers: list[tuple[str, frozenset[str]]] = []

    # ------------------------------------------------------------------
    # Classes
    # ------------------------------------------------------------------
    def add_class(
        self,
        name: str,
        attributes: Sequence[str] = (),
        key: Sequence[str] = (),
        reified: bool = False,
    ) -> CMClass:
        """Declare a class; duplicate names are rejected."""
        if name in self._classes:
            raise ConceptualModelError(
                f"model {self.name!r} already has a class {name!r}"
            )
        cls = CMClass(name, tuple(attributes), tuple(key), reified)
        self._classes[name] = cls
        return cls

    def cm_class(self, name: str) -> CMClass:
        try:
            return self._classes[name]
        except KeyError:
            raise ConceptualModelError(
                f"model {self.name!r} has no class {name!r}"
            ) from None

    def has_class(self, name: str) -> bool:
        return name in self._classes

    def class_names(self) -> tuple[str, ...]:
        return tuple(self._classes)

    @property
    def classes(self) -> Mapping[str, CMClass]:
        return dict(self._classes)

    def is_reified(self, name: str) -> bool:
        return self.cm_class(name).reified

    # ------------------------------------------------------------------
    # Relationships
    # ------------------------------------------------------------------
    def add_relationship(
        self,
        name: str,
        domain: str,
        range: str,
        to_card: str | Cardinality = "0..*",
        from_card: str | Cardinality = "0..*",
        semantic_type: SemanticType = SemanticType.PLAIN,
        is_role: bool = False,
    ) -> Relationship:
        """Declare a binary relationship between existing classes."""
        if name in self._relationships:
            raise ConceptualModelError(
                f"model {self.name!r} already has a relationship {name!r}"
            )
        if name == ISA_LABEL:
            raise ConceptualModelError(
                f"{ISA_LABEL!r} is reserved for subclass links"
            )
        self.cm_class(domain)
        self.cm_class(range)
        rel = Relationship(
            name,
            domain,
            range,
            _as_cardinality(to_card),
            _as_cardinality(from_card),
            semantic_type,
            is_role,
        )
        self._relationships[name] = rel
        return rel

    def add_reified_relationship(
        self,
        name: str,
        roles: Mapping[str, str],
        attributes: Sequence[str] = (),
        role_cards: Mapping[str, str | Cardinality] | None = None,
        semantic_type: SemanticType = SemanticType.PLAIN,
    ) -> CMClass:
        """Declare an n-ary / attributed relationship in reified form.

        Creates a reified class ``name`` plus one functional *role*
        relationship per entry of ``roles`` (role name → participant
        class). ``role_cards`` optionally bounds, per role, how many
        relationship instances a single participant joins (the cardinality
        on the role inverse — ``0..1`` marks "participates at most once").
        """
        if not roles:
            raise ConceptualModelError(
                f"reified relationship {name!r} needs at least one role"
            )
        reified = self.add_class(name, attributes=attributes, reified=True)
        cards = dict(role_cards or {})
        for role_name, participant in roles.items():
            inverse = _as_cardinality(cards.pop(role_name, "0..*"))
            self.add_relationship(
                role_name,
                name,
                participant,
                to_card="1..1",
                from_card=inverse,
                semantic_type=semantic_type,
                is_role=True,
            )
        if cards:
            raise ConceptualModelError(
                f"role_cards mention unknown roles {sorted(cards)}"
            )
        return reified

    def relationship(self, name: str) -> Relationship:
        try:
            return self._relationships[name]
        except KeyError:
            raise ConceptualModelError(
                f"model {self.name!r} has no relationship {name!r}"
            ) from None

    def has_relationship(self, name: str) -> bool:
        return name in self._relationships

    @property
    def relationships(self) -> Mapping[str, Relationship]:
        return dict(self._relationships)

    def relationships_of(self, class_name: str) -> tuple[Relationship, ...]:
        """Relationships whose domain or range is ``class_name``."""
        self.cm_class(class_name)
        return tuple(
            rel
            for rel in self._relationships.values()
            if class_name in (rel.domain, rel.range)
        )

    def roles_of(self, reified_name: str) -> tuple[Relationship, ...]:
        """The role relationships of a reified class, in insertion order."""
        cls = self.cm_class(reified_name)
        if not cls.reified:
            raise ConceptualModelError(f"{reified_name!r} is not reified")
        return tuple(
            rel
            for rel in self._relationships.values()
            if rel.is_role and rel.domain == reified_name
        )

    # ------------------------------------------------------------------
    # ISA, disjointness, covers
    # ------------------------------------------------------------------
    def add_isa(self, sub: str, super: str) -> None:
        """Declare ``sub`` ISA ``super``. Cycles are rejected."""
        self.cm_class(sub)
        self.cm_class(super)
        if sub == super:
            raise ConceptualModelError(f"class {sub!r} cannot ISA itself")
        if (sub, super) in self._isa:
            return
        self._isa.add((sub, super))
        if sub in self.superclasses(sub):
            self._isa.discard((sub, super))
            raise ConceptualModelError(
                f"adding {sub!r} ISA {super!r} would create an ISA cycle"
            )

    def add_disjointness(self, classes: Iterable[str]) -> None:
        """Declare pairwise disjointness among the given classes."""
        group = frozenset(classes)
        if len(group) < 2:
            raise ConceptualModelError(
                "disjointness needs at least two classes"
            )
        for name in group:
            self.cm_class(name)
        self._disjoint.append(group)

    def add_cover(self, super: str, subs: Iterable[str]) -> None:
        """Declare that ``subs`` cover ``super`` (completeness)."""
        sub_set = frozenset(subs)
        self.cm_class(super)
        for name in sub_set:
            if (name, super) not in self._isa:
                raise ConceptualModelError(
                    f"cover of {super!r} lists {name!r}, which is not a "
                    f"declared subclass"
                )
        self._covers.append((super, sub_set))

    @property
    def isa_links(self) -> frozenset[tuple[str, str]]:
        return frozenset(self._isa)

    @property
    def disjointness_groups(self) -> tuple[frozenset[str], ...]:
        return tuple(self._disjoint)

    @property
    def covers(self) -> tuple[tuple[str, frozenset[str]], ...]:
        return tuple(self._covers)

    def direct_superclasses(self, name: str) -> tuple[str, ...]:
        self.cm_class(name)
        return tuple(sorted(sup for sub, sup in self._isa if sub == name))

    def direct_subclasses(self, name: str) -> tuple[str, ...]:
        self.cm_class(name)
        return tuple(sorted(sub for sub, sup in self._isa if sup == name))

    def superclasses(self, name: str) -> frozenset[str]:
        """All strict ancestors of ``name`` under ISA (transitive)."""
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for sub, sup in self._isa:
                if sub == current and sup not in seen:
                    seen.add(sup)
                    frontier.append(sup)
        return frozenset(seen)

    def subclasses(self, name: str) -> frozenset[str]:
        """All strict descendants of ``name`` under ISA (transitive)."""
        seen: set[str] = set()
        frontier = [name]
        while frontier:
            current = frontier.pop()
            for sub, sup in self._isa:
                if sup == current and sub not in seen:
                    seen.add(sub)
                    frontier.append(sub)
        return frozenset(seen)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line human-readable dump of the model."""
        lines = [f"conceptual model {self.name}:"]
        for cls in self._classes.values():
            attrs = ", ".join(
                f"_{a}_" if a in cls.key else a for a in cls.attributes
            )
            lines.append(f"  class {cls}({attrs})")
        for rel in self._relationships.values():
            lines.append(f"  {rel}")
        for sub, sup in sorted(self._isa):
            lines.append(f"  {sub} ISA {sup}")
        for group in self._disjoint:
            lines.append(f"  disjoint({', '.join(sorted(group))})")
        for sup, subs in self._covers:
            lines.append(f"  cover({sup} = {' ∪ '.join(sorted(subs))})")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"ConceptualModel({self.name!r}, classes={len(self._classes)}, "
            f"relationships={len(self._relationships)})"
        )


def _as_cardinality(value: str | Cardinality) -> Cardinality:
    if isinstance(value, Cardinality):
        return value
    return Cardinality.parse(value)
