"""Reification transforms (Section 3.3).

N-ary relationships, relationships with attributes, and — as an algorithmic
convenience the paper adopts — many-to-many binary relationships can be
*reified*: the relationship becomes a class tagged ``◇`` connected to its
participants by functional roles.

:func:`reify_relationship` rewrites one binary relationship of a model into
reified form; :func:`auto_reify_many_many` applies it to every many-to-many
binary relationship. Both return a **new** model (inputs are never
mutated) together with a :class:`ReificationMap` that lets downstream code
translate reified-form atoms back to the original binary predicate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import ConceptualModelError
from repro.cm.model import ConceptualModel

#: Suffixes for the two auto-generated roles of a reified binary relationship.
DOMAIN_ROLE_SUFFIX = "#d"
RANGE_ROLE_SUFFIX = "#r"


@dataclass(frozen=True)
class ReifiedBinary:
    """Bookkeeping for one reified binary relationship."""

    relationship: str
    reified_class: str
    domain_role: str
    range_role: str
    domain: str
    range: str


@dataclass
class ReificationMap:
    """Maps reified classes/roles back to their original relationships."""

    entries: dict[str, ReifiedBinary] = field(default_factory=dict)

    def add(self, entry: ReifiedBinary) -> None:
        self.entries[entry.reified_class] = entry

    def is_reified_class(self, name: str) -> bool:
        return name in self.entries

    def original(self, reified_class: str) -> ReifiedBinary:
        try:
            return self.entries[reified_class]
        except KeyError:
            raise ConceptualModelError(
                f"{reified_class!r} is not a reified binary relationship"
            ) from None

    def merge(self, other: "ReificationMap") -> None:
        self.entries.update(other.entries)


def _copy_model(model: ConceptualModel, skip_relationships: frozenset[str]) -> ConceptualModel:
    clone = ConceptualModel(model.name)
    for cls in model.classes.values():
        clone.add_class(cls.name, cls.attributes, cls.key, cls.reified)
    for rel in model.relationships.values():
        if rel.name in skip_relationships:
            continue
        clone.add_relationship(
            rel.name,
            rel.domain,
            rel.range,
            rel.to_card,
            rel.from_card,
            rel.semantic_type,
            rel.is_role,
        )
    for sub, sup in sorted(model.isa_links):
        clone.add_isa(sub, sup)
    for group in model.disjointness_groups:
        clone.add_disjointness(group)
    for sup, subs in model.covers:
        clone.add_cover(sup, subs)
    return clone


def reify_relationship(
    model: ConceptualModel, relationship_name: str
) -> tuple[ConceptualModel, ReificationMap]:
    """Rewrite one binary relationship into reified form.

    The relationship ``p`` from ``C1`` to ``C2`` becomes a reified class
    ``p`` with functional roles ``p#d → C1`` and ``p#r → C2``. Role
    inverse cardinalities carry the original participation bounds so the
    connection category is preserved: traversing ``p#d⁻`` then ``p#r``
    composes to exactly the original category of ``p``.
    """
    rel = model.relationship(relationship_name)
    if rel.is_role:
        raise ConceptualModelError(
            f"role {relationship_name!r} cannot itself be reified"
        )
    clone = _copy_model(model, frozenset({relationship_name}))
    reified = clone.add_reified_relationship(
        rel.name,
        roles={
            rel.name + DOMAIN_ROLE_SUFFIX: rel.domain,
            rel.name + RANGE_ROLE_SUFFIX: rel.range,
        },
        role_cards={
            # Number of p-instances one domain object joins = number of
            # range partners it has (to_card), and vice versa.
            rel.name + DOMAIN_ROLE_SUFFIX: rel.to_card,
            rel.name + RANGE_ROLE_SUFFIX: rel.from_card,
        },
        semantic_type=rel.semantic_type,
    )
    mapping = ReificationMap()
    mapping.add(
        ReifiedBinary(
            relationship=rel.name,
            reified_class=reified.name,
            domain_role=rel.name + DOMAIN_ROLE_SUFFIX,
            range_role=rel.name + RANGE_ROLE_SUFFIX,
            domain=rel.domain,
            range=rel.range,
        )
    )
    return clone, mapping


def auto_reify_many_many(
    model: ConceptualModel,
) -> tuple[ConceptualModel, ReificationMap]:
    """Reify every many-to-many binary relationship of ``model``.

    The paper chooses to "represent many-to-many binary relationships ...
    in reified form" so the discovery algorithm can treat them uniformly
    with n-ary relationships.
    """
    current = model
    combined = ReificationMap()
    for name in sorted(model.relationships):
        rel = model.relationship(name)
        if rel.is_role or not rel.is_many_many:
            continue
        current, mapping = reify_relationship(current, name)
        combined.merge(mapping)
    return current, combined
