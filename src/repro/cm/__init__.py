"""Conceptual-model substrate: CML, CM graphs, reification, reasoning."""

from repro.cm.cardinality import (
    MANY,
    Cardinality,
    ConnectionCategory,
    categories_compatible,
)
from repro.cm.model import (
    CMClass,
    ConceptualModel,
    ISA_LABEL,
    Relationship,
    SemanticType,
)
from repro.cm.graph import CMEdge, CMGraph, INVERSE_MARK, attribute_node_id
from repro.cm.reasoner import CMReasoner
from repro.cm.reify import (
    ReificationMap,
    ReifiedBinary,
    auto_reify_many_many,
    reify_relationship,
)
from repro.cm.dot import cm_graph_to_dot, stree_to_dot
from repro.cm.serialize import model_from_dict, model_to_dict

__all__ = [
    "MANY",
    "Cardinality",
    "ConnectionCategory",
    "categories_compatible",
    "CMClass",
    "ConceptualModel",
    "ISA_LABEL",
    "Relationship",
    "SemanticType",
    "CMEdge",
    "CMGraph",
    "INVERSE_MARK",
    "attribute_node_id",
    "CMReasoner",
    "ReificationMap",
    "ReifiedBinary",
    "auto_reify_many_many",
    "reify_relationship",
    "cm_graph_to_dot",
    "stree_to_dot",
    "model_from_dict",
    "model_to_dict",
]
