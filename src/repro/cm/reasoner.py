"""Reasoning over conceptual models and CM-graph paths.

Bundles the semantic checks the discovery algorithm relies on:

* ISA-aware disjointness (two classes are disjoint when declared so, or
  when they specialize declared-disjoint classes);
* cardinality composition and connection category of a path of edges;
* the paper's *false-query* filter — a path that climbs an ISA edge and
  immediately descends an ISA⁻ edge into a disjoint sibling denotes the
  empty class and must be eliminated (Section 3.2);
* counting *direction reversals* (lossy joins) along a path (Section 3.3).
"""

from __future__ import annotations

from functools import reduce
from typing import Sequence

from repro.cm.cardinality import Cardinality, ConnectionCategory
from repro.cm.graph import CMEdge
from repro.cm.model import ConceptualModel
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters


def _edge_key_tuple(edges: Sequence[CMEdge]) -> tuple[tuple[str, str, str], ...]:
    """Frozen per-edge identity used as a memo key.

    ``(source, label, target)`` identifies an edge uniquely within one CM
    graph (labels carry the inverse mark), and both consistency checks
    only read fields determined by that triple.
    """
    return tuple((edge.source, edge.label, edge.target) for edge in edges)


class CMReasoner:
    """Semantic queries over one conceptual model.

    Consistency checks are memoized on frozen edge-key tuples; the memos
    assume the model is no longer mutated (invalidation by immutability —
    construct a fresh reasoner if you must edit the model afterwards).
    """

    def __init__(self, model: ConceptualModel) -> None:
        self.model = model
        self._path_consistency: dict[tuple, bool] = {}
        self._tree_consistency: dict[tuple, bool] = {}

    @classmethod
    def shared(cls, model: ConceptualModel) -> "CMReasoner":
        """The memo-sharing reasoner of ``model``.

        Cached on the model object itself so the memo's lifetime matches
        the model's. With the perf layer disabled a fresh reasoner is
        returned and nothing is cached.
        """
        if not perf_config.enabled():
            return cls(model)
        reasoner = getattr(model, "_shared_reasoner", None)
        if reasoner is None:
            reasoner = cls(model)
            model._shared_reasoner = reasoner
        return reasoner

    # ------------------------------------------------------------------
    # ISA and disjointness
    # ------------------------------------------------------------------
    def ancestors_or_self(self, name: str) -> frozenset[str]:
        return self.model.superclasses(name) | {name}

    def is_subclass_of(self, sub: str, sup: str) -> bool:
        """Reflexive-transitive ISA check."""
        return sup in self.ancestors_or_self(sub)

    def are_disjoint(self, first: str, second: str) -> bool:
        """Whether two classes can have no common instance.

        Declared disjointness is inherited: if ``disjoint(A, B)`` holds and
        ``A' ISA A``, ``B' ISA B``, then ``A'`` and ``B'`` are disjoint —
        unless one class specializes the other (then they trivially share
        instances of the subclass).
        """
        if first == second:
            return False
        if self.is_subclass_of(first, second) or self.is_subclass_of(
            second, first
        ):
            return False
        first_up = self.ancestors_or_self(first)
        second_up = self.ancestors_or_self(second)
        for group in self.model.disjointness_groups:
            hits_first = group & first_up
            hits_second = group & second_up
            # Need two *different* group members covering the two sides.
            if hits_first and hits_second and (hits_first | hits_second) > hits_first:
                return True
            if hits_first and hits_second and (hits_first | hits_second) > hits_second:
                return True
        return False

    # ------------------------------------------------------------------
    # Path composition
    # ------------------------------------------------------------------
    @staticmethod
    def compose_forward(edges: Sequence[CMEdge]) -> Cardinality:
        """Composed targets-per-source cardinality along a path."""
        if not edges:
            return Cardinality(1, 1)
        return reduce(
            Cardinality.compose, (edge.forward_card for edge in edges)
        )

    @staticmethod
    def compose_backward(edges: Sequence[CMEdge]) -> Cardinality:
        """Composed sources-per-target cardinality along a path."""
        if not edges:
            return Cardinality(1, 1)
        return reduce(
            Cardinality.compose,
            (edge.backward_card for edge in reversed(edges)),
        )

    @classmethod
    def path_category(cls, edges: Sequence[CMEdge]) -> ConnectionCategory:
        """Connection category of the composed path.

        Composing ``writes`` with ``soldAt`` in Example 1.1 yields
        many-many, which is what makes the composition compatible with the
        many-many target ``hasBookSoldAt``.
        """
        return ConnectionCategory.of(
            cls.compose_forward(edges), cls.compose_backward(edges)
        )

    @staticmethod
    def path_is_functional(edges: Sequence[CMEdge]) -> bool:
        """True when every edge is functional in the traversal direction."""
        return all(edge.is_functional for edge in edges)

    @staticmethod
    def direction_reversals(edges: Sequence[CMEdge]) -> int:
        """Number of lossy-join points along a path (Section 3.3).

        A reversal happens where the path stops being functional and then
        would need to "fan out" again: concretely, every maximal functional
        run after a non-functional step, and every non-functional step
        after a functional run, mark places where the corresponding join is
        lossy. We count the number of switches between functional and
        non-functional traversal, which the paper minimizes.
        """
        reversals = 0
        previous: bool | None = None
        for edge in edges:
            current = edge.is_functional
            if previous is not None and current != previous:
                reversals += 1
            previous = current
        return reversals

    # ------------------------------------------------------------------
    # Consistency of paths and trees
    # ------------------------------------------------------------------
    def path_is_consistent(self, edges: Sequence[CMEdge]) -> bool:
        """Reject paths denoting necessarily-empty classes.

        The paper's rule: a CSG containing an ISA edge from ``C`` up to a
        parent followed by an ISA⁻ edge down to a class ``D`` disjoint from
        ``C`` is equivalent to *false*. We check every up-run/down-run pair:
        after climbing from ``C``, descending into ``D`` requires ``C`` and
        ``D`` to be satisfiable together.
        """
        if not perf_config.enabled():
            return self._path_is_consistent(edges)
        key = _edge_key_tuple(edges)
        cached = self._path_consistency.get(key)
        if cached is not None:
            perf_counters.record("path_consistency_cache_hits")
            return cached
        perf_counters.record("path_consistency_cache_misses")
        result = self._path_is_consistent(edges)
        self._path_consistency[key] = result
        return result

    def _path_is_consistent(self, edges: Sequence[CMEdge]) -> bool:
        for index in range(len(edges) - 1):
            first, second = edges[index], edges[index + 1]
            up = first.is_isa and not first.is_inverse
            down = second.is_isa and second.is_inverse
            if up and down:
                origin, destination = first.source, second.target
                if self.are_disjoint(origin, destination):
                    return False
        return True

    def tree_is_consistent(self, edges: Sequence[CMEdge]) -> bool:
        """Consistency check for a tree given as an edge set.

        Beyond the path rule, a node that is simultaneously constrained to
        lie in two disjoint classes via chains of ISA⁻ edges is
        inconsistent: if two ISA⁻ edges leave the same node into disjoint
        subclasses on the same root-to-leaf path, the tree denotes false.
        This conservative check walks all consecutive pairs.
        """
        if not perf_config.enabled():
            return self._tree_is_consistent(edges)
        key = _edge_key_tuple(edges)
        cached = self._tree_consistency.get(key)
        if cached is not None:
            perf_counters.record("tree_consistency_cache_hits")
            return cached
        perf_counters.record("tree_consistency_cache_misses")
        result = self._tree_is_consistent(edges)
        self._tree_consistency[key] = result
        return result

    def _tree_is_consistent(self, edges: Sequence[CMEdge]) -> bool:
        for first in edges:
            for second in edges:
                if first is second:
                    continue
                if first.target != second.source:
                    continue
                up = first.is_isa and not first.is_inverse
                down = second.is_isa and second.is_inverse
                if up and down and self.are_disjoint(first.source, second.target):
                    return False
        return True
