"""Declarative construction and serialization of conceptual models.

The dataset modules define their CMs as plain dictionaries; this module
turns such specifications into :class:`ConceptualModel` objects and back.

Specification format::

    {
        "name": "books",
        "classes": {
            "Person": {"attributes": ["pname"], "key": ["pname"]},
            "Book": {"attributes": ["bid"], "key": ["bid"]},
        },
        "relationships": [
            {"name": "writes", "from": "Person", "to": "Book",
             "to_card": "0..*", "from_card": "1..*"},
        ],
        "reified": [
            {"name": "Sell",
             "roles": {"seller": "Store", "buyer": "Person"},
             "attributes": ["dateOfPurchase"],
             "role_cards": {"seller": "0..*"}},
        ],
        "isa": [["Engineer", "Employee"]],
        "disjoint": [["Faculty", "Course"]],
        "covers": [{"super": "Employee", "subs": ["Engineer", "Programmer"]}],
    }
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.exceptions import ConceptualModelError
from repro.cm.model import ConceptualModel, SemanticType


def model_from_dict(spec: Mapping[str, Any]) -> ConceptualModel:
    """Build a :class:`ConceptualModel` from a specification dictionary."""
    try:
        name = spec["name"]
    except KeyError:
        raise ConceptualModelError("model specification needs a 'name'") from None
    model = ConceptualModel(name)
    for class_name, class_spec in spec.get("classes", {}).items():
        model.add_class(
            class_name,
            attributes=class_spec.get("attributes", ()),
            key=class_spec.get("key", ()),
            reified=class_spec.get("reified", False),
        )
    for rel_spec in spec.get("relationships", ()):
        model.add_relationship(
            rel_spec["name"],
            rel_spec["from"],
            rel_spec["to"],
            to_card=rel_spec.get("to_card", "0..*"),
            from_card=rel_spec.get("from_card", "0..*"),
            semantic_type=SemanticType(rel_spec.get("semantic_type", "plain")),
        )
    for reified_spec in spec.get("reified", ()):
        model.add_reified_relationship(
            reified_spec["name"],
            roles=reified_spec["roles"],
            attributes=reified_spec.get("attributes", ()),
            role_cards=reified_spec.get("role_cards"),
            semantic_type=SemanticType(
                reified_spec.get("semantic_type", "plain")
            ),
        )
    for sub, sup in spec.get("isa", ()):
        model.add_isa(sub, sup)
    for group in spec.get("disjoint", ()):
        model.add_disjointness(group)
    for cover_spec in spec.get("covers", ()):
        model.add_cover(cover_spec["super"], cover_spec["subs"])
    return model


def model_to_dict(model: ConceptualModel) -> dict[str, Any]:
    """Serialize a model back to the specification format.

    Reified classes created via ``add_reified_relationship`` are emitted
    under ``"reified"`` with their roles; everything else round-trips
    through the plain sections.
    """
    classes: dict[str, Any] = {}
    reified_specs = []
    role_names: set[str] = set()
    for cls in model.classes.values():
        if cls.reified:
            roles = model.roles_of(cls.name)
            role_names.update(r.name for r in roles)
            reified_specs.append(
                {
                    "name": cls.name,
                    "roles": {r.name: r.range for r in roles},
                    "attributes": list(cls.attributes),
                    "role_cards": {r.name: str(r.from_card) for r in roles},
                }
            )
        else:
            classes[cls.name] = {
                "attributes": list(cls.attributes),
                "key": list(cls.key),
            }
    relationships = []
    for rel in model.relationships.values():
        if rel.name in role_names:
            continue
        entry: dict[str, Any] = {
            "name": rel.name,
            "from": rel.domain,
            "to": rel.range,
            "to_card": str(rel.to_card),
            "from_card": str(rel.from_card),
        }
        if rel.semantic_type is not SemanticType.PLAIN:
            entry["semantic_type"] = rel.semantic_type.value
        relationships.append(entry)
    return {
        "name": model.name,
        "classes": classes,
        "relationships": relationships,
        "reified": reified_specs,
        "isa": [list(pair) for pair in sorted(model.isa_links)],
        "disjoint": [sorted(group) for group in model.disjointness_groups],
        "covers": [
            {"super": sup, "subs": sorted(subs)} for sup, subs in model.covers
        ],
    }
