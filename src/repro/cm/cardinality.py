"""Cardinality constraints on relationship participation.

The paper uses UML's ``min..max`` notation: on a relationship ``p`` from
``C`` to ``D``, the cardinality written at the ``D`` end bounds how many
``D`` objects a single ``C`` object relates to. ``_..1`` makes ``p``
*functional* from ``C`` to ``D``; ``1.._`` makes participation *total*.

This module also defines the *connection category* of a relationship or
composed path (one-one / many-one / one-many / many-many), the compatibility
rule between source and target connections (Section 3.2 observation (i)),
and cardinality composition along paths (Section 3.3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.exceptions import CardinalityError

#: Unbounded upper cardinality ("*").
MANY = None


@dataclass(frozen=True)
class Cardinality:
    """A ``min..max`` participation bound. ``upper=None`` means ``*``.

    >>> Cardinality.parse("0..*")
    Cardinality(lower=0, upper=None)
    >>> Cardinality.parse("1..1").is_functional
    True
    """

    lower: int
    upper: int | None

    def __post_init__(self) -> None:
        if self.lower < 0:
            raise CardinalityError(f"lower bound must be >= 0, got {self.lower}")
        if self.upper is not None and self.upper < 1:
            raise CardinalityError(
                f"upper bound must be >= 1 or None, got {self.upper}"
            )
        if self.upper is not None and self.lower > self.upper:
            raise CardinalityError(
                f"lower bound {self.lower} exceeds upper bound {self.upper}"
            )

    @classmethod
    def parse(cls, text: str) -> "Cardinality":
        """Parse UML-style text: ``"0..*"``, ``"1..1"``, ``"0..1"``, ``"*"``.

        A bare number ``"1"`` means ``1..1``; a bare ``"*"`` means ``0..*``.
        """
        text = text.strip()
        if text == "*":
            return cls(0, MANY)
        if ".." in text:
            low_text, high_text = (part.strip() for part in text.split("..", 1))
        else:
            low_text = high_text = text
        try:
            lower = int(low_text)
        except ValueError:
            raise CardinalityError(f"bad lower bound in {text!r}") from None
        if high_text == "*":
            return cls(lower, MANY)
        try:
            upper = int(high_text)
        except ValueError:
            raise CardinalityError(f"bad upper bound in {text!r}") from None
        return cls(lower, upper)

    @property
    def is_functional(self) -> bool:
        """True when the upper bound is 1 (``_..1``)."""
        return self.upper == 1

    @property
    def is_total(self) -> bool:
        """True when the lower bound is at least 1 (``1.._``)."""
        return self.lower >= 1

    def compose(self, other: "Cardinality") -> "Cardinality":
        """Cardinality of the composition of two traversal steps.

        Composing "each X relates to ``a..b`` Y" with "each Y relates to
        ``c..d`` Z" bounds "each X relates to at most ``b*d`` Z" (and at
        least ``a*c`` when every hop is total on distinct objects — a
        conservative lower bound suffices for the compatibility checks).
        """
        lower = self.lower * other.lower
        if self.upper is None or other.upper is None:
            upper = MANY
        else:
            upper = self.upper * other.upper
        if upper is not None and upper < 1:
            # Degenerate product 0 cannot be represented as an upper bound;
            # treat it as the tightest expressible bound.
            upper = 1
            lower = 0
        return Cardinality(lower, upper)

    def __str__(self) -> str:
        upper = "*" if self.upper is None else str(self.upper)
        return f"{self.lower}..{upper}"


#: Frequently used constants.
ONE_ONE = Cardinality(1, 1)
ZERO_ONE = Cardinality(0, 1)
ZERO_MANY = Cardinality(0, MANY)
ONE_MANY = Cardinality(1, MANY)


class ConnectionCategory(enum.Enum):
    """Functionality classification of a connection between two classes.

    Categories are read left-to-right along the traversal direction:
    ``MANY_ONE`` means the connection is functional in the traversal
    direction (each source object sees at most one target object) but not
    in the inverse direction.
    """

    ONE_ONE = "one-one"
    MANY_ONE = "many-one"
    ONE_MANY = "one-many"
    MANY_MANY = "many-many"

    @classmethod
    def of(
        cls, forward: Cardinality, backward: Cardinality
    ) -> "ConnectionCategory":
        """Category from the forward and backward cardinalities.

        ``forward`` bounds targets-per-source; ``backward`` bounds
        sources-per-target.
        """
        if forward.is_functional and backward.is_functional:
            return cls.ONE_ONE
        if forward.is_functional:
            return cls.MANY_ONE
        if backward.is_functional:
            return cls.ONE_MANY
        return cls.MANY_MANY

    @property
    def functional_forward(self) -> bool:
        return self in (ConnectionCategory.ONE_ONE, ConnectionCategory.MANY_ONE)

    @property
    def functional_backward(self) -> bool:
        return self in (ConnectionCategory.ONE_ONE, ConnectionCategory.ONE_MANY)

    def reversed(self) -> "ConnectionCategory":
        """Category of the same connection traversed the other way."""
        mapping = {
            ConnectionCategory.MANY_ONE: ConnectionCategory.ONE_MANY,
            ConnectionCategory.ONE_MANY: ConnectionCategory.MANY_ONE,
        }
        return mapping.get(self, self)


def categories_compatible(
    source: ConnectionCategory, target: ConnectionCategory
) -> bool:
    """Whether a source connection may realize a target connection.

    Section 3.2 / Example 1.1: a target connection that is functional in a
    direction demands a source connection functional in that direction
    (pairing each author with *at most one* bookstore cannot be realized by
    a many-many composition). The converse is fine — a functional source
    connection is a special case of a many-many target.

    >>> categories_compatible(ConnectionCategory.MANY_MANY,
    ...                       ConnectionCategory.MANY_MANY)
    True
    >>> categories_compatible(ConnectionCategory.MANY_MANY,
    ...                       ConnectionCategory.MANY_ONE)
    False
    >>> categories_compatible(ConnectionCategory.ONE_ONE,
    ...                       ConnectionCategory.MANY_ONE)
    True
    """
    if target.functional_forward and not source.functional_forward:
        return False
    if target.functional_backward and not source.functional_backward:
        return False
    return True
