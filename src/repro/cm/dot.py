"""GraphViz DOT export for CM graphs and s-trees.

Renders conceptual models the way the paper draws them: class nodes as
boxes (reified relationships tagged ``◇``), attributes folded into the
class label, relationship edges labeled with name and cardinalities,
ISA edges as hollow-arrow (``empty`` arrowhead) links, partOf edges with
diamond tails. S-trees render with the anchor highlighted, which makes
the discovered CSGs easy to eyeball.
"""

from __future__ import annotations

from repro.cm.graph import CMGraph
from repro.cm.model import SemanticType
from repro.semantics.stree import SemanticTree


def _escape(text: str) -> str:
    return text.replace('"', r"\"")


def _class_label(graph: CMGraph, name: str) -> str:
    cm_class = graph.model.cm_class(name)
    marker = "◇" if cm_class.reified else ""
    attributes = "\\n".join(
        f"_{a}_" if a in cm_class.key else a for a in cm_class.attributes
    )
    if attributes:
        return f"{name}{marker}|{attributes}"
    return f"{name}{marker}"


def cm_graph_to_dot(graph: CMGraph, name: str = "cm") -> str:
    """The CM graph as a DOT digraph (forward edges only)."""
    lines = [f'digraph "{_escape(name)}" {{']
    lines.append("  node [shape=record, fontsize=10];")
    for node in graph.class_nodes():
        lines.append(
            f'  "{_escape(node)}" [label="{{{_escape(_class_label(graph, node))}}}"];'
        )
    for edge in sorted(
        graph.edges(), key=lambda e: (e.source, e.label, e.target)
    ):
        if edge.is_inverse or edge.is_attribute:
            continue
        if edge.is_isa:
            lines.append(
                f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}" '
                f"[arrowhead=empty, style=solid, label=isa];"
            )
            continue
        style = ""
        if edge.semantic_type is SemanticType.PART_OF:
            style = ", arrowtail=diamond, dir=both"
        label = (
            f"{edge.label}\\n{edge.backward_card}/{edge.forward_card}"
        )
        lines.append(
            f'  "{_escape(edge.source)}" -> "{_escape(edge.target)}" '
            f'[label="{_escape(label)}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)


def stree_to_dot(tree: SemanticTree, name: str = "stree") -> str:
    """An s-tree as a DOT digraph; the anchor is drawn bold."""
    lines = [f'digraph "{_escape(name)}" {{']
    lines.append("  node [shape=box, fontsize=10];")
    for node in tree.nodes():
        extra = ", penwidth=2, color=blue" if node == tree.root else ""
        lines.append(
            f'  "{_escape(node.node_id)}" '
            f'[label="{_escape(node.node_id)}"{extra}];'
        )
    for edge in tree.edges:
        arrow = "normal" if edge.cm_edge.is_functional else "none"
        lines.append(
            f'  "{_escape(edge.parent.node_id)}" -> '
            f'"{_escape(edge.child.node_id)}" '
            f'[label="{_escape(edge.cm_edge.label)}", arrowhead={arrow}];'
        )
    for column, (node, attribute) in sorted(tree.columns.items()):
        attr_id = f"{node.node_id}.{attribute}"
        lines.append(
            f'  "{_escape(attr_id)}" [shape=ellipse, '
            f'label="{_escape(column)}"];'
        )
        lines.append(
            f'  "{_escape(node.node_id)}" -> "{_escape(attr_id)}" '
            f'[label="{_escape(attribute)}", style=dashed];'
        )
    lines.append("}")
    return "\n".join(lines)
