"""Relational substrate: schemas, constraints, instances, and algebra.

This package models the *logical* (database) level of the paper: relational
schemas with primary keys and referential integrity constraints (RICs), plus
an in-memory instance store and a relational algebra evaluator used to
execute discovered mapping expressions.
"""

from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import Column, RelationalSchema, Table
from repro.relational.instance import Instance, LabeledNull
from repro.relational.ddl import emit_ddl, emit_table_ddl, parse_ddl
from repro.relational.algebra import (
    AlgebraExpression,
    BaseRelation,
    Distinct,
    NaturalJoin,
    LeftOuterJoin,
    FullOuterJoin,
    Projection,
    Rename,
    Selection,
    ThetaJoin,
    Union,
)

__all__ = [
    "Column",
    "Table",
    "RelationalSchema",
    "ReferentialConstraint",
    "Instance",
    "LabeledNull",
    "emit_ddl",
    "emit_table_ddl",
    "parse_ddl",
    "AlgebraExpression",
    "BaseRelation",
    "Selection",
    "Projection",
    "Rename",
    "NaturalJoin",
    "ThetaJoin",
    "LeftOuterJoin",
    "FullOuterJoin",
    "Union",
    "Distinct",
]
