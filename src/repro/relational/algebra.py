"""A small relational algebra with a set-semantics evaluator.

The mapping expressions the library discovers are conjunctive queries; this
module gives them an executable algebraic form (and a readable rendering).
Outer joins are included because the paper (Example 1.2 and Section 6)
motivates merging ISA siblings with outer joins.

Every expression node evaluates against an :class:`~repro.relational.Instance`
to a :class:`ResultSet` — an ordered column list plus a set of value tuples.
Natural join is the workhorse: it joins on equal column *names*, which is the
convention used by the queries this library generates (shared variables are
rendered as shared column names, with :class:`Rename` resolving clashes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping, Sequence

from repro.exceptions import QueryError
from repro.relational.instance import Instance, LabeledNull, _row_sort_key


@dataclass(frozen=True)
class ResultSet:
    """An evaluated relation: column names plus rows aligned to them."""

    columns: tuple[str, ...]
    rows: frozenset[tuple]

    def sorted_rows(self) -> tuple[tuple, ...]:
        """Rows in a deterministic order (for display and tests)."""
        return tuple(sorted(self.rows, key=_row_sort_key))

    def project(self, columns: Sequence[str]) -> "ResultSet":
        """Project onto ``columns`` (set semantics)."""
        try:
            positions = [self.columns.index(c) for c in columns]
        except ValueError as exc:
            raise QueryError(
                f"cannot project {tuple(columns)} from {self.columns}"
            ) from exc
        rows = frozenset(tuple(row[i] for i in positions) for row in self.rows)
        return ResultSet(tuple(columns), rows)

    def __len__(self) -> int:
        return len(self.rows)


class AlgebraExpression:
    """Base class for relational algebra expression trees."""

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        """Column names this expression produces over ``instance``'s schema."""
        raise NotImplementedError

    def evaluate(self, instance: Instance) -> ResultSet:
        """Evaluate to a :class:`ResultSet` under set semantics."""
        raise NotImplementedError

    def render(self) -> str:
        """Linear textual rendering (⋈, σ, π, ∪, ⟕, ⟗)."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.render()

    # Convenience combinators -------------------------------------------------
    def join(self, other: "AlgebraExpression") -> "NaturalJoin":
        return NaturalJoin(self, other)

    def where(self, column: str, value: Hashable) -> "Selection":
        return Selection(self, column, value)

    def select_columns(self, *columns: str) -> "Projection":
        return Projection(self, columns)


@dataclass(frozen=True)
class BaseRelation(AlgebraExpression):
    """A table scan. Column names are the table's own (unqualified)."""

    table_name: str

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        return instance.schema.table(self.table_name).columns

    def evaluate(self, instance: Instance) -> ResultSet:
        table = instance.schema.table(self.table_name)
        return ResultSet(table.columns, frozenset(instance.rows(self.table_name)))

    def render(self) -> str:
        return self.table_name


@dataclass(frozen=True)
class Rename(AlgebraExpression):
    """Rename columns: ``mapping`` sends old names to new names."""

    child: AlgebraExpression
    mapping: tuple[tuple[str, str], ...]

    def __init__(self, child: AlgebraExpression, mapping: Mapping[str, str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "mapping", tuple(sorted(mapping.items())))

    def _map(self) -> dict[str, str]:
        return dict(self.mapping)

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        mapping = self._map()
        child_cols = self.child.output_columns(instance)
        unknown = set(mapping) - set(child_cols)
        if unknown:
            raise QueryError(f"rename of unknown columns {sorted(unknown)}")
        renamed = tuple(mapping.get(c, c) for c in child_cols)
        if len(set(renamed)) != len(renamed):
            raise QueryError(f"rename produces duplicate columns {renamed}")
        return renamed

    def evaluate(self, instance: Instance) -> ResultSet:
        result = self.child.evaluate(instance)
        return ResultSet(self.output_columns(instance), result.rows)

    def render(self) -> str:
        parts = ", ".join(f"{old}→{new}" for old, new in self.mapping)
        return f"ρ[{parts}]({self.child.render()})"


@dataclass(frozen=True)
class Selection(AlgebraExpression):
    """Select rows where ``column`` equals a constant ``value``."""

    child: AlgebraExpression
    column: str
    value: Hashable

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        return self.child.output_columns(instance)

    def evaluate(self, instance: Instance) -> ResultSet:
        result = self.child.evaluate(instance)
        if self.column not in result.columns:
            raise QueryError(
                f"selection on unknown column {self.column!r}; "
                f"have {result.columns}"
            )
        pos = result.columns.index(self.column)
        rows = frozenset(r for r in result.rows if r[pos] == self.value)
        return ResultSet(result.columns, rows)

    def render(self) -> str:
        return f"σ[{self.column}={self.value!r}]({self.child.render()})"


@dataclass(frozen=True)
class Projection(AlgebraExpression):
    """Project onto the given columns, in order."""

    child: AlgebraExpression
    columns: tuple[str, ...]

    def __init__(self, child: AlgebraExpression, columns: Sequence[str]) -> None:
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "columns", tuple(columns))

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        return self.columns

    def evaluate(self, instance: Instance) -> ResultSet:
        return self.child.evaluate(instance).project(self.columns)

    def render(self) -> str:
        return f"π[{', '.join(self.columns)}]({self.child.render()})"


def _join_rows(
    left: ResultSet,
    right: ResultSet,
    pairs: Sequence[tuple[int, int]],
) -> tuple[tuple[str, ...], set[tuple], set[tuple], set[tuple]]:
    """Inner-join machinery shared by all join nodes.

    Returns output columns, joined rows, matched-left rows, matched-right
    rows (the latter two feed outer-join padding).
    """
    right_keep = [
        i for i in range(len(right.columns)) if i not in {rp for _, rp in pairs}
    ]
    out_columns = left.columns + tuple(right.columns[i] for i in right_keep)
    index: dict[tuple, list[tuple]] = {}
    for row in right.rows:
        key = tuple(row[rp] for _, rp in pairs)
        index.setdefault(key, []).append(row)
    joined: set[tuple] = set()
    matched_left: set[tuple] = set()
    matched_right: set[tuple] = set()
    for row in left.rows:
        key = tuple(row[lp] for lp, _ in pairs)
        for other in index.get(key, ()):
            joined.add(row + tuple(other[i] for i in right_keep))
            matched_left.add(row)
            matched_right.add(other)
    return out_columns, joined, matched_left, matched_right


def _shared_pairs(left: ResultSet, right: ResultSet) -> list[tuple[int, int]]:
    shared = [c for c in left.columns if c in right.columns]
    return [(left.columns.index(c), right.columns.index(c)) for c in shared]


@dataclass(frozen=True)
class NaturalJoin(AlgebraExpression):
    """Natural join on equal column names (cross product if none shared)."""

    left: AlgebraExpression
    right: AlgebraExpression

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        left_cols = self.left.output_columns(instance)
        right_cols = self.right.output_columns(instance)
        return left_cols + tuple(c for c in right_cols if c not in left_cols)

    def evaluate(self, instance: Instance) -> ResultSet:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        pairs = _shared_pairs(left, right)
        out_columns, joined, _, _ = _join_rows(left, right, pairs)
        return ResultSet(out_columns, frozenset(joined))

    def render(self) -> str:
        return f"({self.left.render()} ⋈ {self.right.render()})"


@dataclass(frozen=True)
class ThetaJoin(AlgebraExpression):
    """Equi-join on explicit (left column, right column) pairs.

    Unlike natural join, only the listed pairs are equated; any other
    shared column names must first be resolved with :class:`Rename`.
    """

    left: AlgebraExpression
    right: AlgebraExpression
    conditions: tuple[tuple[str, str], ...]

    def __init__(
        self,
        left: AlgebraExpression,
        right: AlgebraExpression,
        conditions: Sequence[tuple[str, str]],
    ) -> None:
        if not conditions:
            raise QueryError("theta join requires at least one condition")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "conditions", tuple(conditions))

    def _pairs(self, left: ResultSet, right: ResultSet) -> list[tuple[int, int]]:
        pairs = []
        for lcol, rcol in self.conditions:
            if lcol not in left.columns or rcol not in right.columns:
                raise QueryError(
                    f"theta join condition {lcol}={rcol} references "
                    f"unknown columns"
                )
            pairs.append((left.columns.index(lcol), right.columns.index(rcol)))
        return pairs

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        left_cols = self.left.output_columns(instance)
        right_cols = self.right.output_columns(instance)
        dropped = {rcol for _, rcol in self.conditions}
        out = left_cols + tuple(c for c in right_cols if c not in dropped)
        if len(set(out)) != len(out):
            raise QueryError(
                f"theta join output has duplicate columns {out}; use Rename"
            )
        return out

    def evaluate(self, instance: Instance) -> ResultSet:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        pairs = self._pairs(left, right)
        out_columns, joined, _, _ = _join_rows(left, right, pairs)
        return ResultSet(out_columns, frozenset(joined))

    def render(self) -> str:
        conds = " ∧ ".join(f"{l}={r}" for l, r in self.conditions)
        return f"({self.left.render()} ⋈[{conds}] {self.right.render()})"


@dataclass(frozen=True)
class LeftOuterJoin(AlgebraExpression):
    """Natural left outer join; unmatched left rows pad with fresh nulls."""

    left: AlgebraExpression
    right: AlgebraExpression

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        return NaturalJoin(self.left, self.right).output_columns(instance)

    def evaluate(self, instance: Instance) -> ResultSet:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        pairs = _shared_pairs(left, right)
        out_columns, joined, matched_left, _ = _join_rows(left, right, pairs)
        pad = len(out_columns) - len(left.columns)
        for row in left.rows - matched_left:
            nulls = tuple(
                LabeledNull(f"lj:{out_columns[len(left.columns) + i]}:{row!r}")
                for i in range(pad)
            )
            joined.add(row + nulls)
        return ResultSet(out_columns, frozenset(joined))

    def render(self) -> str:
        return f"({self.left.render()} ⟕ {self.right.render()})"


@dataclass(frozen=True)
class FullOuterJoin(AlgebraExpression):
    """Natural full outer join; unmatched rows on both sides are padded.

    This is the merge the paper wants for ISA siblings in Example 1.2:
    programmers and engineers combine on shared columns, keeping rows that
    exist on only one side.
    """

    left: AlgebraExpression
    right: AlgebraExpression

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        return NaturalJoin(self.left, self.right).output_columns(instance)

    def evaluate(self, instance: Instance) -> ResultSet:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        pairs = _shared_pairs(left, right)
        out_columns, joined, matched_left, matched_right = _join_rows(
            left, right, pairs
        )
        left_arity = len(left.columns)
        pad = len(out_columns) - left_arity
        for row in left.rows - matched_left:
            nulls = tuple(
                LabeledNull(f"fj:{out_columns[left_arity + i]}:{row!r}")
                for i in range(pad)
            )
            joined.add(row + nulls)
        right_keep = [
            i
            for i in range(len(right.columns))
            if i not in {rp for _, rp in pairs}
        ]
        for row in right.rows - matched_right:
            # Rebuild a full output row: left columns come from the join
            # columns where available, fresh nulls elsewhere.
            out_row = []
            for idx, col in enumerate(left.columns):
                pair = next(((lp, rp) for lp, rp in pairs if lp == idx), None)
                if pair is not None:
                    out_row.append(row[pair[1]])
                else:
                    out_row.append(LabeledNull(f"fj:{col}:{row!r}"))
            out_row.extend(row[i] for i in right_keep)
            joined.add(tuple(out_row))
        return ResultSet(out_columns, frozenset(joined))

    def render(self) -> str:
        return f"({self.left.render()} ⟗ {self.right.render()})"


@dataclass(frozen=True)
class Union(AlgebraExpression):
    """Set union of two union-compatible expressions."""

    left: AlgebraExpression
    right: AlgebraExpression

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        left_cols = self.left.output_columns(instance)
        right_cols = self.right.output_columns(instance)
        if left_cols != right_cols:
            raise QueryError(
                f"union of incompatible relations: {left_cols} vs {right_cols}"
            )
        return left_cols

    def evaluate(self, instance: Instance) -> ResultSet:
        left = self.left.evaluate(instance)
        right = self.right.evaluate(instance)
        if left.columns != right.columns:
            raise QueryError(
                f"union of incompatible relations: {left.columns} vs "
                f"{right.columns}"
            )
        return ResultSet(left.columns, left.rows | right.rows)

    def render(self) -> str:
        return f"({self.left.render()} ∪ {self.right.render()})"


@dataclass(frozen=True)
class Distinct(AlgebraExpression):
    """Explicit duplicate elimination (a no-op under set semantics).

    Present so renderings can make set semantics explicit where a reader
    might otherwise assume bags.
    """

    child: AlgebraExpression

    def output_columns(self, instance: Instance) -> tuple[str, ...]:
        return self.child.output_columns(instance)

    def evaluate(self, instance: Instance) -> ResultSet:
        return self.child.evaluate(instance)

    def render(self) -> str:
        return f"δ({self.child.render()})"
