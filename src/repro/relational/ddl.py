"""SQL DDL emission and (simple) parsing for relational schemas.

``emit_ddl`` renders a :class:`RelationalSchema` as portable
``CREATE TABLE`` statements (every column typed ``TEXT`` — the paper's
algorithms are type-agnostic); ``parse_ddl`` reads the same dialect back,
so schemas can be stored as plain ``.sql`` files.
"""

from __future__ import annotations

import re

from repro.exceptions import SchemaError
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import RelationalSchema, Table


def emit_table_ddl(table: Table, schema: RelationalSchema) -> str:
    """``CREATE TABLE`` text for one table, with PK and FK clauses."""
    lines = [f"CREATE TABLE {table.name} ("]
    body = [f"    {column} TEXT" for column in table.columns]
    if table.primary_key:
        body.append(
            f"    PRIMARY KEY ({', '.join(table.primary_key)})"
        )
    for ric in schema.rics_from(table.name):
        body.append(
            f"    FOREIGN KEY ({', '.join(ric.child_columns)}) "
            f"REFERENCES {ric.parent_table} "
            f"({', '.join(ric.parent_columns)})"
        )
    lines.append(",\n".join(body))
    lines.append(");")
    return "\n".join(lines)


def emit_ddl(schema: RelationalSchema) -> str:
    """The whole schema as DDL, tables in declaration order."""
    statements = [
        emit_table_ddl(table, schema) for table in schema
    ]
    return "\n\n".join(statements) + "\n"


#: One identifier: double-quoted (SQL standard, ``""`` escapes a quote),
#: bracketed (SQL Server / SQLite), backticked (MySQL / SQLite), or bare.
_IDENT = r'(?:"(?:[^"]|"")+"|\[[^\]]+\]|`(?:[^`]|``)+`|\w+)'

_CREATE_RE = re.compile(
    rf"CREATE\s+TABLE\s+(?:IF\s+NOT\s+EXISTS\s+)?({_IDENT})\s*\((.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_PK_RE = re.compile(
    r"(?:CONSTRAINT\s+" + _IDENT + r"\s+)?PRIMARY\s+KEY\s*\(([^)]*)\)",
    re.IGNORECASE,
)
_FK_RE = re.compile(
    r"(?:CONSTRAINT\s+" + _IDENT + r"\s+)?"
    rf"FOREIGN\s+KEY\s*\(([^)]*)\)\s*REFERENCES\s+({_IDENT})\s*\(([^)]*)\)",
    re.IGNORECASE,
)
_COLUMN_RE = re.compile(rf"\s*({_IDENT})")


def _unquote(token: str) -> str:
    """Strip one level of identifier quoting, un-escaping doubled quotes.

    Quoted identifiers keep their exact case; bare ones too — this
    parser never case-folds, so mixed-case schemas round-trip.
    """
    token = token.strip()
    if len(token) >= 2:
        if token[0] == '"' and token[-1] == '"':
            return token[1:-1].replace('""', '"')
        if token[0] == "[" and token[-1] == "]":
            return token[1:-1]
        if token[0] == "`" and token[-1] == "`":
            return token[1:-1].replace("``", "`")
    return token


def _ident_list(text: str) -> list[str]:
    """Parse a parenthesized identifier list body (``a, "b", [c]``)."""
    return [
        _unquote(part) for part in text.split(",") if part.strip()
    ]


def _split_clauses(body: str) -> list[str]:
    clauses, depth, current = [], 0, []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            clauses.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        clauses.append(tail)
    return clauses


def parse_ddl(text: str, schema_name: str = "parsed") -> RelationalSchema:
    """Parse the dialect emitted by :func:`emit_ddl`.

    Also accepts the quoted SQLite dialect of
    :func:`repro.ingest.fixture.sqlite_ddl`: identifiers may be
    double-quoted, bracketed, or backticked (case preserved either
    way), ``IF NOT EXISTS`` and named ``CONSTRAINT`` clauses are
    tolerated, and composite keys parse on both sides of a
    ``FOREIGN KEY``.

    >>> schema = RelationalSchema("s", [Table("t", ["a", "b"], ["a"])])
    >>> parse_ddl(emit_ddl(schema)).table("t").primary_key
    ('a',)
    >>> parse_ddl('CREATE TABLE "Order" ("Id" TEXT);').table_names()
    ('Order',)
    """
    schema = RelationalSchema(schema_name)
    deferred_rics: list[ReferentialConstraint] = []
    matches = list(_CREATE_RE.finditer(text))
    if not matches and text.strip():
        raise SchemaError("no CREATE TABLE statements found")
    for match in matches:
        table_name, body = _unquote(match.group(1)), match.group(2)
        columns: list[str] = []
        primary_key: list[str] = []
        for clause in _split_clauses(body):
            pk_match = _PK_RE.match(clause)
            fk_match = _FK_RE.match(clause)
            if pk_match:
                primary_key = _ident_list(pk_match.group(1))
            elif fk_match:
                deferred_rics.append(
                    ReferentialConstraint(
                        table_name,
                        _ident_list(fk_match.group(1)),
                        _unquote(fk_match.group(2)),
                        _ident_list(fk_match.group(3)),
                    )
                )
            else:
                column_match = _COLUMN_RE.match(clause)
                if column_match is None:
                    continue
                columns.append(_unquote(column_match.group(1)))
        schema.add_table(Table(table_name, columns, primary_key))
    for ric in deferred_rics:
        schema.add_ric(ric)
    return schema
