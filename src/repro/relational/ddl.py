"""SQL DDL emission and (simple) parsing for relational schemas.

``emit_ddl`` renders a :class:`RelationalSchema` as portable
``CREATE TABLE`` statements (every column typed ``TEXT`` — the paper's
algorithms are type-agnostic); ``parse_ddl`` reads the same dialect back,
so schemas can be stored as plain ``.sql`` files.
"""

from __future__ import annotations

import re

from repro.exceptions import SchemaError
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import RelationalSchema, Table


def emit_table_ddl(table: Table, schema: RelationalSchema) -> str:
    """``CREATE TABLE`` text for one table, with PK and FK clauses."""
    lines = [f"CREATE TABLE {table.name} ("]
    body = [f"    {column} TEXT" for column in table.columns]
    if table.primary_key:
        body.append(
            f"    PRIMARY KEY ({', '.join(table.primary_key)})"
        )
    for ric in schema.rics_from(table.name):
        body.append(
            f"    FOREIGN KEY ({', '.join(ric.child_columns)}) "
            f"REFERENCES {ric.parent_table} "
            f"({', '.join(ric.parent_columns)})"
        )
    lines.append(",\n".join(body))
    lines.append(");")
    return "\n".join(lines)


def emit_ddl(schema: RelationalSchema) -> str:
    """The whole schema as DDL, tables in declaration order."""
    statements = [
        emit_table_ddl(table, schema) for table in schema
    ]
    return "\n\n".join(statements) + "\n"


_CREATE_RE = re.compile(
    r"CREATE\s+TABLE\s+(\w+)\s*\((.*?)\)\s*;",
    re.IGNORECASE | re.DOTALL,
)
_PK_RE = re.compile(r"PRIMARY\s+KEY\s*\(([^)]*)\)", re.IGNORECASE)
_FK_RE = re.compile(
    r"FOREIGN\s+KEY\s*\(([^)]*)\)\s*REFERENCES\s+(\w+)\s*\(([^)]*)\)",
    re.IGNORECASE,
)


def _split_clauses(body: str) -> list[str]:
    clauses, depth, current = [], 0, []
    for char in body:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            clauses.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        clauses.append(tail)
    return clauses


def parse_ddl(text: str, schema_name: str = "parsed") -> RelationalSchema:
    """Parse the dialect emitted by :func:`emit_ddl`.

    >>> schema = RelationalSchema("s", [Table("t", ["a", "b"], ["a"])])
    >>> parse_ddl(emit_ddl(schema)).table("t").primary_key
    ('a',)
    """
    schema = RelationalSchema(schema_name)
    deferred_rics: list[ReferentialConstraint] = []
    matches = list(_CREATE_RE.finditer(text))
    if not matches and text.strip():
        raise SchemaError("no CREATE TABLE statements found")
    for match in matches:
        table_name, body = match.group(1), match.group(2)
        columns: list[str] = []
        primary_key: list[str] = []
        for clause in _split_clauses(body):
            pk_match = _PK_RE.match(clause)
            fk_match = _FK_RE.match(clause)
            if pk_match:
                primary_key = [
                    column.strip()
                    for column in pk_match.group(1).split(",")
                ]
            elif fk_match:
                deferred_rics.append(
                    ReferentialConstraint(
                        table_name,
                        [c.strip() for c in fk_match.group(1).split(",")],
                        fk_match.group(2),
                        [c.strip() for c in fk_match.group(3).split(",")],
                    )
                )
            else:
                parts = clause.split()
                if not parts:
                    continue
                columns.append(parts[0])
        schema.add_table(Table(table_name, columns, primary_key))
    for ric in deferred_rics:
        schema.add_ric(ric)
    return schema
