"""In-memory relational instances.

An :class:`Instance` stores the rows of each table as tuples of values.
Values may include :class:`LabeledNull` placeholders — the "labeled nulls"
of data-exchange semantics, produced when a mapping's target expression has
existential variables (Skolem terms).
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from repro.exceptions import InstanceError
from repro.relational.schema import RelationalSchema, Table


class LabeledNull:
    """A labeled null (marked value) as used in data exchange.

    Two labeled nulls are equal iff they are the same object or carry the
    same label. Labels are usually Skolem-term strings such as
    ``f_aname(b1)``.
    """

    __slots__ = ("label",)

    def __init__(self, label: str) -> None:
        self.label = label

    def __eq__(self, other: object) -> bool:
        return isinstance(other, LabeledNull) and other.label == self.label

    def __hash__(self) -> int:
        return hash(("LabeledNull", self.label))

    def __repr__(self) -> str:
        return f"⊥{self.label}"

    def __lt__(self, other: object) -> bool:
        # Labeled nulls sort after all concrete values, then by label, so
        # instances render deterministically.
        if isinstance(other, LabeledNull):
            return self.label < other.label
        return False


def _sort_key(value: object) -> tuple:
    if isinstance(value, LabeledNull):
        return (2, value.label)
    if value is None:
        return (1, "")
    return (0, str(value))


def _row_sort_key(row: tuple) -> tuple:
    return tuple(_sort_key(v) for v in row)


class Instance:
    """Rows for each table of a :class:`RelationalSchema`.

    The instance enforces arity on insertion and can verify primary-key
    and referential constraints on demand via :meth:`violations`.

    >>> from repro.relational import RelationalSchema, Table
    >>> schema = RelationalSchema("s", [Table("person", ["pname"], ["pname"])])
    >>> inst = Instance(schema)
    >>> inst.add("person", ("ann",))
    >>> inst.rows("person")
    (('ann',),)
    """

    def __init__(self, schema: RelationalSchema) -> None:
        self.schema = schema
        self._rows: dict[str, set[tuple]] = {name: set() for name in schema.table_names()}
        self._null_counter = itertools.count(1)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, table_name: str, row: Sequence[Hashable]) -> None:
        """Insert one row (duplicates are ignored — set semantics)."""
        table = self.schema.table(table_name)
        values = tuple(row)
        if len(values) != table.arity:
            raise InstanceError(
                f"row {values!r} has {len(values)} values but table "
                f"{table_name!r} has {table.arity} columns"
            )
        self._rows.setdefault(table_name, set()).add(values)

    def add_all(self, table_name: str, rows: Iterable[Sequence[Hashable]]) -> None:
        """Insert many rows into ``table_name``."""
        for row in rows:
            self.add(table_name, row)

    def add_named(self, table_name: str, **values: Hashable) -> None:
        """Insert a row given column-name keyword arguments.

        Missing columns become fresh labeled nulls.
        """
        table = self.schema.table(table_name)
        unknown = set(values) - set(table.columns)
        if unknown:
            raise InstanceError(
                f"table {table_name!r} has no columns {sorted(unknown)}"
            )
        row = tuple(
            values.get(col, self.fresh_null(f"{table_name}.{col}"))
            for col in table.columns
        )
        self.add(table_name, row)

    def fresh_null(self, hint: str = "n") -> LabeledNull:
        """Create a labeled null unique within this instance."""
        return LabeledNull(f"{hint}#{next(self._null_counter)}")

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def rows(self, table_name: str) -> tuple[tuple, ...]:
        """All rows of a table, deterministically ordered."""
        self.schema.table(table_name)
        return tuple(sorted(self._rows.get(table_name, ()), key=_row_sort_key))

    def dicts(self, table_name: str) -> tuple[dict[str, Hashable], ...]:
        """Rows as column-name → value dictionaries."""
        table = self.schema.table(table_name)
        return tuple(
            dict(zip(table.columns, row)) for row in self.rows(table_name)
        )

    def size(self, table_name: str | None = None) -> int:
        """Row count of one table, or of the whole instance."""
        if table_name is not None:
            return len(self._rows.get(table_name, ()))
        return sum(len(rows) for rows in self._rows.values())

    def __contains__(self, item: tuple[str, tuple]) -> bool:
        table_name, row = item
        return tuple(row) in self._rows.get(table_name, ())

    # ------------------------------------------------------------------
    # Constraint checking
    # ------------------------------------------------------------------
    def violations(self) -> list[str]:
        """Primary-key and RIC violations, as human-readable strings.

        Labeled nulls never participate in key violations (they stand for
        unknown values), mirroring SQL's treatment of NULL in unique
        constraints.
        """
        problems: list[str] = []
        problems.extend(self._key_violations())
        problems.extend(self._ric_violations())
        return problems

    def is_consistent(self) -> bool:
        """True when :meth:`violations` is empty."""
        return not self.violations()

    def _key_violations(self) -> Iterator[str]:
        for table in self.schema:
            if not table.primary_key:
                continue
            positions = [table.columns.index(c) for c in table.primary_key]
            seen: dict[tuple, tuple] = {}
            for row in sorted(self._rows.get(table.name, ()), key=_row_sort_key):
                key = tuple(row[i] for i in positions)
                if any(isinstance(v, LabeledNull) for v in key):
                    continue
                if key in seen and seen[key] != row:
                    yield (
                        f"key violation in {table.name}: rows {seen[key]!r} "
                        f"and {row!r} share key {key!r}"
                    )
                else:
                    seen.setdefault(key, row)

    def _ric_violations(self) -> Iterator[str]:
        for ric in self.schema.rics:
            child = self.schema.table(ric.child_table)
            parent = self.schema.table(ric.parent_table)
            child_pos = [child.columns.index(c) for c in ric.child_columns]
            parent_pos = [parent.columns.index(c) for c in ric.parent_columns]
            parent_keys = {
                tuple(row[i] for i in parent_pos)
                for row in self._rows.get(parent.name, ())
            }
            for row in sorted(self._rows.get(child.name, ()), key=_row_sort_key):
                key = tuple(row[i] for i in child_pos)
                if any(isinstance(v, LabeledNull) for v in key):
                    continue
                if key not in parent_keys:
                    yield (
                        f"RIC violation {ric}: child row {row!r} has no "
                        f"parent with {key!r}"
                    )

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Multi-line dump of all non-empty tables."""
        lines = [f"instance of schema {self.schema.name}:"]
        for name in self.schema.table_names():
            rows = self.rows(name)
            if not rows:
                continue
            lines.append(f"  {name} ({len(rows)} rows):")
            for row in rows:
                lines.append(f"    {row!r}")
        return "\n".join(lines)

    def copy(self) -> "Instance":
        """Deep-enough copy (rows are immutable tuples)."""
        clone = Instance(self.schema)
        for name, rows in self._rows.items():
            clone._rows[name] = set(rows)
        return clone

    @classmethod
    def from_dict(
        cls,
        schema: RelationalSchema,
        data: Mapping[str, Iterable[Sequence[Hashable]]],
    ) -> "Instance":
        """Build an instance from ``{table_name: [row, ...]}``."""
        inst = cls(schema)
        for table_name, rows in data.items():
            inst.add_all(table_name, rows)
        return inst
