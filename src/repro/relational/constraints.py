"""Referential integrity constraints (RICs).

A RIC states that the combination of values in the *child* columns of the
child table must appear among the *parent* columns of the parent table —
the general form of a foreign key. In the paper these are the dashed
arrows of Figure 1, written textually as ``writes.pname ⊆ person.pname``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SchemaError


@dataclass(frozen=True, order=True)
class ReferentialConstraint:
    """An inclusion dependency ``child(cols) ⊆ parent(cols)``.

    Parameters
    ----------
    child_table, child_columns:
        The referencing side.
    parent_table, parent_columns:
        The referenced side; column lists must have equal length and
        positions pair up.
    """

    child_table: str
    child_columns: tuple[str, ...]
    parent_table: str
    parent_columns: tuple[str, ...]

    def __init__(
        self,
        child_table: str,
        child_columns,
        parent_table: str,
        parent_columns,
    ) -> None:
        child_cols = tuple(child_columns)
        parent_cols = tuple(parent_columns)
        if not child_cols:
            raise SchemaError("a RIC must reference at least one column")
        if len(child_cols) != len(parent_cols):
            raise SchemaError(
                "RIC column lists differ in length: "
                f"{child_cols} vs {parent_cols}"
            )
        if len(set(child_cols)) != len(child_cols):
            raise SchemaError(f"RIC child columns repeat: {child_cols}")
        if len(set(parent_cols)) != len(parent_cols):
            raise SchemaError(f"RIC parent columns repeat: {parent_cols}")
        object.__setattr__(self, "child_table", child_table)
        object.__setattr__(self, "child_columns", child_cols)
        object.__setattr__(self, "parent_table", parent_table)
        object.__setattr__(self, "parent_columns", parent_cols)

    @classmethod
    def parse(cls, text: str) -> "ReferentialConstraint":
        """Parse ``"child.c1,child.c2 -> parent.p1,parent.p2"``.

        Single-column shorthand works too:

        >>> ReferentialConstraint.parse("writes.pname -> person.pname")
        ReferentialConstraint(child_table='writes', child_columns=('pname',), \
parent_table='person', parent_columns=('pname',))
        """
        if "->" not in text:
            raise SchemaError(f"RIC text must contain '->': {text!r}")
        left, right = (part.strip() for part in text.split("->", 1))
        child_table, child_cols = cls._parse_side(left)
        parent_table, parent_cols = cls._parse_side(right)
        return cls(child_table, child_cols, parent_table, parent_cols)

    @staticmethod
    def _parse_side(side: str) -> tuple[str, tuple[str, ...]]:
        refs = [item.strip() for item in side.split(",") if item.strip()]
        if not refs:
            raise SchemaError(f"empty RIC side: {side!r}")
        tables = set()
        cols = []
        for ref in refs:
            parts = ref.split(".")
            if len(parts) != 2:
                raise SchemaError(f"expected 'table.column' in RIC, got {ref!r}")
            tables.add(parts[0])
            cols.append(parts[1])
        if len(tables) != 1:
            raise SchemaError(
                f"all columns on one RIC side must share a table: {side!r}"
            )
        return tables.pop(), tuple(cols)

    @property
    def column_pairs(self) -> tuple[tuple[str, str], ...]:
        """Positionally paired (child_column, parent_column) names."""
        return tuple(zip(self.child_columns, self.parent_columns))

    def __str__(self) -> str:
        left = ",".join(f"{self.child_table}.{c}" for c in self.child_columns)
        right = ",".join(f"{self.parent_table}.{c}" for c in self.parent_columns)
        return f"{left} -> {right}"
