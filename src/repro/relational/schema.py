"""Relational schemas: columns, tables, and whole-schema containers.

The relational model used throughout the paper is plain SQL-style: a schema
is a set of named tables, each table has named columns and a primary key,
and tables are linked by referential integrity constraints
(:mod:`repro.relational.constraints`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import SchemaError
from repro.relational.constraints import ReferentialConstraint


def _check_identifier(name: str, kind: str) -> None:
    if not name or not isinstance(name, str):
        raise SchemaError(f"{kind} name must be a non-empty string, got {name!r}")
    if any(ch.isspace() for ch in name):
        raise SchemaError(f"{kind} name {name!r} must not contain whitespace")
    if "." in name:
        raise SchemaError(f"{kind} name {name!r} must not contain '.'")


@dataclass(frozen=True, order=True)
class Column:
    """A fully qualified column reference ``table.name``."""

    table: str
    name: str

    def __post_init__(self) -> None:
        _check_identifier(self.table, "table")
        _check_identifier(self.name, "column")

    def __str__(self) -> str:
        return f"{self.table}.{self.name}"

    @classmethod
    def parse(cls, qualified: str) -> "Column":
        """Parse ``"table.column"`` into a :class:`Column`.

        >>> Column.parse("person.pname")
        Column(table='person', name='pname')
        """
        parts = qualified.split(".")
        if len(parts) != 2:
            raise SchemaError(
                f"expected 'table.column', got {qualified!r}"
            )
        return cls(parts[0], parts[1])


@dataclass(frozen=True)
class Table:
    """A relational table with named columns and a primary key.

    Parameters
    ----------
    name:
        Table name, unique within a schema.
    columns:
        Ordered column names.
    primary_key:
        Subset of ``columns`` forming the primary key. May be empty for
        tables whose key is unknown (the algorithms then treat every
        column as non-identifying).
    """

    name: str
    columns: tuple[str, ...]
    primary_key: tuple[str, ...] = ()

    def __init__(
        self,
        name: str,
        columns: Sequence[str],
        primary_key: Sequence[str] = (),
    ) -> None:
        _check_identifier(name, "table")
        cols = tuple(columns)
        if not cols:
            raise SchemaError(f"table {name!r} must have at least one column")
        for col in cols:
            _check_identifier(col, "column")
        if len(set(cols)) != len(cols):
            raise SchemaError(f"table {name!r} has duplicate columns: {cols}")
        pk = tuple(primary_key)
        missing = [c for c in pk if c not in cols]
        if missing:
            raise SchemaError(
                f"primary key of table {name!r} mentions unknown columns {missing}"
            )
        if len(set(pk)) != len(pk):
            raise SchemaError(f"primary key of table {name!r} repeats columns: {pk}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "columns", cols)
        object.__setattr__(self, "primary_key", pk)

    @property
    def arity(self) -> int:
        """Number of columns."""
        return len(self.columns)

    @property
    def non_key_columns(self) -> tuple[str, ...]:
        """Columns not in the primary key, in declaration order."""
        return tuple(c for c in self.columns if c not in self.primary_key)

    def column(self, name: str) -> Column:
        """Return the qualified :class:`Column` for ``name``."""
        if name not in self.columns:
            raise SchemaError(f"table {self.name!r} has no column {name!r}")
        return Column(self.name, name)

    def qualified_columns(self) -> tuple[Column, ...]:
        """All columns of this table as qualified references."""
        return tuple(Column(self.name, c) for c in self.columns)

    def __str__(self) -> str:
        rendered = ", ".join(
            f"_{c}_" if c in self.primary_key else c for c in self.columns
        )
        return f"{self.name}({rendered})"


class RelationalSchema:
    """A named collection of tables plus referential integrity constraints.

    The schema validates, at construction and on every mutation, that
    constraints reference existing tables/columns with matching arities.

    >>> schema = RelationalSchema("src")
    >>> _ = schema.add_table(Table("person", ["pname"], ["pname"]))
    >>> _ = schema.add_table(Table("writes", ["pname", "bid"], ["pname", "bid"]))
    >>> schema.add_ric(ReferentialConstraint.parse("writes.pname -> person.pname"))
    >>> sorted(schema.table_names())
    ['person', 'writes']
    """

    def __init__(
        self,
        name: str,
        tables: Iterable[Table] = (),
        rics: Iterable[ReferentialConstraint] = (),
    ) -> None:
        _check_identifier(name, "schema")
        self.name = name
        self._tables: dict[str, Table] = {}
        self._rics: list[ReferentialConstraint] = []
        for table in tables:
            self.add_table(table)
        for ric in rics:
            self.add_ric(ric)

    # ------------------------------------------------------------------
    # Tables
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        """Add ``table``; raises :class:`SchemaError` on duplicate names."""
        if table.name in self._tables:
            raise SchemaError(
                f"schema {self.name!r} already has a table named {table.name!r}"
            )
        self._tables[table.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise SchemaError(
                f"schema {self.name!r} has no table named {name!r}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> tuple[str, ...]:
        """Table names in insertion order."""
        return tuple(self._tables)

    @property
    def tables(self) -> Mapping[str, Table]:
        """Read-only view of the tables by name."""
        return dict(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def __contains__(self, name: object) -> bool:
        return name in self._tables

    def has_column(self, column: Column) -> bool:
        return (
            column.table in self._tables
            and column.name in self._tables[column.table].columns
        )

    def check_column(self, column: Column) -> Column:
        """Validate that ``column`` exists in this schema and return it."""
        if not self.has_column(column):
            raise SchemaError(
                f"schema {self.name!r} has no column {column}"
            )
        return column

    # ------------------------------------------------------------------
    # Referential integrity constraints
    # ------------------------------------------------------------------
    def add_ric(self, ric: ReferentialConstraint) -> ReferentialConstraint:
        """Add a RIC after validating it against the current tables."""
        self._validate_ric(ric)
        self._rics.append(ric)
        return ric

    def _validate_ric(self, ric: ReferentialConstraint) -> None:
        for table_name, cols in (
            (ric.child_table, ric.child_columns),
            (ric.parent_table, ric.parent_columns),
        ):
            table = self.table(table_name)
            for col in cols:
                if col not in table.columns:
                    raise SchemaError(
                        f"RIC {ric} references unknown column "
                        f"{table_name}.{col}"
                    )

    @property
    def rics(self) -> tuple[ReferentialConstraint, ...]:
        return tuple(self._rics)

    def rics_from(self, table_name: str) -> tuple[ReferentialConstraint, ...]:
        """RICs whose child (referencing) table is ``table_name``."""
        return tuple(r for r in self._rics if r.child_table == table_name)

    def rics_to(self, table_name: str) -> tuple[ReferentialConstraint, ...]:
        """RICs whose parent (referenced) table is ``table_name``."""
        return tuple(r for r in self._rics if r.parent_table == table_name)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def describe(self) -> str:
        """Human-readable multi-line description of the schema."""
        lines = [f"schema {self.name}:"]
        for table in self:
            lines.append(f"  {table}")
        for ric in self._rics:
            lines.append(f"  RIC {ric}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"RelationalSchema({self.name!r}, tables={len(self._tables)}, "
            f"rics={len(self._rics)})"
        )
