"""repro — semantic schema-mapping discovery.

A from-scratch reproduction of *"A Semantic Approach to Discovering
Schema Mapping Expressions"* (An, Borgida, Miller, Mylopoulos — ICDE
2007): given a source and a target relational schema, a conceptual model
with table semantics for each, and simple column correspondences, the
library discovers GLAV schema mappings (source-to-target tgds), compares
them against the Clio-style RIC-based baseline, and reruns the paper's
whole evaluation.

Typical usage::

    from repro import (
        ConceptualModel, CorrespondenceSet, design_schema, discover_mappings,
    )

    cm = ConceptualModel("books")
    cm.add_class("Person", attributes=["pname"], key=["pname"])
    ...
    source = design_schema(cm, "source")
    target = design_schema(other_cm, "target")
    corrs = CorrespondenceSet.parse(["person.pname <-> author.aname"])
    result = discover_mappings(source.semantics, target.semantics, corrs)
    print(result.best().to_tgd("M"))

Tuning and observability live on one frozen options object::

    from repro import DiscoveryOptions, Scenario, discover

    options = DiscoveryOptions(explain=True)
    result = discover(
        Scenario.create("case-1", source, target, corrs), options=options
    )
    for event in result.trace["prunes"]:
        print(event["rule"], event["detail"])

See ``docs/api.md`` for the public-API map and ``docs/observability.md``
for tracing/explain.
"""

from repro.cm import (
    Cardinality,
    CMGraph,
    CMReasoner,
    ConceptualModel,
    ConnectionCategory,
    SemanticType,
    model_from_dict,
    model_to_dict,
)
from repro.correspondences import Correspondence, CorrespondenceSet
from repro.matching import as_correspondence_set, suggest_correspondences
from repro.baseline import RICBasedMapper, discover_ric_mappings
from repro.discovery import (
    STAGE_NAMES,
    BatchPolicy,
    BatchResult,
    DiscoveryOptions,
    DiscoveryResult,
    Rediscovery,
    Scenario,
    SemanticMapper,
    discover_many,
    discover_mappings,
    rediscover,
    rediscover_many,
)
from repro.trace import Tracer
from repro.exceptions import ReproError
from repro.mappings import (
    InversionResult,
    MappingCandidate,
    MappingSet,
    SourceToTargetTGD,
    compose,
    contains,
    equivalent,
    exchange,
    implies,
    invert,
    query_to_algebra,
)
from repro.relational import (
    Column,
    Instance,
    ReferentialConstraint,
    RelationalSchema,
    Table,
)
from repro.semantics import (
    SchemaSemantics,
    SemanticTree,
    design_schema,
    recover_semantics,
)

__version__ = "0.1.0"


def discover(
    scenario: Scenario,
    options: DiscoveryOptions | None = None,
    trace: Tracer | None = None,
) -> DiscoveryResult:
    """Run one :class:`Scenario` and return its :class:`DiscoveryResult`.

    The scenario-first companion to :func:`discover_mappings`:
    ``options`` (when given) replaces the options stored on the
    scenario, and ``trace`` injects a caller-owned
    :class:`~repro.trace.Tracer`. Unlike :func:`discover_many` there is
    no fault isolation — errors propagate to the caller.
    """
    if options is not None:
        scenario = Scenario.create(
            scenario.scenario_id,
            scenario.source,
            scenario.target,
            scenario.correspondences,
            options=options,
        )
    return scenario.run(tracer=trace)

__all__ = [
    "__version__",
    "ReproError",
    # Conceptual models
    "Cardinality",
    "CMGraph",
    "CMReasoner",
    "ConceptualModel",
    "ConnectionCategory",
    "SemanticType",
    "model_from_dict",
    "model_to_dict",
    # Relational
    "Column",
    "Instance",
    "ReferentialConstraint",
    "RelationalSchema",
    "Table",
    # Semantics
    "SchemaSemantics",
    "SemanticTree",
    "design_schema",
    "recover_semantics",
    # Correspondences
    "Correspondence",
    "CorrespondenceSet",
    "suggest_correspondences",
    "as_correspondence_set",
    # Discovery
    "BatchPolicy",
    "BatchResult",
    "DiscoveryOptions",
    "DiscoveryResult",
    "Rediscovery",
    "STAGE_NAMES",
    "Scenario",
    "SemanticMapper",
    "Tracer",
    "discover",
    "discover_many",
    "discover_mappings",
    "rediscover",
    "rediscover_many",
    # Baseline
    "RICBasedMapper",
    "discover_ric_mappings",
    # Mappings
    "MappingCandidate",
    "MappingSet",
    "SourceToTargetTGD",
    "exchange",
    "query_to_algebra",
    # Lifecycle algebra
    "InversionResult",
    "compose",
    "contains",
    "equivalent",
    "implies",
    "invert",
]
