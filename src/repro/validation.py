"""Pre-flight validation of discovery inputs with structured diagnostics.

Every check a :class:`~repro.discovery.mapper.SemanticMapper` run would
otherwise fail on deep inside Steiner search or LAV rewriting is made
explicit here, *before* execution: correspondences must reference
existing columns, s-trees must be subgraphs of their CM graph with
correctly owned attributes, and RICs must name real tables and columns.
Problems come back as :class:`Diagnostic` records inside a
:class:`ValidationReport` instead of a stack trace, so the three callers
— :class:`SemanticMapper.__init__`, the evaluation harness, and the
``python -m repro validate`` subcommand — can render, count, or raise on
them uniformly.

Severities
----------
``error``
    The input cannot run: discovery would raise.
``warning``
    The input runs, but is probably not what the caller meant (e.g. an
    empty correspondence set, which makes ``discover()`` raise
    :class:`~repro.exceptions.DiscoveryError` by design).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable

from repro.correspondences import CorrespondenceSet
from repro.exceptions import ConceptualModelError, SchemaError, ValidationError
from repro.relational.schema import RelationalSchema
from repro.semantics.lav import SchemaSemantics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.discovery.batch import Scenario

#: Diagnostic severities, mild to fatal.
WARNING = "warning"
ERROR = "error"


@dataclass(frozen=True)
class Diagnostic:
    """One validation finding.

    ``code`` is a stable dotted identifier (``"correspondence.source-column"``,
    ``"stree.edge"``, ...) meant for programmatic filtering; ``location``
    names the schema/table/scenario the finding is about.
    """

    severity: str
    code: str
    message: str
    location: str = ""

    def __str__(self) -> str:
        where = f" [{self.location}]" if self.location else ""
        return f"{self.severity}: {self.code}{where}: {self.message}"


@dataclass
class ValidationReport:
    """All diagnostics of one validation run, in discovery order."""

    diagnostics: list[Diagnostic] = field(default_factory=list)

    # -- assembly -------------------------------------------------------
    def add(
        self, severity: str, code: str, message: str, location: str = ""
    ) -> None:
        self.diagnostics.append(Diagnostic(severity, code, message, location))

    def error(self, code: str, message: str, location: str = "") -> None:
        self.add(ERROR, code, message, location)

    def warning(self, code: str, message: str, location: str = "") -> None:
        self.add(WARNING, code, message, location)

    def extend(self, other: "ValidationReport") -> "ValidationReport":
        self.diagnostics.extend(other.diagnostics)
        return self

    # -- interrogation --------------------------------------------------
    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == WARNING)

    @property
    def ok(self) -> bool:
        """True when no *errors* were found (warnings are tolerated)."""
        return not self.errors

    def raise_if_errors(self) -> "ValidationReport":
        """Raise :class:`ValidationError` when any error diagnostic exists."""
        errors = self.errors
        if errors:
            summary = "; ".join(str(d) for d in errors[:3])
            if len(errors) > 3:
                summary += f"; ... ({len(errors) - 3} more)"
            raise ValidationError(
                f"{len(errors)} validation error(s): {summary}",
                diagnostics=self.diagnostics,
            )
        return self

    def render(self) -> str:
        """Human-readable multi-line rendering (empty string when clean)."""
        return "\n".join(str(d) for d in self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)


# ---------------------------------------------------------------------------
# Schema-level checks
# ---------------------------------------------------------------------------
def validate_schema(schema: RelationalSchema) -> ValidationReport:
    """Check that every RIC names real tables/columns with equal arity.

    :class:`RelationalSchema` enforces this on ``add_ric``, but schemas
    are mutable and loaders may assemble them through other paths, so the
    harness re-verifies rather than trusting construction-time checks.
    """
    report = ValidationReport()
    for ric in schema.rics:
        for table_name, cols in (
            (ric.child_table, ric.child_columns),
            (ric.parent_table, ric.parent_columns),
        ):
            if not schema.has_table(table_name):
                report.error(
                    "ric.table",
                    f"RIC {ric} references unknown table {table_name!r}",
                    schema.name,
                )
                continue
            table = schema.table(table_name)
            for col in cols:
                if col not in table.columns:
                    report.error(
                        "ric.column",
                        f"RIC {ric} references unknown column "
                        f"{table_name}.{col}",
                        schema.name,
                    )
        if len(ric.child_columns) != len(ric.parent_columns):
            report.error(
                "ric.arity",
                f"RIC {ric} pairs {len(ric.child_columns)} child columns "
                f"with {len(ric.parent_columns)} parent columns",
                schema.name,
            )
    return report


# ---------------------------------------------------------------------------
# Semantics-level checks
# ---------------------------------------------------------------------------
def validate_semantics(semantics: SchemaSemantics) -> ValidationReport:
    """Check that every s-tree is a subgraph of its CM graph.

    Per table: the mapped columns must exist in the table, every tree
    node must be a class node of the CM graph, every tree edge must be an
    actual CM edge, and every column's attribute must belong to its
    node's class.
    """
    report = ValidationReport().extend(validate_schema(semantics.schema))
    graph = semantics.graph
    for table_name in semantics.tables_with_semantics():
        tree = semantics.tree(table_name)
        location = f"{semantics.schema.name}.{table_name}"
        try:
            table = semantics.schema.table(table_name)
        except SchemaError:
            report.error(
                "stree.table",
                f"s-tree recorded for unknown table {table_name!r}",
                location,
            )
            continue
        unknown = sorted(set(tree.columns) - set(table.columns))
        if unknown:
            report.error(
                "stree.columns",
                f"s-tree maps columns missing from the table: {unknown}",
                location,
            )
        for node in tree.nodes():
            if not graph.is_class_node(node.cm_node):
                report.error(
                    "stree.node",
                    f"tree node {node} is not a class node of the CM graph",
                    location,
                )
        for edge in tree.edges:
            try:
                graph.edge(
                    edge.parent.cm_node, edge.cm_edge.label, edge.child.cm_node
                )
            except ConceptualModelError as exc:
                report.error(
                    "stree.edge",
                    f"tree edge {edge} is not a CM graph edge: {exc}",
                    location,
                )
        for column, (node, attribute) in sorted(tree.columns.items()):
            if not semantics.model.has_class(node.cm_node):
                continue  # already reported as stree.node
            owner = semantics.model.cm_class(node.cm_node)
            if attribute not in owner.attributes:
                report.error(
                    "stree.attribute",
                    f"column {column!r} maps to {node}.{attribute}, but "
                    f"class {node.cm_node!r} has no attribute "
                    f"{attribute!r}",
                    location,
                )
    return report


# ---------------------------------------------------------------------------
# Correspondence-level checks
# ---------------------------------------------------------------------------
def validate_correspondences(
    correspondences: CorrespondenceSet,
    source: SchemaSemantics,
    target: SchemaSemantics,
) -> ValidationReport:
    """Check that every correspondence can be lifted through the semantics.

    Each side's column must exist in its schema, the owning table must
    have recorded semantics, and the column must be mapped to an
    attribute node of the table's s-tree (otherwise lifting raises deep
    inside :meth:`CorrespondenceSet.lift`).
    """
    report = ValidationReport()
    if len(correspondences) == 0:
        report.warning(
            "correspondence.empty",
            "no correspondences: discover() has nothing to interpret",
        )
    for correspondence in correspondences:
        for side, column, semantics in (
            ("source", correspondence.source, source),
            ("target", correspondence.target, target),
        ):
            location = f"{correspondence}"
            if not semantics.schema.has_column(column):
                report.error(
                    f"correspondence.{side}-column",
                    f"{side} column {column} not in schema "
                    f"{semantics.schema.name!r}",
                    location,
                )
                continue
            if not semantics.has_tree(column.table):
                report.error(
                    f"correspondence.{side}-semantics",
                    f"table {column.table!r} has no recorded semantics, "
                    f"so {column} cannot be lifted",
                    location,
                )
                continue
            if column.name not in semantics.tree(column.table).columns:
                report.error(
                    f"correspondence.{side}-unmapped",
                    f"column {column} is not mapped to any attribute node "
                    f"of its s-tree",
                    location,
                )
    return report


# ---------------------------------------------------------------------------
# Whole-input checks
# ---------------------------------------------------------------------------
def validate_pair(
    source: SchemaSemantics,
    target: SchemaSemantics,
    correspondences: CorrespondenceSet,
) -> ValidationReport:
    """Validate a full discovery input: both semantics + correspondences."""
    report = ValidationReport()
    report.extend(validate_semantics(source))
    report.extend(validate_semantics(target))
    report.extend(validate_correspondences(correspondences, source, target))
    return report


def validate_scenario(scenario: "Scenario") -> ValidationReport:
    """Validate one batch :class:`Scenario`, tagging its id as location."""
    report = validate_pair(
        scenario.source, scenario.target, scenario.correspondences
    )
    tagged = ValidationReport()
    for diagnostic in report:
        location = (
            f"{scenario.scenario_id}: {diagnostic.location}"
            if diagnostic.location
            else scenario.scenario_id
        )
        tagged.add(
            diagnostic.severity, diagnostic.code, diagnostic.message, location
        )
    return tagged


def validate_scenarios(
    scenarios: Iterable["Scenario"],
) -> ValidationReport:
    """Validate many scenarios into one combined report."""
    report = ValidationReport()
    for scenario in scenarios:
        report.extend(validate_scenario(scenario))
    return report
