"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle any library
failure while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """An ill-formed relational schema, table, or constraint."""


class InstanceError(ReproError):
    """A relational instance that does not conform to its schema."""


class ConceptualModelError(ReproError):
    """An ill-formed conceptual model (CM) or CM graph."""


class CardinalityError(ConceptualModelError):
    """An invalid cardinality specification (e.g. ``min > max``)."""


class SemanticsError(ReproError):
    """Invalid table semantics: a malformed s-tree or LAV specification."""


class QueryError(ReproError):
    """A malformed conjunctive query or an invalid query operation."""


class RewritingError(ReproError):
    """Query rewriting against table semantics failed or is impossible."""


class DiscoveryError(ReproError):
    """The mapping-discovery pipeline received inconsistent inputs."""


class CorrespondenceError(ReproError):
    """A correspondence references unknown tables or columns."""


class DatasetError(ReproError):
    """A benchmark dataset definition is internally inconsistent."""


class EvaluationError(ReproError):
    """The evaluation harness was invoked with invalid arguments."""


class ValidationError(ReproError):
    """Pre-flight validation of a discovery input found errors.

    Raised by :func:`repro.validation.ValidationReport.raise_if_errors`;
    carries the structured diagnostics so callers can render or filter
    them instead of parsing the message.
    """

    def __init__(self, message: str, diagnostics: tuple = ()) -> None:
        super().__init__(message)
        #: The :class:`repro.validation.Diagnostic` records behind the
        #: message (errors and warnings alike), in discovery order.
        self.diagnostics = tuple(diagnostics)


class IngestError(ReproError):
    """Live-database ingestion failed (bad database, dump, or CM).

    Raised by :mod:`repro.ingest` when a database cannot be opened, a
    SQL dump fails to execute, or introspected inputs cannot be turned
    into a discovery scenario. The message is safe to show to callers.
    """


class ServiceError(ReproError):
    """Base class for errors of the ``repro.service`` HTTP subsystem."""


class WireFormatError(ServiceError):
    """A service request does not conform to the JSON wire format.

    The server maps these to HTTP 400 responses; the message is safe to
    return to the caller (it never leaks internal state).
    """


class QueueFullError(ServiceError):
    """The service job queue is at capacity (backpressure; HTTP 429)."""


class ServiceCallError(ServiceError):
    """A service client call received a non-success HTTP response.

    Carries the HTTP ``status`` and, when the body was JSON, the decoded
    error ``payload`` so callers can inspect structured diagnostics.
    """

    def __init__(
        self, message: str, status: int = 0, payload: object = None
    ) -> None:
        super().__init__(message)
        self.status = status
        self.payload = payload


class BatchError(ReproError):
    """Base class for failures of one scenario inside a batch run.

    Batch discovery never lets these abort the batch: they are captured
    as :class:`repro.discovery.batch.ScenarioFailure` records. The
    subclasses exist so per-scenario guards can distinguish *how* a
    scenario died.
    """


class ScenarioTimeout(BatchError):
    """A scenario exceeded its per-scenario wall-clock timeout."""


class WorkerCrashed(BatchError):
    """A worker process died (e.g. hard exit, OOM kill) mid-scenario."""


class ReproWarning(Warning):
    """Base class for warnings issued by the ``repro`` library."""


class TimeoutUnavailableWarning(ReproWarning):
    """A requested per-scenario timeout cannot be enforced here.

    ``SIGALRM`` — the mechanism behind ``BatchPolicy.timeout_seconds`` —
    only exists on Unix and only fires on the main thread of a process.
    When a timeout is requested from a context without it (a worker
    thread, e.g. the ``repro.service`` job queue, or a non-Unix
    platform), the batch layer degrades to running without a limit and
    issues this warning instead of crashing or silently ignoring the
    policy.
    """
