"""Exception hierarchy for the ``repro`` library.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch one type to handle any library
failure while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SchemaError(ReproError):
    """An ill-formed relational schema, table, or constraint."""


class InstanceError(ReproError):
    """A relational instance that does not conform to its schema."""


class ConceptualModelError(ReproError):
    """An ill-formed conceptual model (CM) or CM graph."""


class CardinalityError(ConceptualModelError):
    """An invalid cardinality specification (e.g. ``min > max``)."""


class SemanticsError(ReproError):
    """Invalid table semantics: a malformed s-tree or LAV specification."""


class QueryError(ReproError):
    """A malformed conjunctive query or an invalid query operation."""


class RewritingError(ReproError):
    """Query rewriting against table semantics failed or is impossible."""


class DiscoveryError(ReproError):
    """The mapping-discovery pipeline received inconsistent inputs."""


class CorrespondenceError(ReproError):
    """A correspondence references unknown tables or columns."""


class DatasetError(ReproError):
    """A benchmark dataset definition is internally inconsistent."""


class EvaluationError(ReproError):
    """The evaluation harness was invoked with invalid arguments."""
