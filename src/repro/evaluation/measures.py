"""Precision and recall of mapping discovery (Section 4, "Measures").

For a mapping case with generated set ``P`` and manually-created
benchmark set ``R``::

    precision = |P ∩ R| / |P|        recall = |P ∩ R| / |R|

Membership in ``P ∩ R`` uses the paper's criterion — the *same pair of
connections* covering the same correspondences — implemented as
:meth:`MappingCandidate.same_mapping_as` (boolean-equivalent source
bodies, boolean-equivalent target bodies, equal covered sets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.mappings.expression import MappingCandidate
from repro.queries.chase import ChaseEngine, InclusionDependency
from repro.queries.conjunctive import (
    DB_PREFIX,
    ConjunctiveQuery,
    VariableFactory,
)
from repro.queries.homomorphism import are_equivalent
from repro.queries.normalize import chase_with_keys, key_positions_of_schema
from repro.relational.schema import RelationalSchema


def constraint_closure(
    query: ConjunctiveQuery,
    schema: RelationalSchema | None,
    max_depth: int = 4,
) -> ConjunctiveQuery:
    """The boolean body of ``query`` chased with the schema's constraints.

    Chasing with the RICs (inclusion dependencies) and primary keys makes
    equivalence checks constraint-aware: ``person ⋈ writes`` and
    ``person ⋈ writes ⋈ book`` denote the same connection when
    ``writes.bid ⊆ book.bid`` holds, and the chase makes that literal.
    """
    boolean = ConjunctiveQuery([], query.body, query.name)
    if schema is None:
        return boolean
    dependencies = [
        InclusionDependency.from_ric(ric, schema, DB_PREFIX)
        for ric in schema.rics
    ]
    atoms = ChaseEngine(dependencies, max_depth=max_depth).chase(
        boolean.body, VariableFactory("_cc")
    )
    chased = ConjunctiveQuery([], atoms, query.name)
    keyed = chase_with_keys(chased, key_positions_of_schema(schema))
    return keyed if keyed is not None else chased


class _ClosedCandidate:
    """A candidate with constraint-chased bodies, cached for comparison."""

    def __init__(
        self,
        candidate: MappingCandidate,
        source_schema: RelationalSchema | None,
        target_schema: RelationalSchema | None,
    ) -> None:
        self.candidate = candidate
        self.source_closure = constraint_closure(
            candidate.source_query, source_schema
        )
        self.target_closure = constraint_closure(
            candidate.target_query, target_schema
        )

    def matches(self, other: "_ClosedCandidate") -> bool:
        if set(self.candidate.covered) != set(other.candidate.covered):
            return False
        return are_equivalent(
            self.source_closure, other.source_closure
        ) and are_equivalent(self.target_closure, other.target_closure)


def intersection_size(
    generated: Sequence[MappingCandidate],
    gold: Sequence[MappingCandidate],
    source_schema: RelationalSchema | None = None,
    target_schema: RelationalSchema | None = None,
) -> int:
    """``|P ∩ R|`` — each gold mapping matches at most one generated one.

    With schemas supplied, equality is judged up to the schemas' RICs and
    keys (the chase-closure of the bodies); otherwise it is the plain
    :meth:`MappingCandidate.same_mapping_as` criterion.
    """
    closed_generated = [
        _ClosedCandidate(c, source_schema, target_schema) for c in generated
    ]
    closed_gold = [
        _ClosedCandidate(c, source_schema, target_schema) for c in gold
    ]
    matched = 0
    used: set[int] = set()
    for gold_mapping in closed_gold:
        for index, candidate in enumerate(closed_generated):
            if index in used:
                continue
            if candidate.matches(gold_mapping):
                matched += 1
                used.add(index)
                break
    return matched


@dataclass(frozen=True)
class PrecisionRecall:
    """Precision/recall for one case (or micro-averaged over cases)."""

    precision: float
    recall: float
    generated: int
    gold: int
    matched: int

    def __str__(self) -> str:
        return (
            f"P={self.precision:.2f} R={self.recall:.2f} "
            f"(matched {self.matched}/{self.gold}, generated {self.generated})"
        )


def precision_recall(
    generated: Sequence[MappingCandidate],
    gold: Sequence[MappingCandidate],
    source_schema: RelationalSchema | None = None,
    target_schema: RelationalSchema | None = None,
) -> PrecisionRecall:
    """Compute the paper's two measures for one mapping case.

    An empty ``P`` scores precision 0 (nothing correct was produced),
    matching the paper's treatment of cases where the sought non-trivial
    mapping was missed entirely.
    """
    matched = intersection_size(generated, gold, source_schema, target_schema)
    precision = matched / len(generated) if generated else 0.0
    recall = matched / len(gold) if gold else 0.0
    return PrecisionRecall(
        precision=precision,
        recall=recall,
        generated=len(generated),
        gold=len(gold),
        matched=matched,
    )


def average(values: Sequence[float]) -> float:
    """Plain average, 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0
