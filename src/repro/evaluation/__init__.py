"""Evaluation harness: precision/recall measures and Table 1 / Figs 6-7."""

from repro.evaluation.measures import (
    PrecisionRecall,
    average,
    intersection_size,
    precision_recall,
)
from repro.evaluation.harness import (
    METHODS,
    RIC,
    SEMANTIC,
    CaseResult,
    DatasetResult,
    run_all,
    run_case,
    run_dataset,
)
from repro.evaluation.report import (
    render_case_details,
    render_failures,
    render_figure6,
    render_figure7,
    render_table1,
)

__all__ = [
    "PrecisionRecall",
    "average",
    "intersection_size",
    "precision_recall",
    "METHODS",
    "RIC",
    "SEMANTIC",
    "CaseResult",
    "DatasetResult",
    "run_all",
    "run_case",
    "run_dataset",
    "render_case_details",
    "render_failures",
    "render_figure6",
    "render_figure7",
    "render_table1",
]
