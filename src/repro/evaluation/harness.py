"""The experiment harness: reruns the paper's whole evaluation (Section 4).

For every dataset pair and every benchmark mapping case, both methods run
on the case's correspondences:

* the **semantic** approach (:class:`repro.discovery.SemanticMapper`) —
  schemas + CMs + table semantics;
* the **RIC-based** baseline (:class:`repro.baseline.RICBasedMapper`) —
  schemas + keys/RICs only.

The harness aggregates per-domain average precision (Figure 6), average
recall (Figure 7), and the Table 1 characteristics, and can be run as a
module: ``python -m repro.evaluation.harness``.

Failure semantics
-----------------
By default the harness is **fail-fast**: the first case that raises (or
times out, with ``--timeout``) aborts the run with the underlying error.
With ``--keep-going`` each failing case is recorded as a structured
:class:`~repro.discovery.batch.ScenarioFailure` on its
:class:`DatasetResult` instead, the remaining cases still run, and the
process exits non-zero to reflect the partial failure. See
``docs/robustness.md``.
"""

from __future__ import annotations

import argparse
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.baseline.clio import RICBasedMapper
from repro.datasets.registry import (
    DatasetPair,
    MappingCase,
    dataset_names,
    load_all_datasets,
    load_dataset,
)
from repro.discovery.batch import (
    BatchPolicy,
    Scenario,
    ScenarioFailure,
    discover_many,
    failure_from_exception,
)
from repro.discovery.mapper import SemanticMapper
from repro.evaluation.measures import PrecisionRecall, average, precision_recall

#: Method identifiers used throughout the harness and reports.
SEMANTIC = "semantic"
RIC = "ric"
METHODS = (SEMANTIC, RIC)


@dataclass(frozen=True)
class CaseResult:
    """Both measures for one (dataset, case, method) run."""

    dataset: str
    case_id: str
    method: str
    measures: PrecisionRecall
    elapsed_seconds: float


@dataclass
class DatasetResult:
    """All case results of one dataset pair plus its characteristics.

    ``failures`` records cases that produced no result (exception,
    timeout, worker crash) when running with ``fail_fast=False``; their
    ids are absent from ``case_results`` for the failing method.
    """

    pair: DatasetPair
    case_results: list[CaseResult] = field(default_factory=list)
    failures: list[ScenarioFailure] = field(default_factory=list)

    def results_for(self, method: str) -> list[CaseResult]:
        return [r for r in self.case_results if r.method == method]

    def average_precision(self, method: str) -> float:
        return average(
            [r.measures.precision for r in self.results_for(method)]
        )

    def average_recall(self, method: str) -> float:
        return average([r.measures.recall for r in self.results_for(method)])

    def total_time(self, method: str) -> float:
        return sum(r.elapsed_seconds for r in self.results_for(method))

    @property
    def ok(self) -> bool:
        return not self.failures


def run_case(
    pair: DatasetPair, mapping_case: MappingCase, method: str
) -> CaseResult:
    """Run one method on one benchmark case and score it."""
    if method == SEMANTIC:
        result = SemanticMapper(
            pair.source, pair.target, mapping_case.correspondences
        ).discover()
    elif method == RIC:
        result = RICBasedMapper(
            pair.source.schema,
            pair.target.schema,
            mapping_case.correspondences,
        ).discover()
    else:
        raise ValueError(f"unknown method {method!r}")
    measures = precision_recall(
        result.candidates,
        mapping_case.benchmark,
        source_schema=pair.source.schema,
        target_schema=pair.target.schema,
    )
    return CaseResult(
        dataset=pair.name,
        case_id=mapping_case.case_id,
        method=method,
        measures=measures,
        elapsed_seconds=result.elapsed_seconds,
    )


def _score_case(
    pair: DatasetPair, mapping_case: MappingCase, method: str, result
) -> CaseResult:
    measures = precision_recall(
        result.candidates,
        mapping_case.benchmark,
        source_schema=pair.source.schema,
        target_schema=pair.target.schema,
    )
    return CaseResult(
        dataset=pair.name,
        case_id=mapping_case.case_id,
        method=method,
        measures=measures,
        elapsed_seconds=result.elapsed_seconds,
    )


def run_dataset(
    pair: DatasetPair,
    methods=METHODS,
    workers: int = 1,
    fail_fast: bool = True,
    timeout_seconds: float | None = None,
) -> DatasetResult:
    """Run all benchmark cases of one dataset pair with all methods.

    The semantic method goes through :func:`repro.discovery.discover_many`,
    so the pair's graph indexes and translation caches are shared across
    its cases (and, with ``workers > 1``, cases fan out over a process
    pool). The RIC baseline has no shared state worth batching and stays
    serial.

    With ``fail_fast=True`` (default) the first failing case re-raises;
    with ``fail_fast=False`` failing cases become
    :class:`ScenarioFailure` records on the returned result and the
    remaining cases still run. ``timeout_seconds`` bounds each semantic
    case's wall-clock time.
    """
    dataset_result = DatasetResult(pair)
    for mapping_case in pair.cases:
        for method in methods:
            if method == SEMANTIC:
                continue  # batched below
            started = time.perf_counter()
            try:
                dataset_result.case_results.append(
                    run_case(pair, mapping_case, method)
                )
            except Exception as error:
                if fail_fast:
                    raise
                dataset_result.failures.append(
                    failure_from_exception(
                        f"{pair.name}/{mapping_case.case_id}[{method}]",
                        error,
                        time.perf_counter() - started,
                    )
                )
    if SEMANTIC in methods:
        scenarios = [
            Scenario.create(
                mapping_case.case_id,
                pair.source,
                pair.target,
                mapping_case.correspondences,
            )
            for mapping_case in pair.cases
        ]
        batch = discover_many(
            scenarios,
            workers=workers,
            policy=BatchPolicy(timeout_seconds=timeout_seconds),
        )
        if fail_fast:
            batch.raise_first_failure()
        results_by_id = dict(batch.results)
        for mapping_case in pair.cases:
            result = results_by_id.get(mapping_case.case_id)
            if result is not None:
                dataset_result.case_results.append(
                    _score_case(pair, mapping_case, SEMANTIC, result)
                )
        dataset_result.failures.extend(
            ScenarioFailure(
                scenario_id=(
                    f"{pair.name}/{failure.scenario_id}[{SEMANTIC}]"
                ),
                error_type=failure.error_type,
                message=failure.message,
                traceback_summary=failure.traceback_summary,
                elapsed_seconds=failure.elapsed_seconds,
                attempts=failure.attempts,
            )
            for failure in batch.failures
        )
    return dataset_result


def _run_dataset_by_name(
    name: str,
    methods=METHODS,
    fail_fast: bool = True,
    timeout_seconds: float | None = None,
) -> DatasetResult:
    """Top-level (picklable) worker: load one pair by name and run it."""
    return run_dataset(
        load_dataset(name),
        methods,
        fail_fast=fail_fast,
        timeout_seconds=timeout_seconds,
    )


def run_all(
    methods=METHODS,
    workers: int = 1,
    fail_fast: bool = True,
    timeout_seconds: float | None = None,
) -> list[DatasetResult]:
    """The full evaluation over every registered dataset pair.

    With ``workers > 1`` dataset pairs fan out over a process pool (each
    worker loads its pair from the registry by name, so only results
    cross the process boundary); each pair's cases then share caches
    serially inside their worker.
    """
    if workers > 1:
        names = dataset_names()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    _run_dataset_by_name,
                    names,
                    [methods] * len(names),
                    [fail_fast] * len(names),
                    [timeout_seconds] * len(names),
                )
            )
    return [
        run_dataset(
            pair,
            methods,
            fail_fast=fail_fast,
            timeout_seconds=timeout_seconds,
        )
        for pair in load_all_datasets()
    ]


def main(argv: list[str] | None = None) -> int:
    """Command-line entry: print Table 1, Figure 6, and Figure 7.

    Exits 0 on a clean run and 1 when ``--keep-going`` recorded any
    per-case failures.
    """
    from repro.evaluation.report import (
        render_failures,
        render_figure6,
        render_figure7,
        render_table1,
        render_case_details,
    )

    parser = argparse.ArgumentParser(
        description="Rerun the paper's evaluation (Table 1, Figures 6-7)."
    )
    parser.add_argument(
        "--details",
        action="store_true",
        help="also print per-case precision/recall",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan dataset pairs out over N worker processes",
    )
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        default=True,
        help="abort on the first failing case (default)",
    )
    mode.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="record failing cases and keep evaluating; exit 1 at the end",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-case wall-clock limit for the semantic method",
    )
    args = parser.parse_args(argv)
    results = run_all(
        workers=args.workers,
        fail_fast=args.fail_fast,
        timeout_seconds=args.timeout,
    )
    print(render_table1(results))
    print()
    print(render_figure6(results))
    print()
    print(render_figure7(results))
    if args.details:
        print()
        print(render_case_details(results))
    failed = sum(len(r.failures) for r in results)
    if failed:
        print()
        print(render_failures(results))
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
