"""The experiment harness: reruns the paper's whole evaluation (Section 4).

For every dataset pair and every benchmark mapping case, both methods run
on the case's correspondences:

* the **semantic** approach (:class:`repro.discovery.SemanticMapper`) —
  schemas + CMs + table semantics;
* the **RIC-based** baseline (:class:`repro.baseline.RICBasedMapper`) —
  schemas + keys/RICs only.

The harness aggregates per-domain average precision (Figure 6), average
recall (Figure 7), and the Table 1 characteristics, and can be run as a
module: ``python -m repro.evaluation.harness``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

from repro.baseline.clio import RICBasedMapper
from repro.datasets.registry import DatasetPair, MappingCase, load_all_datasets
from repro.discovery.mapper import SemanticMapper
from repro.evaluation.measures import PrecisionRecall, average, precision_recall

#: Method identifiers used throughout the harness and reports.
SEMANTIC = "semantic"
RIC = "ric"
METHODS = (SEMANTIC, RIC)


@dataclass(frozen=True)
class CaseResult:
    """Both measures for one (dataset, case, method) run."""

    dataset: str
    case_id: str
    method: str
    measures: PrecisionRecall
    elapsed_seconds: float


@dataclass
class DatasetResult:
    """All case results of one dataset pair plus its characteristics."""

    pair: DatasetPair
    case_results: list[CaseResult] = field(default_factory=list)

    def results_for(self, method: str) -> list[CaseResult]:
        return [r for r in self.case_results if r.method == method]

    def average_precision(self, method: str) -> float:
        return average(
            [r.measures.precision for r in self.results_for(method)]
        )

    def average_recall(self, method: str) -> float:
        return average([r.measures.recall for r in self.results_for(method)])

    def total_time(self, method: str) -> float:
        return sum(r.elapsed_seconds for r in self.results_for(method))


def run_case(
    pair: DatasetPair, mapping_case: MappingCase, method: str
) -> CaseResult:
    """Run one method on one benchmark case and score it."""
    if method == SEMANTIC:
        result = SemanticMapper(
            pair.source, pair.target, mapping_case.correspondences
        ).discover()
    elif method == RIC:
        result = RICBasedMapper(
            pair.source.schema,
            pair.target.schema,
            mapping_case.correspondences,
        ).discover()
    else:
        raise ValueError(f"unknown method {method!r}")
    measures = precision_recall(
        result.candidates,
        mapping_case.benchmark,
        source_schema=pair.source.schema,
        target_schema=pair.target.schema,
    )
    return CaseResult(
        dataset=pair.name,
        case_id=mapping_case.case_id,
        method=method,
        measures=measures,
        elapsed_seconds=result.elapsed_seconds,
    )


def run_dataset(pair: DatasetPair, methods=METHODS) -> DatasetResult:
    """Run all benchmark cases of one dataset pair with all methods."""
    dataset_result = DatasetResult(pair)
    for mapping_case in pair.cases:
        for method in methods:
            dataset_result.case_results.append(
                run_case(pair, mapping_case, method)
            )
    return dataset_result


def run_all(methods=METHODS) -> list[DatasetResult]:
    """The full evaluation over every registered dataset pair."""
    return [run_dataset(pair, methods) for pair in load_all_datasets()]


def main(argv: list[str] | None = None) -> int:
    """Command-line entry: print Table 1, Figure 6, and Figure 7."""
    from repro.evaluation.report import (
        render_figure6,
        render_figure7,
        render_table1,
        render_case_details,
    )

    parser = argparse.ArgumentParser(
        description="Rerun the paper's evaluation (Table 1, Figures 6-7)."
    )
    parser.add_argument(
        "--details",
        action="store_true",
        help="also print per-case precision/recall",
    )
    args = parser.parse_args(argv)
    results = run_all()
    print(render_table1(results))
    print()
    print(render_figure6(results))
    print()
    print(render_figure7(results))
    if args.details:
        print()
        print(render_case_details(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
