"""The experiment harness: reruns the paper's whole evaluation (Section 4).

For every dataset pair and every benchmark mapping case, both methods run
on the case's correspondences:

* the **semantic** approach (:class:`repro.discovery.SemanticMapper`) —
  schemas + CMs + table semantics;
* the **RIC-based** baseline (:class:`repro.baseline.RICBasedMapper`) —
  schemas + keys/RICs only.

The harness aggregates per-domain average precision (Figure 6), average
recall (Figure 7), and the Table 1 characteristics, and can be run as a
module: ``python -m repro.evaluation.harness``.
"""

from __future__ import annotations

import argparse
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.baseline.clio import RICBasedMapper
from repro.datasets.registry import (
    DatasetPair,
    MappingCase,
    dataset_names,
    load_all_datasets,
    load_dataset,
)
from repro.discovery.batch import Scenario, discover_many
from repro.discovery.mapper import SemanticMapper
from repro.evaluation.measures import PrecisionRecall, average, precision_recall

#: Method identifiers used throughout the harness and reports.
SEMANTIC = "semantic"
RIC = "ric"
METHODS = (SEMANTIC, RIC)


@dataclass(frozen=True)
class CaseResult:
    """Both measures for one (dataset, case, method) run."""

    dataset: str
    case_id: str
    method: str
    measures: PrecisionRecall
    elapsed_seconds: float


@dataclass
class DatasetResult:
    """All case results of one dataset pair plus its characteristics."""

    pair: DatasetPair
    case_results: list[CaseResult] = field(default_factory=list)

    def results_for(self, method: str) -> list[CaseResult]:
        return [r for r in self.case_results if r.method == method]

    def average_precision(self, method: str) -> float:
        return average(
            [r.measures.precision for r in self.results_for(method)]
        )

    def average_recall(self, method: str) -> float:
        return average([r.measures.recall for r in self.results_for(method)])

    def total_time(self, method: str) -> float:
        return sum(r.elapsed_seconds for r in self.results_for(method))


def run_case(
    pair: DatasetPair, mapping_case: MappingCase, method: str
) -> CaseResult:
    """Run one method on one benchmark case and score it."""
    if method == SEMANTIC:
        result = SemanticMapper(
            pair.source, pair.target, mapping_case.correspondences
        ).discover()
    elif method == RIC:
        result = RICBasedMapper(
            pair.source.schema,
            pair.target.schema,
            mapping_case.correspondences,
        ).discover()
    else:
        raise ValueError(f"unknown method {method!r}")
    measures = precision_recall(
        result.candidates,
        mapping_case.benchmark,
        source_schema=pair.source.schema,
        target_schema=pair.target.schema,
    )
    return CaseResult(
        dataset=pair.name,
        case_id=mapping_case.case_id,
        method=method,
        measures=measures,
        elapsed_seconds=result.elapsed_seconds,
    )


def _score_case(
    pair: DatasetPair, mapping_case: MappingCase, method: str, result
) -> CaseResult:
    measures = precision_recall(
        result.candidates,
        mapping_case.benchmark,
        source_schema=pair.source.schema,
        target_schema=pair.target.schema,
    )
    return CaseResult(
        dataset=pair.name,
        case_id=mapping_case.case_id,
        method=method,
        measures=measures,
        elapsed_seconds=result.elapsed_seconds,
    )


def run_dataset(pair: DatasetPair, methods=METHODS, workers: int = 1) -> DatasetResult:
    """Run all benchmark cases of one dataset pair with all methods.

    The semantic method goes through :func:`repro.discovery.discover_many`,
    so the pair's graph indexes and translation caches are shared across
    its cases (and, with ``workers > 1``, cases fan out over a process
    pool). The RIC baseline has no shared state worth batching and stays
    serial.
    """
    dataset_result = DatasetResult(pair)
    for mapping_case in pair.cases:
        for method in methods:
            if method == SEMANTIC:
                continue  # batched below
            dataset_result.case_results.append(
                run_case(pair, mapping_case, method)
            )
    if SEMANTIC in methods:
        scenarios = [
            Scenario.create(
                mapping_case.case_id,
                pair.source,
                pair.target,
                mapping_case.correspondences,
            )
            for mapping_case in pair.cases
        ]
        batch = discover_many(scenarios, workers=workers)
        for mapping_case, (_, result) in zip(pair.cases, batch.results):
            dataset_result.case_results.append(
                _score_case(pair, mapping_case, SEMANTIC, result)
            )
    return dataset_result


def _run_dataset_by_name(name: str, methods=METHODS) -> DatasetResult:
    """Top-level (picklable) worker: load one pair by name and run it."""
    return run_dataset(load_dataset(name), methods)


def run_all(methods=METHODS, workers: int = 1) -> list[DatasetResult]:
    """The full evaluation over every registered dataset pair.

    With ``workers > 1`` dataset pairs fan out over a process pool (each
    worker loads its pair from the registry by name, so only results
    cross the process boundary); each pair's cases then share caches
    serially inside their worker.
    """
    if workers > 1:
        names = dataset_names()
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(_run_dataset_by_name, names, [methods] * len(names)))
    return [run_dataset(pair, methods) for pair in load_all_datasets()]


def main(argv: list[str] | None = None) -> int:
    """Command-line entry: print Table 1, Figure 6, and Figure 7."""
    from repro.evaluation.report import (
        render_figure6,
        render_figure7,
        render_table1,
        render_case_details,
    )

    parser = argparse.ArgumentParser(
        description="Rerun the paper's evaluation (Table 1, Figures 6-7)."
    )
    parser.add_argument(
        "--details",
        action="store_true",
        help="also print per-case precision/recall",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan dataset pairs out over N worker processes",
    )
    args = parser.parse_args(argv)
    results = run_all(workers=args.workers)
    print(render_table1(results))
    print()
    print(render_figure6(results))
    print()
    print(render_figure7(results))
    if args.details:
        print()
        print(render_case_details(results))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
