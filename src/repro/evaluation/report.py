"""Textual rendering of the paper's Table 1 and Figures 6–7.

The figures are bar charts in the paper; here they render as aligned
text tables plus ASCII bars so the "who wins, by how much" shape is
visible directly in terminal output and in ``bench_output.txt``.
"""

from __future__ import annotations

from typing import Sequence

from repro.evaluation.harness import RIC, SEMANTIC, DatasetResult

_BAR_WIDTH = 24


def _bar(value: float) -> str:
    filled = round(value * _BAR_WIDTH)
    return "█" * filled + "·" * (_BAR_WIDTH - filled)


def _format_row(cells: Sequence[str], widths: Sequence[int]) -> str:
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


def render_table1(results: Sequence[DatasetResult]) -> str:
    """Table 1: characteristics of the (reconstructed) test data."""
    header = [
        "Schema",
        "#tables",
        "associated CM",
        "#nodes in CM",
        "#mappings",
        "time (sec)",
    ]
    rows: list[list[str]] = []
    for result in results:
        pair = result.pair
        time_text = f"{result.total_time(SEMANTIC):.3f}"
        rows.append(
            [
                pair.source_label,
                str(pair.source_table_count()),
                pair.source_cm_label,
                str(pair.source_cm_node_count()),
                str(pair.mapping_count()),
                time_text,
            ]
        )
        rows.append(
            [
                pair.target_label,
                str(pair.target_table_count()),
                pair.target_cm_label,
                str(pair.target_cm_node_count()),
                "",
                "",
            ]
        )
    widths = [
        max([len(header[i])] + [len(row[i]) for row in rows])
        for i in range(len(header))
    ]
    lines = ["Table 1. Characteristics of Test Data"]
    lines.append(_format_row(header, widths))
    lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    lines.extend(_format_row(row, widths) for row in rows)
    return "\n".join(lines)


def _render_measure_figure(
    results: Sequence[DatasetResult], title: str, getter: str
) -> str:
    lines = [title]
    name_width = max(len(r.pair.name) for r in results) if results else 6
    for result in results:
        semantic_value = getattr(result, getter)(SEMANTIC)
        ric_value = getattr(result, getter)(RIC)
        lines.append(
            f"  {result.pair.name.ljust(name_width)}  "
            f"semantic {_bar(semantic_value)} {semantic_value:4.2f}   "
            f"RIC-based {_bar(ric_value)} {ric_value:4.2f}"
        )
    semantic_avg = (
        sum(getattr(r, getter)(SEMANTIC) for r in results) / len(results)
        if results
        else 0.0
    )
    ric_avg = (
        sum(getattr(r, getter)(RIC) for r in results) / len(results)
        if results
        else 0.0
    )
    lines.append(
        f"  {'OVERALL'.ljust(name_width)}  "
        f"semantic {_bar(semantic_avg)} {semantic_avg:4.2f}   "
        f"RIC-based {_bar(ric_avg)} {ric_avg:4.2f}"
    )
    return "\n".join(lines)


def render_figure6(results: Sequence[DatasetResult]) -> str:
    """Figure 6: average precision per domain, semantic vs RIC-based."""
    return _render_measure_figure(
        results, "Figure 6. Average Precision", "average_precision"
    )


def render_figure7(results: Sequence[DatasetResult]) -> str:
    """Figure 7: average recall per domain, semantic vs RIC-based."""
    return _render_measure_figure(
        results, "Figure 7. Average Recall", "average_recall"
    )


def render_case_details(results: Sequence[DatasetResult]) -> str:
    """Per-case measures, for debugging and EXPERIMENTS.md."""
    lines = ["Per-case results:"]
    for result in results:
        lines.append(f"  {result.pair.name}:")
        for case_result in result.case_results:
            lines.append(
                f"    {case_result.case_id:<28} {case_result.method:<9} "
                f"{case_result.measures}  "
                f"[{case_result.elapsed_seconds * 1000:.1f} ms]"
            )
        for failure in result.failures:
            lines.append(f"    {failure.scenario_id:<28} FAILED "
                         f"({failure.error_type})")
    return "\n".join(lines)


def render_failures(results: Sequence[DatasetResult]) -> str:
    """Structured failure records collected under ``--keep-going``."""
    failed = sum(len(result.failures) for result in results)
    if not failed:
        return "Failures: none"
    lines = [f"Failures ({failed} case(s) produced no result):"]
    for result in results:
        for failure in result.failures:
            lines.append(f"  {failure.describe()}")
    return "\n".join(lines)
