"""The service's JSON wire format: requests in, scenarios and results out.

A *scenario spec* names a discovery input in one of two shapes:

Registered dataset (warm, cheap — the pair is built once per process)::

    {"dataset": "DBLP", "case": "dblp-article-in-journal"}
    {"dataset": "DBLP", "correspondences": ["article.title <-> ..."]}

Fully inline (self-contained — both schema semantics shipped in the
request)::

    {
        "id": "my-scenario",
        "source": {"schema": {...}, "model": {...}, "trees": {...}},
        "target": {"schema": {...}, "model": {...}, "trees": {...}},
        "correspondences": ["person.pname <-> hasbooksoldat.aname"]
    }

The semantics shape is produced by :func:`semantics_to_wire`: ``schema``
lists tables/columns/primary keys plus RICs in their textual form,
``model`` is :func:`repro.cm.serialize.model_to_dict`, and ``trees``
holds per-table s-tree specs accepted by
:meth:`repro.semantics.stree.SemanticTree.build`.

Result payloads reuse :mod:`repro.mappings.serialize` for the candidate
documents, so a served mapping set is the same JSON a user would get
from :func:`~repro.mappings.serialize.dump_mapping_set` — and the
deterministic part (``"mapping"``) is kept separate from per-run
diagnostics (``"run"``) so cached and fresh responses are byte-identical
where they must be.

Every malformed input raises :class:`~repro.exceptions.WireFormatError`
with a caller-safe message; the server maps these to HTTP 400.

Versioning
----------
Payloads carry ``"version": 1`` (:data:`WIRE_VERSION`). Requests may
declare the version they speak; an unknown major version is refused with
a 400 rather than misinterpreted. Adding *fields* is not a version bump;
changing the meaning or shape of existing ones is. See
``docs/service.md``.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.cm.graph import CMGraph
from repro.cm.serialize import model_from_dict, model_to_dict
from repro.correspondences import CorrespondenceSet
from repro.datasets.registry import DatasetPair, dataset_names, load_dataset
from repro.discovery.batch import Scenario, ScenarioFailure
from repro.discovery.mapper import DiscoveryResult
from repro.discovery.options import DiscoveryOptions
from repro.exceptions import ReproError, WireFormatError
from repro.mappings.serialize import FORMAT, candidate_to_dict
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import RelationalSchema, Table
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import SemanticTree
from repro.validation import ValidationReport

#: Scalar JSON types accepted as mapper-option values.
_OPTION_SCALARS = (str, int, float, bool, type(None))

#: The wire-format major version this module speaks.
WIRE_VERSION = 1


def check_wire_version(payload: Mapping[str, Any]) -> int:
    """Validate a request's declared ``"version"``; returns it.

    Absent means "current" (:data:`WIRE_VERSION`). A different major
    version — we only have majors — is refused: silently serving a
    client that speaks a different protocol corrupts data quietly, a 400
    fails it loudly.
    """
    version = payload.get("version", WIRE_VERSION)
    if not isinstance(version, int) or isinstance(version, bool):
        raise WireFormatError(
            f"'version' must be an integer, got {type(version).__name__}"
        )
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version}; this server speaks "
            f"version {WIRE_VERSION}"
        )
    return version


# ---------------------------------------------------------------------------
# Dataset resolution (kept warm across requests)
# ---------------------------------------------------------------------------
@functools.lru_cache(maxsize=None)
def resolve_dataset(name: str) -> DatasetPair:
    """Load a registered dataset pair once and keep it for the process.

    Reusing the same :class:`DatasetPair` objects across requests is
    what keeps the graph indexes, reasoner memos, and the batch layer's
    content keys warm — a cold ``load_dataset`` per request would defeat
    the serving architecture.
    """
    try:
        return load_dataset(name)
    except ReproError as error:
        raise WireFormatError(str(error)) from error


# ---------------------------------------------------------------------------
# Schema semantics <-> wire
# ---------------------------------------------------------------------------
def semantics_to_wire(semantics: SchemaSemantics) -> dict[str, Any]:
    """Serialize one :class:`SchemaSemantics` to the inline wire shape."""
    schema = semantics.schema
    trees: dict[str, Any] = {}
    for table_name in semantics.tables_with_semantics():
        tree = semantics.tree(table_name)
        trees[table_name] = {
            "root": tree.root.node_id,
            "edges": [
                [edge.parent.node_id, edge.cm_edge.label, edge.child.node_id]
                for edge in tree.edges
            ],
            "columns": {
                column: f"{node.node_id}.{attribute}"
                for column, (node, attribute) in sorted(tree.columns.items())
            },
        }
    return {
        "schema": {
            "name": schema.name,
            "tables": [
                {
                    "name": table.name,
                    "columns": list(table.columns),
                    "primary_key": list(table.primary_key),
                }
                for table in schema
            ],
            "rics": [str(ric) for ric in schema.rics],
        },
        "model": model_to_dict(semantics.model),
        "trees": trees,
    }


def semantics_from_wire(spec: Mapping[str, Any]) -> SchemaSemantics:
    """Rebuild a :class:`SchemaSemantics` from the inline wire shape."""
    if not isinstance(spec, Mapping):
        raise WireFormatError(
            f"semantics spec must be an object, got {type(spec).__name__}"
        )
    try:
        schema_spec = spec["schema"]
        model_spec = spec["model"]
    except KeyError as missing:
        raise WireFormatError(
            f"semantics spec needs {missing.args[0]!r}"
        ) from None
    try:
        tables = [
            Table(
                entry["name"],
                entry["columns"],
                entry.get("primary_key", ()),
            )
            for entry in schema_spec.get("tables", ())
        ]
        rics = [
            ReferentialConstraint.parse(text)
            for text in schema_spec.get("rics", ())
        ]
        schema = RelationalSchema(schema_spec["name"], tables, rics)
        model = model_from_dict(model_spec)
        graph = CMGraph(model)
        trees = {
            table_name: SemanticTree.build(
                graph,
                tree_spec["root"],
                [tuple(edge) for edge in tree_spec.get("edges", ())],
                tree_spec.get("columns", {}),
            )
            for table_name, tree_spec in spec.get("trees", {}).items()
        }
        return SchemaSemantics(schema, graph, trees)
    except WireFormatError:
        raise
    except (ReproError, KeyError, TypeError, ValueError) as error:
        raise WireFormatError(
            f"bad semantics spec: {type(error).__name__}: {error}"
        ) from error


# ---------------------------------------------------------------------------
# Scenario spec -> Scenario
# ---------------------------------------------------------------------------
def scenario_from_wire(
    spec: Mapping[str, Any],
    default_options: DiscoveryOptions | None = None,
) -> Scenario:
    """Build a batch :class:`Scenario` from one scenario spec.

    Discovery options come from the spec's ``"options"`` object
    (:meth:`DiscoveryOptions.from_mapping` — unknown keys are a 400),
    falling back to ``default_options`` (e.g. the request-level
    ``"options"``). The pre-versioning ``"mapper_options"`` key still
    works; mixing it with ``"options"`` is refused as ambiguous.
    """
    if not isinstance(spec, Mapping):
        raise WireFormatError(
            f"scenario spec must be an object, got {type(spec).__name__}"
        )
    if "dataset" in spec:
        source, target, correspondences, default_id = _dataset_scenario(spec)
    elif "source" in spec and "target" in spec:
        source = semantics_from_wire(spec["source"])
        target = semantics_from_wire(spec["target"])
        correspondences = _parse_correspondences(
            spec.get("correspondences", ())
        )
        default_id = "inline"
    else:
        raise WireFormatError(
            "scenario spec needs either a registered 'dataset' or inline "
            "'source' and 'target' semantics"
        )
    scenario_id = str(spec.get("id", default_id))
    if "options" in spec and "mapper_options" in spec:
        raise WireFormatError(
            "give discovery options as 'options' or the deprecated "
            "'mapper_options', not both"
        )
    if "options" in spec:
        options = discovery_options_from_wire(spec["options"])
        return Scenario.create(
            scenario_id, source, target, correspondences, options=options
        )
    if "mapper_options" in spec:
        legacy = _mapper_options(spec["mapper_options"])
        return Scenario.create(
            scenario_id, source, target, correspondences, **legacy
        )
    return Scenario.create(
        scenario_id,
        source,
        target,
        correspondences,
        options=default_options,
    )


def discovery_options_from_wire(spec: Any) -> DiscoveryOptions:
    """Parse one wire ``"options"`` object; bad shapes become 400s.

    A ``cache_dir`` path is refused: the cache directory is a *server*
    deployment setting (``--cache-dir`` / ``ServiceConfig``), and a
    client must not be able to point the process at an arbitrary
    filesystem path. An explicit ``null`` is allowed — it is the
    default, so full ``DiscoveryOptions.to_dict()`` payloads round-trip.
    """
    if not isinstance(spec, Mapping):
        raise WireFormatError(
            f"'options' must be an object, got {type(spec).__name__}"
        )
    if spec.get("cache_dir") is not None:
        raise WireFormatError(
            "'cache_dir' is a server-side setting and cannot be supplied "
            "in request options; start the service with --cache-dir"
        )
    try:
        return DiscoveryOptions.from_mapping(spec, where="options")
    except ValueError as error:
        raise WireFormatError(str(error)) from error


def _dataset_scenario(
    spec: Mapping[str, Any],
) -> tuple[SchemaSemantics, SchemaSemantics, CorrespondenceSet, str]:
    name = spec["dataset"]
    if not isinstance(name, str):
        raise WireFormatError(
            f"'dataset' must be a string, got {type(name).__name__}"
        )
    pair = resolve_dataset(name)
    if "case" in spec:
        case_id = spec["case"]
        matching = [c for c in pair.cases if c.case_id == case_id]
        if not matching:
            raise WireFormatError(
                f"dataset {name!r} has no case {case_id!r}; have "
                f"{[c.case_id for c in pair.cases]}"
            )
        (case,) = matching
        return pair.source, pair.target, case.correspondences, (
            f"{name}/{case_id}"
        )
    if "correspondences" in spec:
        correspondences = _parse_correspondences(spec["correspondences"])
        return pair.source, pair.target, correspondences, f"{name}/adhoc"
    raise WireFormatError(
        f"dataset scenario for {name!r} needs a 'case' id or an explicit "
        f"'correspondences' list; known datasets: {sorted(dataset_names())}"
    )


def _parse_correspondences(texts: Any) -> CorrespondenceSet:
    if not isinstance(texts, (list, tuple)) or not all(
        isinstance(text, str) for text in texts
    ):
        raise WireFormatError(
            "'correspondences' must be a list of "
            "'table.column <-> table.column' strings"
        )
    try:
        return CorrespondenceSet.parse(list(texts))
    except ReproError as error:
        raise WireFormatError(str(error)) from error


def _mapper_options(options: Any) -> dict[str, Any]:
    if not isinstance(options, Mapping):
        raise WireFormatError(
            f"'mapper_options' must be an object, got "
            f"{type(options).__name__}"
        )
    for key, value in options.items():
        if not isinstance(key, str) or not isinstance(
            value, _OPTION_SCALARS
        ):
            raise WireFormatError(
                f"mapper option {key!r} must map a string to a JSON "
                f"scalar, got {type(value).__name__}"
            )
    return dict(options)


# ---------------------------------------------------------------------------
# Discovery request options
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class DiscoverOptions:
    """Per-request knobs of ``POST /discover``.

    ``discovery`` holds the request-level ``"options"`` object (applied
    to the scenario unless the scenario spec carries its own).
    """

    mode: str = "sync"
    use_cache: bool = True
    timeout_seconds: float | None = None
    discovery: DiscoveryOptions = field(default_factory=DiscoveryOptions)


def discover_request_from_wire(
    payload: Mapping[str, Any],
) -> tuple[Scenario, DiscoverOptions]:
    """Parse a full ``POST /discover`` body: scenario + options."""
    if not isinstance(payload, Mapping):
        raise WireFormatError("request body must be a JSON object")
    check_wire_version(payload)
    if "scenario" not in payload:
        raise WireFormatError("request body needs a 'scenario' object")
    discovery = DiscoveryOptions()
    if "options" in payload:
        discovery = discovery_options_from_wire(payload["options"])
    scenario = scenario_from_wire(
        payload["scenario"], default_options=discovery
    )
    mode = payload.get("mode", "sync")
    if mode not in ("sync", "async"):
        raise WireFormatError(f"'mode' must be 'sync' or 'async', got {mode!r}")
    use_cache = payload.get("use_cache", True)
    if not isinstance(use_cache, bool):
        raise WireFormatError("'use_cache' must be a boolean")
    timeout = payload.get("timeout_seconds")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise WireFormatError("'timeout_seconds' must be a positive number")
        timeout = float(timeout)
    return scenario, DiscoverOptions(mode, use_cache, timeout, discovery)


# ---------------------------------------------------------------------------
# Ingestion requests (POST /introspect)
# ---------------------------------------------------------------------------
#: Keys in a wire database spec that smell like filesystem/network
#: references — refused outright, mirroring the ``cache_dir`` policy.
_PATHLIKE_DB_KEYS = frozenset(
    {"path", "file", "filename", "url", "uri", "database", "dsn"}
)


@dataclass(frozen=True)
class IngestRequest:
    """A parsed ``POST /introspect`` body (see ``docs/ingestion.md``).

    Both databases arrive as *SQL dumps* — never as paths; models
    arrive as registered dataset names or inline documents — never as
    files. ``backend`` picks how the dumps are read: ``"sqlite"``
    executes them into in-memory connections under the ATTACH-denying
    authorizer, ``"pgdump"`` parses Postgres/MySQL dump text without
    executing anything, ``"auto"`` sniffs each dump's dialect.
    """

    source_sql: str
    target_sql: str
    source_model: Any
    target_model: Any
    scenario_id: str
    correspondences: CorrespondenceSet | None
    threshold: float
    sample_rows: int
    verify: bool
    strict: bool
    options: DiscoverOptions
    backend: str = "sqlite"


def _database_sql(spec: Any, side: str) -> str:
    """Extract the SQL dump of one wire database spec; refuse paths.

    The server must never open a filesystem path a client named: a
    request like ``{"path": "/etc/..."}`` is rejected with a message
    explaining the policy, exactly like ``cache_dir`` in options.
    """
    if not isinstance(spec, Mapping):
        raise WireFormatError(
            f"'{side}' must be an object with an 'sql' dump, got "
            f"{type(spec).__name__}"
        )
    pathlike = sorted(_PATHLIKE_DB_KEYS & set(spec))
    if pathlike:
        raise WireFormatError(
            f"'{side}' carries filesystem/network reference(s) "
            f"{pathlike}: the server never opens paths named by a "
            f"client; ship the database as {{'sql': <dump>}} (use "
            f"'python -m repro introspect' locally for file access)"
        )
    unknown = sorted(set(spec) - {"sql"})
    if unknown:
        raise WireFormatError(
            f"'{side}' has unknown key(s) {unknown}; expected 'sql'"
        )
    sql = spec.get("sql")
    if not isinstance(sql, str) or not sql.strip():
        raise WireFormatError(
            f"'{side}.sql' must be a non-empty SQL dump string"
        )
    return sql


def _cm_models(spec: Any) -> tuple[Any, Any]:
    """Resolve the wire ``"cm"`` field to ``(source, target)`` models."""
    if isinstance(spec, str):
        if spec in dataset_names():
            pair = resolve_dataset(spec)
            return pair.source.model, pair.target.model
        raise WireFormatError(
            f"'cm' {spec!r} is not a registered dataset "
            f"({sorted(dataset_names())}); file paths cannot be "
            f"supplied over the wire — inline the model document "
            f"instead"
        )
    if isinstance(spec, Mapping):
        try:
            if "source" in spec and "target" in spec:
                return (
                    model_from_dict(spec["source"]),
                    model_from_dict(spec["target"]),
                )
            model = model_from_dict(spec)
            return model, model
        except (ReproError, KeyError, TypeError, ValueError) as error:
            raise WireFormatError(
                f"bad 'cm' model document: {error}"
            ) from error
    raise WireFormatError(
        f"'cm' must be a dataset name or an inline model document, got "
        f"{type(spec).__name__}"
    )


def introspect_request_from_wire(payload: Mapping[str, Any]) -> IngestRequest:
    """Parse a full ``POST /introspect`` body; bad shapes become 400s."""
    if not isinstance(payload, Mapping):
        raise WireFormatError("request body must be a JSON object")
    check_wire_version(payload)
    for key in ("source_db", "target_db", "cm"):
        if key not in payload:
            raise WireFormatError(f"request body needs {key!r}")
    source_sql = _database_sql(payload["source_db"], "source_db")
    target_sql = _database_sql(payload["target_db"], "target_db")
    backend = payload.get("backend", "sqlite")
    if backend not in ("sqlite", "pgdump", "auto"):
        raise WireFormatError(
            f"'backend' must be 'sqlite', 'pgdump', or 'auto', got "
            f"{backend!r}"
        )
    source_model, target_model = _cm_models(payload["cm"])
    correspondences = None
    if "correspondences" in payload:
        correspondences = _parse_correspondences(payload["correspondences"])
    threshold = payload.get("threshold", 0.75)
    if (
        not isinstance(threshold, (int, float))
        or isinstance(threshold, bool)
        or not 0.0 < threshold <= 1.0
    ):
        raise WireFormatError(
            "'threshold' must be a number in (0, 1]"
        )
    strict = payload.get("strict", False)
    if not isinstance(strict, bool):
        raise WireFormatError("'strict' must be a boolean")
    verify = payload.get("verify", False)
    if not isinstance(verify, bool):
        raise WireFormatError("'verify' must be a boolean")
    sample_rows = payload.get("sample_rows", 100 if verify else 0)
    if (
        not isinstance(sample_rows, int)
        or isinstance(sample_rows, bool)
        or sample_rows < 0
    ):
        raise WireFormatError(
            "'sample_rows' must be a non-negative integer"
        )
    if verify and sample_rows == 0:
        raise WireFormatError(
            "'verify' needs sampled rows; leave 'sample_rows' unset or "
            "make it positive"
        )
    discovery = DiscoveryOptions()
    if "options" in payload:
        discovery = discovery_options_from_wire(payload["options"])
    mode = payload.get("mode", "sync")
    if mode not in ("sync", "async"):
        raise WireFormatError(
            f"'mode' must be 'sync' or 'async', got {mode!r}"
        )
    if verify and mode == "async":
        raise WireFormatError(
            "'verify' is synchronous (it checks mappings against the "
            "sampled rows before responding); use mode 'sync'"
        )
    use_cache = payload.get("use_cache", True)
    if not isinstance(use_cache, bool):
        raise WireFormatError("'use_cache' must be a boolean")
    timeout = payload.get("timeout_seconds")
    if timeout is not None:
        if not isinstance(timeout, (int, float)) or timeout <= 0:
            raise WireFormatError(
                "'timeout_seconds' must be a positive number"
            )
        timeout = float(timeout)
    return IngestRequest(
        source_sql=source_sql,
        target_sql=target_sql,
        source_model=source_model,
        target_model=target_model,
        scenario_id=str(payload.get("id", "introspected")),
        correspondences=correspondences,
        threshold=float(threshold),
        sample_rows=sample_rows,
        verify=verify,
        strict=strict,
        options=DiscoverOptions(mode, use_cache, timeout, discovery),
        backend=backend,
    )


# ---------------------------------------------------------------------------
# Composition requests (POST /compose)
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class ComposeRequest:
    """A parsed ``POST /compose`` body.

    ``first`` and ``second`` are mapping sets in the same
    ``repro-mappings/1`` document shape that ``/discover`` responses and
    :func:`repro.mappings.serialize.dump_mapping_set` emit; the composed
    S→U set comes back in that shape too. Composition is pure algebra on
    the documents — no schemas are shipped and no discovery runs.
    """

    first: Any
    second: Any
    prune: bool
    max_solutions_per_candidate: int
    invert: bool


def compose_request_from_wire(payload: Mapping[str, Any]) -> ComposeRequest:
    """Parse a full ``POST /compose`` body; bad shapes become 400s."""
    from repro.mappings.serialize import mapping_set_from_dict

    if not isinstance(payload, Mapping):
        raise WireFormatError("request body must be a JSON object")
    check_wire_version(payload)
    sets = []
    for key in ("first", "second"):
        if key not in payload:
            raise WireFormatError(
                f"request body needs {key!r}: a {FORMAT} mapping-set "
                f"document"
            )
        try:
            sets.append(mapping_set_from_dict(payload[key]))
        except ReproError as error:
            raise WireFormatError(
                f"bad {key!r} mapping set: {error}"
            ) from error
    prune = payload.get("prune", True)
    if not isinstance(prune, bool):
        raise WireFormatError("'prune' must be a boolean")
    invert = payload.get("invert", False)
    if not isinstance(invert, bool):
        raise WireFormatError("'invert' must be a boolean")
    max_solutions = payload.get("max_solutions_per_candidate", 32)
    if (
        not isinstance(max_solutions, int)
        or isinstance(max_solutions, bool)
        or max_solutions < 1
    ):
        raise WireFormatError(
            "'max_solutions_per_candidate' must be a positive integer"
        )
    return ComposeRequest(
        first=sets[0],
        second=sets[1],
        prune=prune,
        max_solutions_per_candidate=max_solutions,
        invert=invert,
    )


# ---------------------------------------------------------------------------
# Results / failures / diagnostics -> wire
# ---------------------------------------------------------------------------
def result_to_wire(result: DiscoveryResult) -> dict[str, Any]:
    """Serialize one :class:`DiscoveryResult` to a response payload.

    ``"mapping"`` is the deterministic part — candidates (via
    :func:`repro.mappings.serialize.candidate_to_dict`), notes,
    eliminations, uncovered correspondences — identical across runs for
    equal inputs, which makes cached responses byte-identical to fresh
    ones. ``"run"`` carries per-run measurements (wall time, perf
    counters) that legitimately vary. ``"trace"`` appears only for
    traced runs and is deterministic except for its ``elapsed_s`` span
    timings (see :mod:`repro.trace`).
    """
    payload: dict[str, Any] = {
        "version": WIRE_VERSION,
        "mapping": {
            "format": FORMAT,
            "candidates": [
                candidate_to_dict(candidate)
                for candidate in result.candidates
            ],
            "notes": list(result.notes),
            "eliminations": list(result.eliminations),
            "uncovered": [
                str(c) for c in result.uncovered_correspondences()
            ],
        },
        "run": {
            "elapsed_seconds": result.elapsed_seconds,
            "stats": dict(result.stats),
        },
    }
    if result.trace is not None:
        payload["trace"] = result.trace
    return payload


def failure_to_wire(failure: ScenarioFailure) -> dict[str, Any]:
    """Serialize one batch :class:`ScenarioFailure` to an error payload."""
    return {
        "type": failure.error_type,
        "message": failure.message,
        "scenario_id": failure.scenario_id,
        "traceback": list(failure.traceback_summary),
        "elapsed_seconds": failure.elapsed_seconds,
        "attempts": failure.attempts,
    }


def diagnostics_to_wire(report: ValidationReport) -> list[dict[str, str]]:
    """Serialize a validation report's diagnostics, in discovery order."""
    return [
        {
            "severity": diagnostic.severity,
            "code": diagnostic.code,
            "message": diagnostic.message,
            "location": diagnostic.location,
        }
        for diagnostic in report
    ]
