"""Content-addressed result cache: LRU + TTL over scenario fingerprints.

Keys are :func:`repro.discovery.batch.scenario_fingerprint` digests, so
the cache is addressed by what a scenario *is* (schemas, model, s-trees,
correspondences, mapper options), never by what it is called — two
requests that ship the same content under different scenario ids share
one entry, and any change to the content changes the key. Combined with
the perf layer's guarantee that caching never changes results, a hit is
always byte-identical to what a fresh run would have produced.

Entries expire two ways: least-recently-used eviction once
``max_entries`` is reached, and a wall-clock TTL (``ttl_seconds``) that
bounds how long a result can be served after it was computed. All
operations are thread-safe; the service's handler threads and job
workers share one instance.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Any, Callable


class ResultCache:
    """A bounded, thread-safe LRU + TTL map of fingerprint → payload.

    Parameters
    ----------
    max_entries:
        Capacity; ``0`` disables the cache entirely (every ``get`` is a
        miss and ``put`` is a no-op).
    ttl_seconds:
        Maximum age of a served entry; ``None`` disables expiry.
    clock:
        Injectable monotonic clock (tests pass a fake).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or ``None`` (miss/expired)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self._misses += 1
                return None
            stored_at, payload = entry
            if (
                self.ttl_seconds is not None
                and self._clock() - stored_at > self.ttl_seconds
            ):
                del self._entries[key]
                self._expirations += 1
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return payload

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key``, evicting the LRU tail."""
        if self.max_entries == 0:
            return
        with self._lock:
            self._entries[key] = (self._clock(), payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | float]:
        """Counters for the metrics endpoint (store-level hits/misses)."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        with self._lock:
            return key in self._entries
