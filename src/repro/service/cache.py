"""Content-addressed result cache: LRU + TTL over scenario fingerprints.

Keys are :func:`repro.discovery.batch.scenario_fingerprint` digests, so
the cache is addressed by what a scenario *is* (schemas, model, s-trees,
correspondences, mapper options), never by what it is called — two
requests that ship the same content under different scenario ids share
one entry, and any change to the content changes the key. Combined with
the perf layer's guarantee that caching never changes results, a hit is
always byte-identical to what a fresh run would have produced.

Entries expire two ways: least-recently-used eviction once
``max_entries`` is reached, and a wall-clock TTL (``ttl_seconds``) that
bounds how long a result can be served after it was computed. Expiry is
enforced everywhere an entry is observable — ``get``, ``__contains__``,
and ``stats()["entries"]`` all treat an expired entry as absent — and an
amortized sweep in ``put`` reclaims expired entries from the cold end of
the LRU order, so skewed access patterns cannot pin dead payloads in
memory indefinitely.

With a ``store`` attached (the disk tier of
:mod:`repro.discovery.engine.persist`), results are written through to a
shared cache directory and a memory miss falls back to it, so restarts
and sibling pre-fork worker processes serve each other's computed
results. Disk entries carry their *epoch* store time, making the TTL
meaningful across processes (monotonic clocks are process-local).

All operations are thread-safe; the service's handler threads and job
workers share one instance.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.discovery.engine.persist import PersistentStageStore

#: The persistent store's "stage" name for service result payloads —
#: result entries share the cache directory with engine artifacts but
#: live under their own keyspace.
RESULT_STAGE = "service.result"

#: How many cold-end entries one ``put`` probes for expiry. Amortized:
#: hot traffic keeps live entries at the warm end, so expired entries
#: accumulate exactly where the sweep looks.
SWEEP_PROBES = 16


class ResultCache:
    """A bounded, thread-safe LRU + TTL map of fingerprint → payload.

    Parameters
    ----------
    max_entries:
        Capacity; ``0`` disables the cache entirely (every ``get`` is a
        miss and ``put`` is a no-op).
    ttl_seconds:
        Maximum age of a served entry; ``None`` disables expiry.
    clock:
        Injectable monotonic clock (tests pass a fake).
    store:
        Optional persistent tier (see
        :class:`repro.discovery.engine.persist.PersistentStageStore`):
        ``put`` writes through, a memory miss reads through, restarts
        and sibling processes share the directory.
    epoch_clock:
        Injectable wall clock for disk-entry timestamps (defaults to
        ``time.time``; disk TTLs must be comparable across processes).
    """

    def __init__(
        self,
        max_entries: int = 256,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
        store: "PersistentStageStore | None" = None,
        epoch_clock: Callable[[], float] = time.time,
    ) -> None:
        if max_entries < 0:
            raise ValueError(f"max_entries must be >= 0, got {max_entries}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ValueError(
                f"ttl_seconds must be positive or None, got {ttl_seconds}"
            )
        self.max_entries = max_entries
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._epoch_clock = epoch_clock
        self._store = store
        self._lock = threading.Lock()
        self._entries: OrderedDict[str, tuple[float, Any]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0
        self._disk_hits = 0
        self._disk_misses = 0

    # ------------------------------------------------------------------
    # Expiry plumbing
    # ------------------------------------------------------------------
    def _expired(self, stored_at: float) -> bool:
        return (
            self.ttl_seconds is not None
            and self._clock() - stored_at > self.ttl_seconds
        )

    def _sweep_expired(self) -> None:
        """Drop expired entries from the LRU cold end (lock held).

        Probes at most :data:`SWEEP_PROBES` least-recently-used entries
        per call — O(1) amortized — and stops at the first live one:
        anything warmer was touched more recently, and ``get`` already
        expires entries it touches.
        """
        if self.ttl_seconds is None:
            return
        for _ in range(min(SWEEP_PROBES, len(self._entries))):
            key = next(iter(self._entries), None)
            if key is None:
                return
            stored_at, _ = self._entries[key]
            if not self._expired(stored_at):
                return
            del self._entries[key]
            self._expirations += 1

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def get(self, key: str) -> Any | None:
        """The payload stored under ``key``, or ``None`` (miss/expired)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                stored_at, payload = entry
                if self._expired(stored_at):
                    del self._entries[key]
                    self._expirations += 1
                else:
                    self._entries.move_to_end(key)
                    self._hits += 1
                    return payload
            self._misses += 1
        return self._get_from_store(key)

    def _get_from_store(self, key: str) -> Any | None:
        """Disk-tier fallback after a memory miss (lock not held)."""
        if self._store is None or self.max_entries == 0:
            return None
        entry = self._store.get(RESULT_STAGE, key)
        if not isinstance(entry, tuple) or len(entry) != 2:
            if entry is not None:
                # Unexpected shape (older layout): treat as a miss.
                entry = None
            with self._lock:
                self._disk_misses += 1
            return None
        stored_epoch, payload = entry
        age = max(0.0, self._epoch_clock() - float(stored_epoch))
        if self.ttl_seconds is not None and age > self.ttl_seconds:
            with self._lock:
                self._disk_misses += 1
            return None
        with self._lock:
            # Promote with the original age so the TTL keeps counting
            # from when the result was computed, not when it was read.
            self._entries[key] = (self._clock() - age, payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
            self._disk_hits += 1
        return payload

    def put(self, key: str, payload: Any) -> None:
        """Store ``payload`` under ``key``, evicting the LRU tail.

        Also runs the amortized expiry sweep (TTL-dead entries are
        reclaimed even if their keys are never ``get``-touched again)
        and writes through to the persistent store when one is attached.
        """
        if self.max_entries == 0:
            return
        with self._lock:
            self._sweep_expired()
            self._entries[key] = (self._clock(), payload)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1
        if self._store is not None:
            self._store.put(
                RESULT_STAGE, key, (self._epoch_clock(), payload)
            )

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> dict[str, int | float]:
        """Counters for the metrics endpoint (store-level hits/misses).

        ``entries`` counts only TTL-live entries — an expired payload
        still awaiting its sweep must not inflate the hit-rate math on
        ``/metrics``.
        """
        with self._lock:
            live = sum(
                1
                for stored_at, _ in self._entries.values()
                if not self._expired(stored_at)
            )
            return {
                "entries": live,
                "max_entries": self.max_entries,
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "expirations": self._expirations,
                "disk_hits": self._disk_hits,
                "disk_misses": self._disk_misses,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: object) -> bool:
        """TTL-aware membership: an expired entry is already gone."""
        with self._lock:
            entry = self._entries.get(key)  # type: ignore[arg-type]
            if entry is None:
                return False
            stored_at, _ = entry
            return not self._expired(stored_at)
