"""Pre-fork multi-process serving: N workers, one listening socket.

The single-process :class:`~repro.service.server.ReproServer` bounds
discovery concurrency with a thread pool, but one Python process is
still one GIL — CPU-bound discovery saturates a core while requests
queue. :class:`PreForkSupervisor` scales past that with the classic
pre-fork model:

1. the supervisor binds the listening socket *first* (so ``--port 0``
   resolves before any worker exists and clients can connect the moment
   ``start`` returns);
2. it forks ``processes`` workers, each of which adopts the inherited
   socket into its own ``ThreadingHTTPServer`` — the kernel load-
   balances ``accept()`` across them;
3. each worker is a full :class:`~repro.service.server.MappingService`
   (own job queue, own in-memory caches); the **shared disk tier**
   (``ServiceConfig.cache_dir`` →
   :mod:`repro.discovery.engine.persist`) is the coherence point — a
   scenario computed by worker 2 is a disk hit for workers 0, 1, 3…

Lifecycle: the supervisor restarts workers that die unexpectedly and
translates SIGINT/SIGTERM into a drain — each worker gets SIGTERM,
finishes in-flight requests (``httpd.shutdown`` stops accepting, then
the job queue drains), and exits; stragglers are SIGKILLed after a
deadline.

Metrics: each worker stamps its ``/metrics`` output with a
``worker="N"`` label and publishes it as an atomic snapshot file under
``metrics_dir``; a scrape of any worker merges its own live series with
the siblings' last snapshots plus per-slot
``repro_service_pool_worker_up`` gauges, so one scrape sees the pool.
"""

from __future__ import annotations

import dataclasses
import errno
import os
import shutil
import signal
import socket
import sys
import tempfile
import threading
import time

from repro.service.server import (
    MappingService,
    ServiceConfig,
    _Handler,
    _HTTPServer,
)

#: Listen backlog of the shared socket (matches ``_HTTPServer``).
BACKLOG = _HTTPServer.request_queue_size

#: Seconds a draining worker gets before SIGKILL.
DRAIN_TIMEOUT = 10.0

#: How often a worker republishes its metrics snapshot for siblings.
SNAPSHOT_INTERVAL = 1.0


def snapshot_path(metrics_dir: str, worker_index: int) -> str:
    """Where worker ``worker_index`` publishes its metrics snapshot."""
    return os.path.join(metrics_dir, f"worker-{worker_index}.prom")


class _SharedSocketHTTPServer(_HTTPServer):
    """A ``ThreadingHTTPServer`` serving on an inherited, bound socket.

    ``bind_and_activate=False`` skips bind/listen (the supervisor did
    both before forking); the socket the base class created unused is
    closed and replaced with the shared one. ``server_name`` /
    ``server_port`` are normally set by ``server_bind`` — fill them in
    by hand so handler logging keeps working.

    The shared socket is switched to non-blocking: every worker's
    selector wakes when a connection lands, but only one ``accept``
    wins. On a blocking socket the losers would sit *in* ``accept``
    until the next connection arrives — with N workers that serializes
    the accept path badly. Non-blocking, a lost race is an immediate
    ``BlockingIOError``, which ``_handle_request_noblock`` already
    treats as "nothing to do". (Accepted connections do not inherit
    the flag, so handler I/O stays blocking.)
    """

    def __init__(
        self, shared_socket: socket.socket, handler_class: type
    ) -> None:
        address = shared_socket.getsockname()[:2]
        super().__init__(address, handler_class, bind_and_activate=False)
        self.socket.close()
        shared_socket.setblocking(False)
        self.socket = shared_socket
        self.server_name, self.server_port = address


def _worker_main(config: ServiceConfig, shared_socket: socket.socket) -> int:
    """One forked worker's whole life; returns its exit code.

    SIGTERM/SIGINT trigger a drain: ``httpd.shutdown`` must run on a
    *different* thread than ``serve_forever`` (calling it from a signal
    handler on the serving thread deadlocks), so the handler hands it to
    a one-shot thread. After ``serve_forever`` returns, the job queue is
    stopped — in-flight discoveries finish, nothing new is accepted.
    """
    service = MappingService(config)
    httpd = _SharedSocketHTTPServer(shared_socket, _Handler)
    httpd.service = service  # type: ignore[attr-defined]

    def _drain(signum: int, frame: object) -> None:
        threading.Thread(
            target=httpd.shutdown, name="repro-worker-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    signal.signal(signal.SIGINT, _drain)
    # Republish this worker's metrics snapshot on a heartbeat (not just
    # on scrapes): a sibling answering /metrics merges the *files*, so
    # without the heartbeat a never-scraped worker would look absent.
    stop_snapshots = threading.Event()

    def _publish_snapshots() -> None:
        while not stop_snapshots.wait(SNAPSHOT_INTERVAL):
            try:
                service.metrics_text()  # publishes as a side effect
            except Exception:  # pragma: no cover - metrics best-effort
                pass

    snapshotter = threading.Thread(
        target=_publish_snapshots, name="repro-worker-metrics", daemon=True
    )
    snapshotter.start()
    try:
        httpd.serve_forever(poll_interval=0.1)
    finally:
        stop_snapshots.set()
        try:
            httpd.server_close()
        except OSError:
            pass
        service.close()
    return 0


class PreForkSupervisor:
    """Bind once, fork ``processes`` workers, supervise until stopped."""

    def __init__(
        self, config: ServiceConfig | None = None, processes: int = 2
    ) -> None:
        if processes < 1:
            raise ValueError(f"processes must be >= 1, got {processes}")
        base = config or ServiceConfig()
        self.processes = processes
        self._metrics_dir_owned = base.metrics_dir is None
        metrics_dir = base.metrics_dir or tempfile.mkdtemp(
            prefix="repro-pool-metrics-"
        )
        self.config = dataclasses.replace(
            base, pool_size=processes, metrics_dir=metrics_dir
        )
        self._socket: socket.socket | None = None
        self._children: dict[int, int] = {}  # pid -> worker index
        self._stopping = False

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    @property
    def port(self) -> int:
        if self._socket is None:
            raise RuntimeError("supervisor not started")
        return self._socket.getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "PreForkSupervisor":
        """Bind the shared socket and fork every worker."""
        if self._socket is not None:
            return self
        sock = socket.create_server(
            (self.config.host, self.config.port),
            backlog=BACKLOG,
            reuse_port=False,
        )
        sock.set_inheritable(True)
        self._socket = sock
        for index in range(self.processes):
            self._spawn(index)
        return self

    def _spawn(self, index: int) -> None:
        assert self._socket is not None
        pid = os.fork()
        if pid == 0:
            # Child: run the worker and _exit — never return into the
            # supervisor's stack (atexit handlers, pytest internals).
            code = 1
            try:
                worker_config = dataclasses.replace(
                    self.config, worker_index=index
                )
                code = _worker_main(worker_config, self._socket)
            except KeyboardInterrupt:
                code = 0
            except BaseException as error:  # pragma: no cover - defensive
                print(
                    f"repro worker {index} crashed: "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr,
                    flush=True,
                )
            finally:
                os._exit(code)
        self._children[pid] = index

    def serve_forever(self) -> None:
        """Supervise: reap, respawn, and drain on SIGINT/SIGTERM.

        The reap loop polls ``waitpid(WNOHANG)`` plus a short sleep
        rather than blocking in ``waitpid`` — a blocked ``waitpid`` is
        auto-restarted after a handled signal (PEP 475), which would
        swallow the stop request until the next child exit.
        """
        if self._socket is None:
            self.start()

        def _request_stop(signum: int, frame: object) -> None:
            self._stopping = True

        previous = {
            sig: signal.signal(sig, _request_stop)
            for sig in (signal.SIGINT, signal.SIGTERM)
        }
        try:
            while not self._stopping:
                self._reap(respawn=True)
                time.sleep(0.2)
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)
            self.stop()

    def _reap(self, respawn: bool) -> None:
        """Collect exited children; optionally restart their slots."""
        while self._children:
            try:
                pid, status = os.waitpid(-1, os.WNOHANG)
            except ChildProcessError:
                self._children.clear()
                return
            if pid == 0:
                return
            index = self._children.pop(pid, None)
            if index is None:
                continue
            if respawn and not self._stopping:
                print(
                    f"repro worker {index} exited "
                    f"(status {status}); respawning",
                    file=sys.stderr,
                    flush=True,
                )
                self._spawn(index)

    def stop(self, drain_timeout: float = DRAIN_TIMEOUT) -> None:
        """SIGTERM every worker, wait for the drain, SIGKILL stragglers."""
        self._stopping = True
        for pid in list(self._children):
            try:
                os.kill(pid, signal.SIGTERM)
            except ProcessLookupError:
                pass
        deadline = time.monotonic() + drain_timeout
        while self._children and time.monotonic() < deadline:
            self._reap(respawn=False)
            if self._children:
                time.sleep(0.05)
        for pid in list(self._children):
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        while self._children:
            self._reap(respawn=False)
            if self._children:
                time.sleep(0.01)
        if self._socket is not None:
            try:
                self._socket.close()
            except OSError as error:  # pragma: no cover - defensive
                if error.errno != errno.EBADF:
                    raise
            self._socket = None
        if self._metrics_dir_owned and self.config.metrics_dir:
            shutil.rmtree(self.config.metrics_dir, ignore_errors=True)

    def __enter__(self) -> "PreForkSupervisor":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()
