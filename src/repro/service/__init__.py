"""``repro.service``: mapping discovery as a long-running server.

The one-shot CLI pays graph-index and memo build costs on every
invocation; this package keeps them warm in a persistent process and
serves discovery over HTTP/JSON:

* :mod:`repro.service.wire` — the request/response format (registered
  dataset or fully inline scenarios; result payloads reuse
  :mod:`repro.mappings.serialize`);
* :mod:`repro.service.cache` — a content-addressed LRU + TTL result
  cache keyed by :func:`repro.discovery.batch.scenario_fingerprint`;
* :mod:`repro.service.jobs` — a bounded job queue and worker-thread
  pool over :func:`repro.discovery.batch.discover_many`, with
  single-flight coalescing of identical in-flight requests;
* :mod:`repro.service.metrics` — request/latency/cache counters layered
  on :mod:`repro.perf`, exposed Prometheus-style at ``GET /metrics``;
* :mod:`repro.service.server` — the endpoints (``POST /discover``,
  ``POST /introspect``, ``POST /validate``, ``GET /jobs/<id>``,
  ``GET /health``, ``GET /metrics``) behind ``python -m repro serve``;
* :mod:`repro.service.client` — a thin urllib client.

See ``docs/service.md`` for the API reference, capacity/backpressure
semantics, and the cache-consistency discussion.
"""

from repro.service.cache import ResultCache
from repro.service.client import ServiceClient
from repro.service.jobs import Job, JobQueue
from repro.service.metrics import ServiceMetrics, parse_exposition
from repro.service.server import MappingService, ReproServer, ServiceConfig
from repro.service.wire import (
    DiscoverOptions,
    IngestRequest,
    diagnostics_to_wire,
    discover_request_from_wire,
    failure_to_wire,
    introspect_request_from_wire,
    resolve_dataset,
    result_to_wire,
    scenario_from_wire,
    semantics_from_wire,
    semantics_to_wire,
)

__all__ = [
    "IngestRequest",
    "introspect_request_from_wire",
    "ResultCache",
    "ServiceClient",
    "Job",
    "JobQueue",
    "ServiceMetrics",
    "parse_exposition",
    "MappingService",
    "ReproServer",
    "ServiceConfig",
    "DiscoverOptions",
    "diagnostics_to_wire",
    "discover_request_from_wire",
    "failure_to_wire",
    "resolve_dataset",
    "result_to_wire",
    "scenario_from_wire",
    "semantics_from_wire",
    "semantics_to_wire",
]
