"""The service's bounded job queue and in-process worker pool.

Discovery requests become :class:`Job` records on a bounded
``queue.Queue``; a fixed pool of daemon *threads* drains it, each
running scenarios through :func:`repro.discovery.batch.discover_many`
in serial mode. Threads — not processes — are the point: every worker
shares the process's warm :class:`~repro.perf.GraphIndex` registry,
reasoner memos, and translation caches, so repeat traffic over the same
schema pairs never pays cold-start costs again.

Admission control happens at submit time, single-flight style:

1. a content-addressed cache hit returns a finished job immediately;
2. an identical scenario already queued or running is *coalesced* —
   the caller gets the same :class:`Job` and waits on the same event,
   so N concurrent identical requests cost one discovery run;
3. otherwise the job is enqueued, or :class:`QueueFullError` raised
   when the queue is at capacity (the server turns that into HTTP 429).

Failures inside a job reuse the batch layer's fault isolation: a
failing scenario produces a structured error payload, never a dead
worker thread.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import warnings
from collections import OrderedDict

from repro.discovery.batch import (
    BatchPolicy,
    Scenario,
    discover_many,
    scenario_fingerprint,
)
from repro.exceptions import QueueFullError
from repro.service.cache import ResultCache
from repro.service.metrics import ServiceMetrics
from repro.service.wire import failure_to_wire, result_to_wire

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
ERROR = "error"

_STOP = object()

#: ``DiscoveryResult.stats`` key prefixes of the per-stage cache
#: breakdown (see ``repro.perf.counters``). The aggregate keys
#: ``stage_cache_hits`` / ``stage_cache_misses`` do *not* match these
#: prefixes (trailing ``s`` vs ``_``), so they are never double-counted
#: as a stage label.
_STAGE_HIT_PREFIX = "stage_cache_hit_"
_STAGE_MISS_PREFIX = "stage_cache_miss_"
_DISK_HIT_PREFIX = "stage_cache_disk_hit_"


def observe_run_stats(metrics: ServiceMetrics, stats: dict) -> None:
    """Feed one run's ``DiscoveryResult.stats`` into the service metrics.

    Two vocabularies cross here, both derived from the engine's stage
    names: every ``time_<phase>_s`` timing becomes a
    ``repro_service_phase_seconds`` observation labelled with the phase,
    and every ``stage_cache_hit_<stage>`` / ``stage_cache_miss_<stage>``
    counter becomes a ``stage_cache_hits_total`` /
    ``stage_cache_misses_total`` increment labelled with the stage.
    The disk tier's ``stage_cache_disk_hit_<stage>`` breakdown maps to
    ``stage_cache_disk_hits_total`` the same way (disk misses carry no
    per-stage breakdown and ride along as ``repro_perf_`` gauges).
    """
    for key, value in stats.items():
        if not isinstance(value, (int, float)):
            continue
        if key.startswith("time_") and key.endswith("_s"):
            metrics.observe_phase(key[5:-2], float(value))
        elif key.startswith(_DISK_HIT_PREFIX):
            metrics.inc(
                "stage_cache_disk_hits_total",
                int(value),
                stage=key[len(_DISK_HIT_PREFIX):],
            )
        elif key.startswith(_STAGE_HIT_PREFIX):
            metrics.inc(
                "stage_cache_hits_total",
                int(value),
                stage=key[len(_STAGE_HIT_PREFIX):],
            )
        elif key.startswith(_STAGE_MISS_PREFIX):
            metrics.inc(
                "stage_cache_misses_total",
                int(value),
                stage=key[len(_STAGE_MISS_PREFIX):],
            )


class Job:
    """One discovery request's lifecycle record."""

    __slots__ = (
        "job_id",
        "scenario_id",
        "fingerprint",
        "scenario",
        "state",
        "cached",
        "result",
        "error",
        "submitted_at",
        "started_at",
        "finished_at",
        "_done",
    )

    def __init__(
        self, job_id: str, scenario: Scenario, fingerprint: str
    ) -> None:
        self.job_id = job_id
        self.scenario_id = scenario.scenario_id
        self.fingerprint = fingerprint
        self.scenario = scenario
        self.state = QUEUED
        self.cached = False
        self.result: dict | None = None
        self.error: dict | None = None
        self.submitted_at = time.monotonic()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._done = threading.Event()

    # -- transitions (called by the queue/workers only) -----------------
    def mark_running(self) -> None:
        self.state = RUNNING
        self.started_at = time.monotonic()

    def finish(self, payload: dict, cached: bool = False) -> None:
        self.result = payload
        self.cached = cached
        self.state = DONE
        self.finished_at = time.monotonic()
        self._done.set()

    def fail(self, error_payload: dict) -> None:
        self.error = error_payload
        self.state = ERROR
        self.finished_at = time.monotonic()
        self._done.set()

    # -- interrogation ---------------------------------------------------
    @property
    def done(self) -> bool:
        return self._done.is_set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job finished; ``False`` on timeout."""
        return self._done.wait(timeout)

    def to_wire(self) -> dict:
        """The ``GET /jobs/<id>`` payload."""
        payload: dict = {
            "job_id": self.job_id,
            "scenario_id": self.scenario_id,
            "state": self.state,
            "cached": self.cached,
        }
        if self.result is not None:
            payload["result"] = self.result
        if self.error is not None:
            payload["error"] = self.error
        if self.started_at is not None:
            payload["queue_seconds"] = round(
                self.started_at - self.submitted_at, 6
            )
        if self.finished_at is not None and self.started_at is not None:
            payload["run_seconds"] = round(
                self.finished_at - self.started_at, 6
            )
        return payload


class JobQueue:
    """Bounded queue + worker pool with single-flight content dedup.

    Parameters
    ----------
    workers:
        Worker-thread count. ``0`` is allowed (nothing drains the
        queue) and exists for backpressure tests; servers use >= 1.
    capacity:
        Maximum number of queued-but-not-started jobs.
    cache:
        The shared :class:`ResultCache`; results are stored under the
        scenario's content fingerprint as they complete.
    metrics:
        The shared :class:`ServiceMetrics` sink.
    policy:
        Optional :class:`BatchPolicy` applied to every job (a
        ``timeout_seconds`` degrades to a
        :class:`~repro.exceptions.TimeoutUnavailableWarning` on worker
        threads — see ``repro.discovery.batch``).
    history:
        How many finished/queued jobs stay visible to ``GET /jobs/<id>``.
    """

    def __init__(
        self,
        workers: int,
        capacity: int,
        cache: ResultCache,
        metrics: ServiceMetrics,
        policy: BatchPolicy | None = None,
        history: int = 4096,
    ) -> None:
        if workers < 0:
            raise ValueError(f"workers must be >= 0, got {workers}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if history < 1:
            raise ValueError(f"history must be >= 1, got {history}")
        self.workers = workers
        self.capacity = capacity
        self._cache = cache
        self._metrics = metrics
        self._policy = policy or BatchPolicy()
        self._history = history
        self._queue: queue.Queue = queue.Queue(maxsize=capacity)
        self._stopping = threading.Event()
        self._lock = threading.Lock()
        self._inflight: dict[str, Job] = {}
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._counter = itertools.count(1)
        self._threads = [
            threading.Thread(
                target=self._worker,
                name=f"repro-service-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, scenario: Scenario, use_cache: bool = True
    ) -> tuple[Job, bool]:
        """Admit one scenario; returns ``(job, served_from_cache)``.

        ``served_from_cache`` is true for both stored-result hits and
        coalesced joins onto an in-flight identical job — either way no
        new discovery run was started for this request.

        Raises
        ------
        QueueFullError
            When the scenario needs a new job but the queue is full.
        """
        fingerprint = scenario_fingerprint(scenario)
        if self._stopping.is_set():
            self._metrics.inc("jobs_rejected_total")
            raise QueueFullError("service is shutting down; retry later")
        with self._lock:
            if use_cache:
                payload = self._cache.get(fingerprint)
                if payload is not None:
                    job = self._register(Job(self._next_id(), scenario, fingerprint))
                    job.finish(payload, cached=True)
                    self._metrics.inc("cache_hits_total")
                    return job, True
                existing = self._inflight.get(fingerprint)
                if existing is not None:
                    self._metrics.inc("cache_hits_total")
                    self._metrics.inc("cache_coalesced_total")
                    return existing, True
                self._metrics.inc("cache_misses_total")
            job = Job(self._next_id(), scenario, fingerprint)
            try:
                self._queue.put_nowait(job)
            except queue.Full:
                self._metrics.inc("jobs_rejected_total")
                raise QueueFullError(
                    f"job queue is at capacity ({self.capacity} queued); "
                    f"retry later"
                ) from None
            self._register(job)
            self._inflight[fingerprint] = job
            return job, False

    def _next_id(self) -> str:
        return f"job-{next(self._counter):08d}"

    def _register(self, job: Job) -> Job:
        self._jobs[job.job_id] = job
        while len(self._jobs) > self._history:
            self._jobs.popitem(last=False)
        return job

    # ------------------------------------------------------------------
    # Interrogation
    # ------------------------------------------------------------------
    def job(self, job_id: str) -> Job | None:
        with self._lock:
            return self._jobs.get(job_id)

    def depth(self) -> int:
        """Jobs waiting in the queue (not yet picked up by a worker)."""
        return self._queue.qsize()

    def state_counts(self) -> dict[str, int]:
        with self._lock:
            counts = {QUEUED: 0, RUNNING: 0, DONE: 0, ERROR: 0}
            for job in self._jobs.values():
                counts[job.state] = counts.get(job.state, 0) + 1
            return counts

    # ------------------------------------------------------------------
    # Worker loop
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                self._queue.task_done()
                return
            job: Job = item
            if self._stopping.is_set():
                # Drain the backlog fast so stop() can enqueue its
                # sentinels even when the queue was full at shutdown.
                job.fail(
                    {
                        "type": "ServiceStopped",
                        "message": "service shut down before this job ran",
                    }
                )
                self._metrics.inc("jobs_failed_total")
                with self._lock:
                    if self._inflight.get(job.fingerprint) is job:
                        del self._inflight[job.fingerprint]
                self._queue.task_done()
                continue
            job.mark_running()
            self._metrics.inc("discovery_invocations_total")
            try:
                batch = discover_many(
                    [job.scenario], workers=1, policy=self._policy
                )
                if batch.failures:
                    job.fail(failure_to_wire(batch.failures[0]))
                    self._metrics.inc("jobs_failed_total")
                else:
                    result = batch.results[0][1]
                    observe_run_stats(self._metrics, result.stats)
                    payload = result_to_wire(result)
                    # Store before dropping the in-flight marker so a
                    # concurrent submit always finds the result in one
                    # of the two places (no recompute window).
                    self._cache.put(job.fingerprint, payload)
                    job.finish(payload)
                    self._metrics.inc("jobs_completed_total")
            except Exception as error:  # defensive: batch isolates faults
                job.fail(
                    {"type": type(error).__name__, "message": str(error)}
                )
                self._metrics.inc("jobs_failed_total")
            finally:
                with self._lock:
                    if self._inflight.get(job.fingerprint) is job:
                        del self._inflight[job.fingerprint]
                self._queue.task_done()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def stop(self, timeout: float | None = 5.0) -> None:
        """Stop every worker thread without blocking indefinitely.

        New submits are rejected immediately; workers fast-fail any
        still-queued jobs instead of running them. Sentinels are
        enqueued with a deadline (never a blocking ``put``), so a queue
        that is at capacity when shutdown starts — exactly the
        429-backpressure situation — cannot wedge ``stop()``. If the
        deadline passes (e.g. a worker is stuck inside a scenario, whose
        timeout is unenforced on threads), a ``RuntimeWarning`` is
        issued and the daemon workers are abandoned to process exit.
        """
        self._stopping.set()
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        stalled = 0
        for _ in self._threads:
            try:
                if deadline is None:
                    self._queue.put(_STOP)
                else:
                    remaining = max(0.0, deadline - time.monotonic())
                    self._queue.put(_STOP, timeout=remaining)
            except queue.Full:
                stalled += 1
        for thread in self._threads:
            if deadline is None:
                thread.join()
            else:
                thread.join(max(0.0, deadline - time.monotonic()))
        alive = sum(1 for thread in self._threads if thread.is_alive())
        if stalled or alive:
            warnings.warn(
                f"JobQueue.stop() deadline ({timeout}s) passed with "
                f"{stalled} stop sentinel(s) unenqueued and {alive} "
                f"worker thread(s) still running; daemon threads will "
                f"be reaped at process exit",
                RuntimeWarning,
                stacklevel=2,
            )
