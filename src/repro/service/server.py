"""The HTTP/JSON mapping-discovery server (stdlib only).

Endpoints
---------
``POST /discover``
    Run (or serve from cache) one discovery scenario. Sync by default;
    ``{"mode": "async"}`` returns 202 with a job id for polling.
    Malformed requests get 400 with structured diagnostics *before*
    anything is queued; a full queue gets 429 with ``Retry-After``.
``POST /introspect``
    Live-database ingestion in one call: two SQLite SQL dumps + a CM in,
    mappings out. Dumps execute into in-memory databases (paths are
    refused with 400; ``ATTACH`` is denied), schemas are introspected,
    semantics recovered, correspondences seeded or accepted, and the
    assembled scenario discovered through the same queue/cache as
    ``/discover``. See ``docs/ingestion.md``.
``POST /compose``
    Pure mapping algebra: compose an S→T mapping-set document with a
    T→U one into a direct S→U set (optionally also inverted). Runs
    synchronously on the handler thread — no schemas ship and no
    discovery job is queued. See ``docs/lifecycle.md``.
``POST /validate``
    Pre-flight a scenario through :mod:`repro.validation` without
    running it; always 200 with the diagnostic list (400 only for
    requests the wire layer cannot even parse).
``GET /jobs/<id>``
    Poll an async (or still-running sync) job.
``GET /health``
    Liveness plus queue/worker/cache occupancy.
``GET /metrics``
    Prometheus-style exposition of service and perf-layer counters.

Architecture: ``ThreadingHTTPServer`` accepts connections on demand
(one handler thread per in-flight request, which may block waiting on a
job), while the fixed :class:`~repro.service.jobs.JobQueue` worker pool
bounds actual discovery concurrency. All request handling is delegated
to :class:`MappingService`, which is plain-Python callable state —
tests exercise it without sockets.
"""

from __future__ import annotations

import functools
import json
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro.discovery.batch import BatchPolicy
from repro.discovery.engine import persist
from repro.exceptions import (
    QueueFullError,
    ReproError,
    WireFormatError,
)
from repro.perf import counters as perf_counters
from repro.service import metrics as service_metrics
from repro.service.cache import ResultCache
from repro.service.jobs import JobQueue
from repro.service.metrics import ServiceMetrics, perf_gauges
from repro.service.wire import (
    WIRE_VERSION,
    compose_request_from_wire,
    diagnostics_to_wire,
    discover_request_from_wire,
    introspect_request_from_wire,
    scenario_from_wire,
)
from repro.validation import validate_scenario

#: Largest accepted request body, in bytes (16 MiB fits any inline pair).
MAX_BODY_BYTES = 16 * 1024 * 1024


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs of one server instance.

    ``cache_dir`` activates the persistent cross-process cache tier
    (:mod:`repro.discovery.engine.persist`) for both the stage cache and
    the result cache — in pre-fork deployments it is the coherence
    point through which sibling workers share computed artifacts.
    ``worker_index`` / ``pool_size`` / ``metrics_dir`` are set by the
    :mod:`repro.service.pool` supervisor on each forked worker so
    ``/metrics`` can aggregate across the pool; single-process servers
    leave them at their defaults.
    """

    host: str = "127.0.0.1"
    port: int = 0
    workers: int = 2
    queue_capacity: int = 64
    cache_entries: int = 256
    cache_ttl_seconds: float | None = 3600.0
    request_timeout_seconds: float = 120.0
    job_timeout_seconds: float | None = None
    quiet: bool = True
    cache_dir: str | None = None
    worker_index: int | None = None
    pool_size: int = 0
    metrics_dir: str | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.request_timeout_seconds <= 0:
            raise ValueError("request_timeout_seconds must be positive")
        if self.cache_dir is not None and not self.cache_dir:
            raise ValueError("cache_dir must be a non-empty path or None")
        if self.pool_size < 0:
            raise ValueError(
                f"pool_size must be >= 0, got {self.pool_size}"
            )
        if self.worker_index is not None and (
            self.worker_index < 0
            or (self.pool_size and self.worker_index >= self.pool_size)
        ):
            raise ValueError(
                f"worker_index {self.worker_index} out of range for "
                f"pool_size {self.pool_size}"
            )


def _error_payload(
    error_type: str, message: str, **extra: Any
) -> dict[str, Any]:
    payload = {"type": error_type, "message": message}
    payload.update(extra)
    return payload


def _side_to_wire(side: Any) -> dict[str, Any]:
    """One ingested side's provenance for the ``/introspect`` response."""
    semantics = side.recovery.semantics
    return {
        "schema": semantics.schema.name,
        "tables": len(semantics.schema),
        "recovered": len(semantics.tables_with_semantics()),
        "coverage": round(side.recovery.coverage(), 4),
        "introspection": [
            d.to_wire() for d in side.introspection.diagnostics
        ],
    }


def _verify_result(result: Any, ingested: Any) -> dict[str, Any]:
    """Check a finished job's mappings against the sampled instances.

    The job payload is the wire document (possibly replayed from the
    result cache), so candidates are reconstructed from their serialized
    form rather than assuming an in-memory ``DiscoveryResult`` exists.
    """
    from repro.mappings.serialize import candidate_from_dict
    from repro.mappings.verify import verify_mappings

    candidates = [
        candidate_from_dict(entry)
        for entry in result["mapping"]["candidates"]
    ]
    tgds = [
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(candidates, start=1)
    ]
    verification = verify_mappings(
        tgds, ingested.source_instance, ingested.target_instance
    )
    return {
        "ok": verification.ok,
        "satisfied": list(verification.satisfied),
        "violations": [str(v) for v in verification.violated],
        "sampled_rows": {
            "source": ingested.source_instance.size(),
            "target": ingested.target_instance.size(),
        },
    }


def _versioned(payload: dict[str, Any]) -> dict[str, Any]:
    """Stamp one response envelope with the wire-format version."""
    payload.setdefault("version", WIRE_VERSION)
    return payload


def _versioned_handler(fn):
    """Decorator versioning a ``(status, payload)`` handler's envelope."""

    @functools.wraps(fn)
    def wrapper(*args: Any, **kwargs: Any) -> tuple[int, dict[str, Any]]:
        status, payload = fn(*args, **kwargs)
        return status, _versioned(payload)

    return wrapper


class MappingService:
    """Transport-independent request handling and shared state."""

    #: Sentinel distinguishing "never touched persistence" from
    #: "previous configured dir was None".
    _UNSET = object()

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.metrics = ServiceMetrics()
        store = None
        self._previous_cache_dir: Any = self._UNSET
        if config.cache_dir is not None:
            # Configure process-wide so every discovery run in this
            # process (jobs, batch re-runs) hits the same disk tier;
            # remember the previous setting for close() — tests spin up
            # many services in one process.
            self._previous_cache_dir = persist.configured_dir()
            persist.configure(config.cache_dir)
            store = persist.store_for(config.cache_dir)
        self.cache = ResultCache(
            max_entries=config.cache_entries,
            ttl_seconds=config.cache_ttl_seconds,
            store=store,
        )
        policy = None
        if config.job_timeout_seconds is not None:
            policy = BatchPolicy(
                timeout_seconds=config.job_timeout_seconds
            )
        self.jobs = JobQueue(
            workers=config.workers,
            capacity=config.queue_capacity,
            cache=self.cache,
            metrics=self.metrics,
            policy=policy,
        )
        self.started_at = time.monotonic()

    # ------------------------------------------------------------------
    # POST /discover
    # ------------------------------------------------------------------
    @_versioned_handler
    def handle_discover(self, payload: Any) -> tuple[int, dict[str, Any]]:
        try:
            scenario, options = discover_request_from_wire(payload)
        except WireFormatError as error:
            return 400, {
                "status": "bad-request",
                "error": _error_payload("WireFormatError", str(error)),
            }
        report = validate_scenario(scenario)
        if report.errors:
            self.metrics.inc("validation_failures_total")
            return 400, {
                "status": "invalid",
                "scenario_id": scenario.scenario_id,
                "error": _error_payload(
                    "ValidationError",
                    f"{len(report.errors)} validation error(s); "
                    f"see diagnostics",
                    diagnostics=diagnostics_to_wire(report),
                ),
            }
        try:
            job, from_cache = self.jobs.submit(
                scenario, use_cache=options.use_cache
            )
        except QueueFullError as error:
            return 429, {
                "status": "rejected",
                "scenario_id": scenario.scenario_id,
                "error": _error_payload("QueueFullError", str(error)),
            }
        if options.mode == "async":
            # A coalesced submit returns the *first* submitter's Job, so
            # echo the caller's own scenario_id over the job's — clients
            # correlate by the id they supplied.
            return 202, {
                "status": "accepted",
                **job.to_wire(),
                "scenario_id": scenario.scenario_id,
            }
        timeout = (
            options.timeout_seconds
            if options.timeout_seconds is not None
            else self.config.request_timeout_seconds
        )
        if not job.wait(timeout):
            return 202, {
                "status": "pending",
                "detail": (
                    f"job not finished after {timeout}s; poll "
                    f"GET /jobs/{job.job_id}"
                ),
                **job.to_wire(),
            }
        if job.state == "error":
            return 500, {
                "status": "error",
                "job_id": job.job_id,
                "scenario_id": job.scenario_id,
                "error": job.error,
            }
        return 200, {
            "status": "ok",
            "job_id": job.job_id,
            "scenario_id": scenario.scenario_id,
            "cached": from_cache,
            "result": job.result,
        }

    # ------------------------------------------------------------------
    # POST /introspect
    # ------------------------------------------------------------------
    @_versioned_handler
    def handle_introspect(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """Ingest two SQL dumps end to end: introspect → recover →
        correspond → validate → discover, in one call.

        The databases arrive as SQL text — requests naming filesystem
        paths never get past the wire layer (400). With the default
        ``sqlite`` backend the text is executed into in-memory
        connections under an ``ATTACH``-denying authorizer; with
        ``pgdump`` it is *parsed*, never executed; ``auto`` sniffs each
        dump's dialect. Discovery itself goes through the same job
        queue and result cache as ``POST /discover``, so an ingested
        scenario whose content fingerprint matches a previous run is
        served warm.
        """
        from repro.exceptions import IngestError
        from repro.ingest import ingest_pair

        try:
            request = introspect_request_from_wire(payload)
        except WireFormatError as error:
            return 400, {
                "status": "bad-request",
                "error": _error_payload("WireFormatError", str(error)),
            }
        try:
            ingested = ingest_pair(
                request.source_sql,
                request.target_sql,
                request.source_model,
                request.target_model,
                scenario_id=request.scenario_id,
                correspondences=request.correspondences,
                threshold=request.threshold,
                options=request.options.discovery,
                sample_rows=request.sample_rows,
                strict=request.strict,
                backend=request.backend,
            )
        except IngestError as error:
            self.metrics.inc("ingest_failures_total")
            return 400, {
                "status": "bad-request",
                "error": _error_payload("IngestError", str(error)),
            }
        report = ingested.validation()
        report.extend(validate_scenario(ingested.scenario))
        ingest_summary = {
            "source": _side_to_wire(ingested.source),
            "target": _side_to_wire(ingested.target),
            "correspondences": [
                f"{c.source} <-> {c.target}"
                for c in ingested.correspondences
            ],
            "suggestions": [str(s) for s in ingested.suggestions],
            "diagnostics": diagnostics_to_wire(report),
        }
        if report.errors:
            self.metrics.inc("validation_failures_total")
            return 400, {
                "status": "invalid",
                "scenario_id": request.scenario_id,
                "ingest": ingest_summary,
                "error": _error_payload(
                    "ValidationError",
                    f"{len(report.errors)} error(s) ingesting the pair; "
                    f"see ingest.diagnostics",
                ),
            }
        try:
            job, from_cache = self.jobs.submit(
                ingested.scenario, use_cache=request.options.use_cache
            )
        except QueueFullError as error:
            return 429, {
                "status": "rejected",
                "scenario_id": request.scenario_id,
                "error": _error_payload("QueueFullError", str(error)),
            }
        if request.options.mode == "async":
            return 202, {
                "status": "accepted",
                **job.to_wire(),
                "scenario_id": request.scenario_id,
                "ingest": ingest_summary,
            }
        timeout = (
            request.options.timeout_seconds
            if request.options.timeout_seconds is not None
            else self.config.request_timeout_seconds
        )
        if not job.wait(timeout):
            return 202, {
                "status": "pending",
                "detail": (
                    f"job not finished after {timeout}s; poll "
                    f"GET /jobs/{job.job_id}"
                ),
                **job.to_wire(),
                "ingest": ingest_summary,
            }
        if job.state == "error":
            return 500, {
                "status": "error",
                "job_id": job.job_id,
                "scenario_id": job.scenario_id,
                "ingest": ingest_summary,
                "error": job.error,
            }
        response = {
            "status": "ok",
            "job_id": job.job_id,
            "scenario_id": request.scenario_id,
            "cached": from_cache,
            "ingest": ingest_summary,
            "result": job.result,
        }
        if request.verify:
            response["verification"] = _verify_result(
                job.result, ingested
            )
        return 200, response

    # ------------------------------------------------------------------
    # POST /compose
    # ------------------------------------------------------------------
    @_versioned_handler
    def handle_compose(self, payload: Any) -> tuple[int, dict[str, Any]]:
        """Compose two shipped mapping sets; pure algebra, no queueing."""
        from repro.mappings.algebra import compose, invert
        from repro.mappings.serialize import mapping_set_to_dict

        try:
            request = compose_request_from_wire(payload)
        except WireFormatError as error:
            return 400, {
                "status": "bad-request",
                "error": _error_payload("WireFormatError", str(error)),
            }
        composed = compose(
            request.first,
            request.second,
            max_solutions_per_candidate=(
                request.max_solutions_per_candidate
            ),
            prune=request.prune,
        )
        self.metrics.inc("compositions_total")
        response: dict[str, Any] = {
            "status": "ok",
            "mapping": mapping_set_to_dict(composed),
            "composed": len(composed),
            "inputs": {
                "first": len(request.first),
                "second": len(request.second),
            },
        }
        if request.invert:
            inversion = invert(composed)
            response["inversion"] = {
                "exact": inversion.exact,
                "mapping": mapping_set_to_dict(inversion.mappings),
                "reports": [
                    {
                        "invertible": report.inverse is not None,
                        "exact": report.exact,
                        "lost_source_variables": list(
                            report.lost_source_variables
                        ),
                        "null_joined_variables": list(
                            report.null_joined_variables
                        ),
                        "reason": report.reason,
                    }
                    for report in inversion.reports
                ],
            }
        return 200, response

    # ------------------------------------------------------------------
    # POST /validate
    # ------------------------------------------------------------------
    @_versioned_handler
    def handle_validate(self, payload: Any) -> tuple[int, dict[str, Any]]:
        try:
            if not isinstance(payload, dict) or "scenario" not in payload:
                raise WireFormatError(
                    "request body needs a 'scenario' object"
                )
            scenario = scenario_from_wire(payload["scenario"])
        except WireFormatError as error:
            return 400, {
                "status": "bad-request",
                "error": _error_payload("WireFormatError", str(error)),
            }
        report = validate_scenario(scenario)
        return 200, {
            "status": "ok" if report.ok else "invalid",
            "ok": report.ok,
            "scenario_id": scenario.scenario_id,
            "diagnostics": diagnostics_to_wire(report),
        }

    # ------------------------------------------------------------------
    # GET /jobs/<id>, /health, /metrics
    # ------------------------------------------------------------------
    @_versioned_handler
    def handle_job(self, job_id: str) -> tuple[int, dict[str, Any]]:
        job = self.jobs.job(job_id)
        if job is None:
            return 404, {
                "status": "not-found",
                "error": _error_payload(
                    "UnknownJob", f"no job {job_id!r} (it may have aged out)"
                ),
            }
        return 200, job.to_wire()

    @_versioned_handler
    def health(self) -> tuple[int, dict[str, Any]]:
        return 200, {
            "status": "ok",
            "workers": self.config.workers,
            "queue_depth": self.jobs.depth(),
            "queue_capacity": self.config.queue_capacity,
            "jobs": self.jobs.state_counts(),
            "cache": self.cache.stats(),
            "uptime_seconds": round(
                time.monotonic() - self.started_at, 3
            ),
        }

    def metrics_text(self) -> str:
        gauges: dict[str, int | float] = {
            "repro_service_queue_depth": self.jobs.depth(),
            "repro_service_queue_capacity": self.config.queue_capacity,
            "repro_service_workers": self.config.workers,
            "repro_service_uptime_seconds": round(
                time.monotonic() - self.started_at, 3
            ),
        }
        for name, value in self.cache.stats().items():
            gauges[f"repro_service_result_cache_{name}"] = value
        gauges.update(
            perf_gauges(
                perf_counters.global_counters().snapshot().items()
            )
        )
        text = self.metrics.render(gauges)
        if (
            self.config.worker_index is not None
            and self.config.metrics_dir is not None
        ):
            text = self._pool_metrics(text)
        return text

    def _pool_metrics(self, own_text: str) -> str:
        """Aggregate this worker's metrics with its pool siblings'.

        Every series gets a ``worker`` label; the fresh labeled snapshot
        is published for siblings, then their last-published snapshots
        are appended, plus a ``pool_worker_up`` gauge per slot. A scrape
        of *any* worker therefore sees the whole pool — siblings at
        their last snapshot, this worker live.
        """
        from repro.service import pool

        index = self.config.worker_index
        assert index is not None and self.config.metrics_dir is not None
        labeled = service_metrics.label_series(own_text, worker=str(index))
        service_metrics.write_snapshot_file(
            pool.snapshot_path(self.config.metrics_dir, index), labeled
        )
        lines = [labeled.rstrip("\n")]
        size = self.config.pool_size or (index + 1)
        for sibling in range(size):
            up = 1 if sibling == index else 0
            if sibling != index:
                series = service_metrics.read_snapshot_series(
                    pool.snapshot_path(self.config.metrics_dir, sibling)
                )
                if series:
                    up = 1
                    lines.extend(series)
            lines.append(
                f'repro_service_pool_worker_up{{worker="{sibling}"}} {up}'
            )
        lines.append(f"repro_service_pool_size {size}")
        return "\n".join(lines) + "\n"

    def close(self) -> None:
        self.jobs.stop()
        if self._previous_cache_dir is not self._UNSET:
            persist.configure(self._previous_cache_dir)
            self._previous_cache_dir = self._UNSET


class _Handler(BaseHTTPRequestHandler):
    """Routes HTTP requests to the attached :class:`MappingService`."""

    server_version = "repro-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> MappingService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:
        if not self.service.config.quiet:
            super().log_message(format, *args)

    # -- routing ---------------------------------------------------------
    def do_GET(self) -> None:
        # Metrics are recorded *before* the response goes out: a client
        # that reads its response and immediately polls /metrics must
        # see its own request counted.
        started = time.perf_counter()
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        text: str | None = None
        payload: dict[str, Any] = {}
        if path == "/health":
            endpoint = "health"
        elif path == "/metrics":
            endpoint = "metrics"
        elif path.startswith("/jobs/"):
            endpoint = "jobs"
        else:
            endpoint = "unknown"
        try:
            if endpoint == "health":
                status, payload = self.service.health()
            elif endpoint == "metrics":
                status, text = 200, self.service.metrics_text()
            elif endpoint == "jobs":
                status, payload = self.service.handle_job(
                    path[len("/jobs/"):]
                )
            else:
                status, payload = 404, {
                    "status": "not-found",
                    "error": _error_payload(
                        "UnknownEndpoint", f"no endpoint {path!r}"
                    ),
                }
        except ReproError as error:
            status, payload = 400, {
                "status": "bad-request",
                "error": _error_payload(type(error).__name__, str(error)),
            }
        except Exception as error:  # never kill the handler thread
            status, payload = 500, {
                "status": "error",
                "error": _error_payload(type(error).__name__, str(error)),
            }
        self._record(endpoint, status, started)
        if text is not None:
            self._send_text(status, text)
        else:
            self._send_json(status, payload)

    def do_POST(self) -> None:
        started = time.perf_counter()
        path = self.path.split("?", 1)[0].rstrip("/")
        routes = {
            "/discover": ("discover", self.service.handle_discover),
            "/introspect": ("introspect", self.service.handle_introspect),
            "/compose": ("compose", self.service.handle_compose),
            "/validate": ("validate", self.service.handle_validate),
        }
        if path not in routes:
            self._record("unknown", 404, started)
            self._send_json(
                404,
                {
                    "status": "not-found",
                    "error": _error_payload(
                        "UnknownEndpoint", f"no endpoint {path!r}"
                    ),
                },
            )
            return
        endpoint, handler = routes[path]
        try:
            payload = self._read_json()
        except WireFormatError as error:
            status, body = 400, {
                "status": "bad-request",
                "error": _error_payload("WireFormatError", str(error)),
            }
        else:
            try:
                status, body = handler(payload)
            except ReproError as error:
                status, body = 400, {
                    "status": "bad-request",
                    "error": _error_payload(
                        type(error).__name__, str(error)
                    ),
                }
            except Exception as error:  # never kill the handler thread
                status, body = 500, {
                    "status": "error",
                    "error": _error_payload(
                        type(error).__name__, str(error)
                    ),
                }
        headers = {"Retry-After": "1"} if status == 429 else None
        self._record(endpoint, status, started)
        self._send_json(status, body, headers)

    # -- plumbing --------------------------------------------------------
    def _read_json(self) -> Any:
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            raise WireFormatError("bad Content-Length header") from None
        if length < 0:
            # rfile.read(-1) on a keep-alive connection would block until
            # the client hangs up, pinning this handler thread.
            raise WireFormatError("negative Content-Length header")
        if length > MAX_BODY_BYTES:
            raise WireFormatError(
                f"request body exceeds {MAX_BODY_BYTES} bytes"
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw or b"{}")
        except json.JSONDecodeError as error:
            raise WireFormatError(
                f"request body is not valid JSON: {error}"
            ) from None

    def _send_json(
        self,
        status: int,
        payload: Any,
        headers: dict[str, str] | None = None,
    ) -> None:
        if isinstance(payload, dict):
            payload = _versioned(payload)
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode("utf-8")
        self.send_response(status)
        self.send_header(
            "Content-Type", "text/plain; version=0.0.4; charset=utf-8"
        )
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _record(self, endpoint: str, status: int, started: float) -> None:
        self.service.metrics.inc(
            "requests_total", endpoint=endpoint, status=str(status)
        )
        self.service.metrics.observe(
            endpoint, time.perf_counter() - started
        )


class _HTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    # The stock listen backlog of 5 drops (or resets) connections under
    # a burst of a few dozen concurrent clients — the exact traffic this
    # server exists to absorb. Handler threads are cheap; let the kernel
    # queue the burst instead. Sized for the 1000-client load harness
    # (the kernel clamps to net.core.somaxconn).
    request_queue_size = 1024


class ReproServer:
    """A running service: HTTP listener + worker pool, ready to stop."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.service = MappingService(self.config)
        self._httpd = _HTTPServer(
            (self.config.host, self.config.port), _Handler
        )
        self._httpd.service = self.service  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the kernel's pick)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "ReproServer":
        """Serve in a background thread; returns self for chaining."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service-listener",
            daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread until interrupted (CLI mode)."""
        try:
            self._httpd.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            self.shutdown()

    def shutdown(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None
        self.service.close()

    def __enter__(self) -> "ReproServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()
