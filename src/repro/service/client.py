"""A thin stdlib (urllib) client for the mapping-discovery service.

Used by the test suite, the CI smoke job, and the
``benchmarks/benchmark_service.py`` load generator — and small enough
to crib for real callers. Non-2xx responses raise
:class:`~repro.exceptions.ServiceCallError` carrying the HTTP status
and the decoded error payload, so callers can branch on backpressure
(429) versus invalid input (400) without parsing messages.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Mapping

from repro.exceptions import ServiceCallError
from repro.service.metrics import parse_exposition


class ServiceClient:
    """Calls one running service at ``base_url``."""

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Raw transport
    # ------------------------------------------------------------------
    def request(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
    ) -> tuple[int, Any]:
        """One HTTP exchange; returns ``(status, decoded body)``.

        Does not raise on HTTP error statuses — the convenience methods
        layer that on — but does raise :class:`ServiceCallError` when
        the server is unreachable.
        """
        url = f"{self.base_url}{path}"
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return response.status, self._decode(response)
        except urllib.error.HTTPError as error:
            return error.code, self._decode(error)
        except urllib.error.URLError as error:
            raise ServiceCallError(
                f"service at {self.base_url} unreachable: {error.reason}"
            ) from error

    @staticmethod
    def _decode(response: Any) -> Any:
        body = response.read()
        content_type = response.headers.get("Content-Type", "")
        if "json" in content_type:
            return json.loads(body or b"null")
        return body.decode("utf-8")

    def _checked(
        self,
        method: str,
        path: str,
        payload: Mapping[str, Any] | None = None,
        accept: tuple[int, ...] = (200,),
    ) -> Any:
        status, body = self.request(method, path, payload)
        if status not in accept:
            message = (
                body.get("error", {}).get("message", "")
                if isinstance(body, dict)
                else str(body)
            )
            raise ServiceCallError(
                f"{method} {path} -> HTTP {status}: {message}",
                status=status,
                payload=body,
            )
        return body

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def discover(
        self,
        scenario: Mapping[str, Any],
        mode: str = "sync",
        use_cache: bool = True,
        timeout_seconds: float | None = None,
    ) -> dict[str, Any]:
        """``POST /discover``; accepts 200 (done) and 202 (async/pending)."""
        payload: dict[str, Any] = {
            "scenario": dict(scenario),
            "mode": mode,
            "use_cache": use_cache,
        }
        if timeout_seconds is not None:
            payload["timeout_seconds"] = timeout_seconds
        return self._checked(
            "POST", "/discover", payload, accept=(200, 202)
        )

    def introspect(
        self,
        source_sql: str,
        target_sql: str,
        cm: str | Mapping[str, Any],
        scenario_id: str | None = None,
        correspondences: list[str] | None = None,
        threshold: float | None = None,
        sample_rows: int | None = None,
        verify: bool = False,
        mode: str = "sync",
        use_cache: bool = True,
        **extra: Any,
    ) -> dict[str, Any]:
        """``POST /introspect``: SQL dumps + CM in, mappings out.

        ``cm`` is a registered dataset name or an inline model document
        — the server refuses filesystem paths, so callers with database
        *files* must dump them to SQL first (``sqlite3 db .dump``).
        """
        payload: dict[str, Any] = {
            "source_db": {"sql": source_sql},
            "target_db": {"sql": target_sql},
            "cm": cm if isinstance(cm, str) else dict(cm),
            "mode": mode,
            "use_cache": use_cache,
            **extra,
        }
        if scenario_id is not None:
            payload["id"] = scenario_id
        if correspondences is not None:
            payload["correspondences"] = list(correspondences)
        if threshold is not None:
            payload["threshold"] = threshold
        if sample_rows is not None:
            payload["sample_rows"] = sample_rows
        if verify:
            payload["verify"] = True
        return self._checked(
            "POST", "/introspect", payload, accept=(200, 202)
        )

    def validate(self, scenario: Mapping[str, Any]) -> dict[str, Any]:
        """``POST /validate``; 200 whether the scenario is clean or not."""
        return self._checked("POST", "/validate", {"scenario": dict(scenario)})

    def job(self, job_id: str) -> dict[str, Any]:
        return self._checked("GET", f"/jobs/{job_id}")

    def wait_for_job(
        self,
        job_id: str,
        timeout: float = 60.0,
        poll_seconds: float = 0.05,
    ) -> dict[str, Any]:
        """Poll ``GET /jobs/<id>`` until the job leaves queued/running."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id)
            if payload["state"] in ("done", "error"):
                return payload
            if time.monotonic() >= deadline:
                raise ServiceCallError(
                    f"job {job_id} still {payload['state']!r} after "
                    f"{timeout}s",
                    status=0,
                    payload=payload,
                )
            time.sleep(poll_seconds)

    def health(self) -> dict[str, Any]:
        return self._checked("GET", "/health")

    def metrics_text(self) -> str:
        return self._checked("GET", "/metrics")

    def metrics_values(self) -> dict[str, float]:
        """The metrics document parsed into ``{series: value}``."""
        return parse_exposition(self.metrics_text())
