"""Service instrumentation: request/cache/job counters and latency quantiles.

A :class:`ServiceMetrics` instance is the single metrics sink of one
server process. It layers on :mod:`repro.perf`: the service counts
*requests* (how often, how fast, served from where), while the perf
layer keeps counting *algorithmic* events (Dijkstra sweeps, cache memo
traffic) in its process-lifetime root frame — ``render`` exposes both in
one Prometheus-style text document for ``GET /metrics``.

Counter vocabulary (all exported with the ``repro_service_`` prefix):

``requests_total{endpoint,status}``
    every HTTP request, by endpoint and response status;
``request_seconds{endpoint,quantile}`` / ``_count`` / ``_sum``
    handler latency, with p50/p95 from a bounded reservoir;
``cache_hits_total`` / ``cache_misses_total``
    discovery requests served without / with recomputation — a "hit"
    includes coalescing onto an in-flight identical job
    (``cache_coalesced_total`` counts that subset);
``discovery_invocations_total``
    jobs that actually ran the discovery pipeline;
``jobs_completed_total`` / ``jobs_failed_total`` / ``jobs_rejected_total``
    job outcomes, with rejections being 429 backpressure;
``validation_failures_total``
    requests refused with 400 before burning a worker slot;
``phase_seconds{phase,quantile}`` / ``_count`` / ``_sum``
    per-pipeline-phase discovery latency, fed from each completed job's
    ``time_<phase>_s`` stats by the job queue — phase names are the
    staged engine's ``STAGE_NAMES`` (lift, target_csgs, source_search,
    pair_filter, translate, rank) plus ``discover`` (and ``clio`` for
    baseline-engine runs);
``stage_cache_hits_total{stage}`` / ``stage_cache_misses_total{stage}``
    the staged engine's artifact-cache traffic by stage name, fed from
    each completed job's ``stage_cache_hit_<stage>`` /
    ``stage_cache_miss_<stage>`` stats (see
    :func:`repro.service.jobs.observe_run_stats`).

The algorithmic counters ride along under ``repro_perf_`` — including
the distance-oracle vocabulary (``oracle_sweeps``,
``astar_expansions``, ``bound_prunes``, ``lossy_prefix_skips``,
``required_subtree_prunes``, ``subtree_cache_*``; see
:mod:`repro.perf.counters`) — so a scrape sees search-guidance
effectiveness next to request health.
"""

from __future__ import annotations

import os
import tempfile
import threading
from collections import Counter, deque
from typing import Iterable, Mapping

#: Quantiles exported per endpoint.
QUANTILES = (0.5, 0.95)

#: Metric-name prefixes in the exposition document.
PREFIX = "repro_service_"
PERF_PREFIX = "repro_perf_"

_LabelKey = tuple[tuple[str, str], ...]


def _labels_key(labels: Mapping[str, str]) -> _LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _render_labels(labels: _LabelKey) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in labels)
    return "{" + inner + "}"


def _sanitize(name: str) -> str:
    return "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in name)


class ServiceMetrics:
    """Thread-safe counters plus per-endpoint latency reservoirs."""

    def __init__(self, latency_window: int = 2048) -> None:
        if latency_window < 1:
            raise ValueError(
                f"latency_window must be >= 1, got {latency_window}"
            )
        self._lock = threading.Lock()
        self._counters: Counter[tuple[str, _LabelKey]] = Counter()
        self._latency_window = latency_window
        self._samples: dict[str, deque[float]] = {}
        self._latency_count: Counter[str] = Counter()
        self._latency_sum: Counter[str] = Counter()
        self._phase_samples: dict[str, deque[float]] = {}
        self._phase_count: Counter[str] = Counter()
        self._phase_sum: Counter[str] = Counter()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1, **labels: str) -> None:
        """Increment counter ``name`` (label values coerced to strings)."""
        with self._lock:
            self._counters[(name, _labels_key(labels))] += amount

    def observe(self, endpoint: str, seconds: float) -> None:
        """Record one request latency for ``endpoint``."""
        with self._lock:
            reservoir = self._samples.get(endpoint)
            if reservoir is None:
                reservoir = deque(maxlen=self._latency_window)
                self._samples[endpoint] = reservoir
            reservoir.append(seconds)
            self._latency_count[endpoint] += 1
            self._latency_sum[endpoint] += seconds

    def observe_phase(self, phase: str, seconds: float) -> None:
        """Record one discovery-pipeline phase wall time."""
        with self._lock:
            reservoir = self._phase_samples.get(phase)
            if reservoir is None:
                reservoir = deque(maxlen=self._latency_window)
                self._phase_samples[phase] = reservoir
            reservoir.append(seconds)
            self._phase_count[phase] += 1
            self._phase_sum[phase] += seconds

    # ------------------------------------------------------------------
    # Reading (tests and the bench harness)
    # ------------------------------------------------------------------
    def value(self, name: str, **labels: str) -> int:
        """One labelled counter's value (0 when never incremented)."""
        with self._lock:
            return self._counters[(name, _labels_key(labels))]

    def total(self, name: str) -> int:
        """Sum of ``name`` across all label combinations."""
        with self._lock:
            return sum(
                value
                for (counter, _), value in self._counters.items()
                if counter == name
            )

    def quantile(self, endpoint: str, q: float) -> float | None:
        """The ``q``-quantile of recent latencies, or ``None`` if unseen."""
        with self._lock:
            reservoir = self._samples.get(endpoint)
            if not reservoir:
                return None
            ordered = sorted(reservoir)
            index = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[index]

    def phase_quantile(self, phase: str, q: float) -> float | None:
        """The ``q``-quantile of recent phase times, or ``None`` if unseen."""
        with self._lock:
            reservoir = self._phase_samples.get(phase)
            if not reservoir:
                return None
            ordered = sorted(reservoir)
            index = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[index]

    def phase_names(self) -> tuple[str, ...]:
        """Phases observed so far, sorted."""
        with self._lock:
            return tuple(sorted(self._phase_count))

    def snapshot(self) -> dict[str, int | float]:
        """A flat dict of every counter (labels folded into the name)."""
        with self._lock:
            data: dict[str, int | float] = {}
            for (name, labels), value in sorted(self._counters.items()):
                data[f"{name}{_render_labels(labels)}"] = value
            for endpoint in sorted(self._latency_count):
                data[f"request_seconds_count{{endpoint={endpoint}}}"] = (
                    self._latency_count[endpoint]
                )
            for phase in sorted(self._phase_count):
                data[f"phase_seconds_count{{phase={phase}}}"] = (
                    self._phase_count[phase]
                )
        return data

    # ------------------------------------------------------------------
    # Prometheus exposition
    # ------------------------------------------------------------------
    def render(
        self, gauges: Mapping[str, int | float] | None = None
    ) -> str:
        """The full ``GET /metrics`` document.

        ``gauges`` carries caller-supplied point-in-time values (queue
        depth, cache size, perf-layer counters); names are emitted as
        given, so callers choose the prefix.
        """
        lines: list[str] = []
        with self._lock:
            by_name: dict[str, list[tuple[_LabelKey, int]]] = {}
            for (name, labels), value in sorted(self._counters.items()):
                by_name.setdefault(name, []).append((labels, value))
            for name, rows in by_name.items():
                full = PREFIX + _sanitize(name)
                lines.append(f"# TYPE {full} counter")
                for labels, value in rows:
                    lines.append(f"{full}{_render_labels(labels)} {value}")
            if self._latency_count:
                full = PREFIX + "request_seconds"
                lines.append(f"# TYPE {full} summary")
                for endpoint in sorted(self._latency_count):
                    reservoir = sorted(self._samples.get(endpoint, ()))
                    for q in QUANTILES:
                        if reservoir:
                            index = min(
                                len(reservoir) - 1, int(q * len(reservoir))
                            )
                            lines.append(
                                f'{full}{{endpoint="{endpoint}",'
                                f'quantile="{q}"}} '
                                f"{reservoir[index]:.6f}"
                            )
                    lines.append(
                        f'{full}_count{{endpoint="{endpoint}"}} '
                        f"{self._latency_count[endpoint]}"
                    )
                    lines.append(
                        f'{full}_sum{{endpoint="{endpoint}"}} '
                        f"{self._latency_sum[endpoint]:.6f}"
                    )
            if self._phase_count:
                full = PREFIX + "phase_seconds"
                lines.append(f"# TYPE {full} summary")
                for phase in sorted(self._phase_count):
                    reservoir = sorted(self._phase_samples.get(phase, ()))
                    for q in QUANTILES:
                        if reservoir:
                            index = min(
                                len(reservoir) - 1, int(q * len(reservoir))
                            )
                            lines.append(
                                f'{full}{{phase="{phase}",'
                                f'quantile="{q}"}} '
                                f"{reservoir[index]:.6f}"
                            )
                    lines.append(
                        f'{full}_count{{phase="{phase}"}} '
                        f"{self._phase_count[phase]}"
                    )
                    lines.append(
                        f'{full}_sum{{phase="{phase}"}} '
                        f"{self._phase_sum[phase]:.6f}"
                    )
        for name, value in sorted((gauges or {}).items()):
            full = _sanitize(name)
            lines.append(f"# TYPE {full} gauge")
            if isinstance(value, float):
                lines.append(f"{full} {value:.6f}")
            else:
                lines.append(f"{full} {value}")
        return "\n".join(lines) + "\n"


def label_series(text: str, **labels: str) -> str:
    """Inject ``labels`` into every series line of an exposition document.

    Pre-fork workers use this to stamp their whole ``/metrics`` output
    with ``worker="N"`` before aggregation — series from different
    workers must stay distinguishable (summing two workers'
    ``requests_total`` into one unlabeled series would double-count on
    the scraping side's own aggregation).
    """
    if not labels:
        return text
    suffix = ",".join(
        f'{name}="{value}"' for name, value in sorted(labels.items())
    )
    out: list[str] = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            out.append(line)
            continue
        series, space, value = stripped.rpartition(" ")
        if not space:
            out.append(line)
            continue
        if series.endswith("}"):
            series = series[:-1] + "," + suffix + "}"
        else:
            series = series + "{" + suffix + "}"
        out.append(f"{series} {value}")
    return "\n".join(out) + ("\n" if text.endswith("\n") else "")


def write_snapshot_file(path: str, text: str) -> bool:
    """Atomically publish one worker's exposition text at ``path``.

    Same tempfile-then-``os.replace`` discipline as the persistent
    store: a sibling reading the file mid-write sees the previous
    complete snapshot, never a truncated one. Returns ``False`` (never
    raises) when the write fails — metrics are best-effort.
    """
    try:
        parent = os.path.dirname(path) or "."
        os.makedirs(parent, exist_ok=True)
        fd, tmp = tempfile.mkstemp(prefix=".tmp-", dir=parent)
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return True
    except OSError:
        return False


def read_snapshot_series(path: str) -> list[str]:
    """The raw series lines of a snapshot file (comments dropped).

    Missing or unreadable files yield ``[]`` — an aggregating worker
    must keep serving its own metrics when a sibling's snapshot is
    absent (the sibling may simply not have written one yet).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            text = handle.read()
    except OSError:
        return []
    return [
        line.strip()
        for line in text.splitlines()
        if line.strip() and not line.strip().startswith("#")
    ]


def parse_exposition(text: str) -> dict[str, float]:
    """Parse a Prometheus-style document back into ``{series: value}``.

    Series names keep their label block verbatim
    (``repro_service_requests_total{endpoint="discover",status="200"}``).
    Used by the client's ``metrics_values`` and the load generator.
    """
    values: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        series, _, value = line.rpartition(" ")
        try:
            values[series] = float(value)
        except ValueError:
            continue
    return values


def perf_gauges(counters: Iterable[tuple[str, int | float]]) -> dict[str, int | float]:
    """Perf-layer counter snapshot entries as ``repro_perf_*`` gauges."""
    return {
        PERF_PREFIX + _sanitize(name): value for name, value in counters
    }
