"""The one options object every discovery entry point accepts.

Before this module existed, four entry points each re-plumbed the same
tuning knobs: ``SemanticMapper(**kwargs)``, ``batch.Scenario``'s
``mapper_options`` pairs, the service's hand-rolled ``_mapper_options``
dict, and CLI flags. :class:`DiscoveryOptions` is now the single source
of truth; the old keyword spellings keep working everywhere through
:func:`merge_legacy_kwargs`, which emits a :class:`DeprecationWarning`
(see ``docs/api.md`` for the deprecation policy).

The frozen dataclass is hashable and picklable, so it travels inside
batch :class:`~repro.discovery.batch.Scenario` specs across process
pools unchanged. :meth:`DiscoveryOptions.to_pairs` serialises only the
fields that differ from the defaults — a scenario built with default
options therefore fingerprints identically to one built before this
class existed, keeping the service's content-addressed result cache
warm across the API change.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Legacy ``SemanticMapper`` keyword names, all absorbed by
#: :class:`DiscoveryOptions` (new code passes ``options=`` instead).
LEGACY_OPTION_NAMES = (
    "max_path_edges",
    "use_partof_filter",
    "use_disjointness_filter",
    "use_cardinality_filter",
)

#: The engines :class:`DiscoveryOptions.engine` may select.
ENGINE_NAMES = ("semantic", "clio")


@dataclass(frozen=True)
class DiscoveryOptions:
    """Every tuning knob of one discovery run.

    Parameters
    ----------
    max_path_edges:
        Length cap for the Section 3.3 lossy-path search.
    use_partof_filter / use_disjointness_filter / use_cardinality_filter:
        Ablation switches for the semantic-compatibility checks of
        Sections 3.2–3.3 (see ``benchmarks/benchmark_ablation.py``).
    explain:
        Record structured prune events and per-candidate rank provenance
        on the result (implies ``trace``); see ``repro.trace``.
    trace:
        Record a span tree of per-phase wall times on the result without
        the explain provenance.
    engine:
        Which discovery engine runs: ``"semantic"`` (the paper's staged
        pipeline, the default) or ``"clio"`` (the schema-only RIC
        baseline adapted behind the same entry points; see
        ``repro.discovery.engine.clio``).
    profile_cache_size / translation_cache_size / stage_cache_size:
        Per-run overrides for the perf layer's memo-cache entry bounds
        (``None`` keeps the module defaults in
        ``repro.perf.config.DEFAULT_CACHE_SIZES``). ``stage_cache_size=0``
        disables the staged engine's artifact cache for the run. These
        knobs — like ``explain``/``trace`` — never change discovery
        output, so stage fingerprints deliberately exclude them.
    distance_oracle:
        Whether the run uses oracle-guided search (backward distance
        tables, A*-pruned Steiner expansion, lossy lower bounds; see
        ``docs/performance.md``). Both settings produce identical
        output — the oracle only prunes provably fruitless work — so
        this is an equivalence-testing and profiling switch, on by
        default.
    subtree_cache_size:
        Per-run override for the rewrite prefix-state memo bound
        (``None`` keeps the module default; ``0`` disables the memo).
        Output-neutral like the other cache bounds.
    cache_dir:
        Directory of the persistent, cross-process stage-artifact store
        (see :mod:`repro.discovery.engine.persist`). ``None`` (the
        default) keeps whatever the process configured
        (``persist.configure`` / ``REPRO_CACHE_DIR``); a path activates
        the disk tier for this run. Deployment-local and output-neutral:
        it never appears in content fingerprints or :meth:`to_pairs`,
        so the same scenario keys identically with or without it.
    """

    max_path_edges: int = 6
    use_partof_filter: bool = True
    use_disjointness_filter: bool = True
    use_cardinality_filter: bool = True
    explain: bool = False
    trace: bool = False
    engine: str = "semantic"
    profile_cache_size: int | None = None
    translation_cache_size: int | None = None
    stage_cache_size: int | None = None
    distance_oracle: bool = True
    subtree_cache_size: int | None = None
    cache_dir: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_path_edges, int) or isinstance(
            self.max_path_edges, bool
        ):
            raise ValueError(
                f"max_path_edges must be an int, got "
                f"{type(self.max_path_edges).__name__}"
            )
        if self.max_path_edges < 1:
            raise ValueError(
                f"max_path_edges must be >= 1, got {self.max_path_edges}"
            )
        for name in (
            "use_partof_filter",
            "use_disjointness_filter",
            "use_cardinality_filter",
            "explain",
            "trace",
            "distance_oracle",
        ):
            value = getattr(self, name)
            if not isinstance(value, bool):
                raise ValueError(
                    f"{name} must be a bool, got {type(value).__name__}"
                )
        if self.engine not in ENGINE_NAMES:
            raise ValueError(
                f"engine must be one of {sorted(ENGINE_NAMES)}, got "
                f"{self.engine!r}"
            )
        for name, minimum in (
            ("profile_cache_size", 1),
            ("translation_cache_size", 1),
            ("stage_cache_size", 0),
            ("subtree_cache_size", 0),
        ):
            value = getattr(self, name)
            if value is None:
                continue
            if not isinstance(value, int) or isinstance(value, bool):
                raise ValueError(
                    f"{name} must be an int or None, got "
                    f"{type(value).__name__}"
                )
            if value < minimum:
                raise ValueError(
                    f"{name} must be >= {minimum}, got {value}"
                )
        if self.cache_dir is not None and (
            not isinstance(self.cache_dir, str) or not self.cache_dir
        ):
            raise ValueError(
                f"cache_dir must be a non-empty string or None, got "
                f"{self.cache_dir!r}"
            )

    # -- construction ----------------------------------------------------
    def replace(self, **changes: Any) -> "DiscoveryOptions":
        """A copy with ``changes`` applied (validated like ``__init__``)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, Any], where: str = "options"
    ) -> "DiscoveryOptions":
        """Build from a JSON-style dict; unknown keys raise ``ValueError``."""
        if not isinstance(mapping, Mapping):
            raise ValueError(
                f"{where} must be an object, got {type(mapping).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown {where} key(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**dict(mapping))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[str, Any]]
    ) -> "DiscoveryOptions":
        """Rebuild from :meth:`to_pairs` output (or legacy option pairs)."""
        return cls.from_mapping(dict(pairs), where="option pairs")

    # -- serialisation ---------------------------------------------------
    def to_pairs(self) -> tuple[tuple[str, Any], ...]:
        """Non-default fields as sorted pairs (the Scenario storage form).

        Default options serialise to ``()`` — byte-identical to the
        pre-``DiscoveryOptions`` empty ``mapper_options`` tuple, so
        content fingerprints (and the service result cache keyed on
        them) survive the API migration. ``cache_dir`` is always
        omitted: it is a deployment-local, output-neutral knob, and a
        filesystem path must never leak into content fingerprints (two
        hosts caching in different directories still share results).
        """
        defaults = _DEFAULTS
        return tuple(
            sorted(
                (field.name, getattr(self, field.name))
                for field in dataclasses.fields(self)
                if field.name != "cache_dir"
                and getattr(self, field.name)
                != getattr(defaults, field.name)
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """Every field, JSON-friendly (wire and report payloads)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    # -- behaviour queries -----------------------------------------------
    @property
    def wants_trace(self) -> bool:
        """True when this run should record spans (explain implies trace)."""
        return self.trace or self.explain

    def cache_size_overrides(self) -> dict[str, int]:
        """The non-default cache bounds of this run, by perf cache name.

        The keys match :data:`repro.perf.config.DEFAULT_CACHE_SIZES`;
        ``SemanticMapper.discover`` installs them for the run's dynamic
        extent via :func:`repro.perf.config.cache_size_overrides`.
        """
        sizes = {
            "profile": self.profile_cache_size,
            "translation": self.translation_cache_size,
            "stage": self.stage_cache_size,
            "subtree": self.subtree_cache_size,
        }
        return {name: size for name, size in sizes.items() if size is not None}


_DEFAULTS = DiscoveryOptions()

#: The default options singleton (shared; the class is immutable).
DEFAULT_OPTIONS = _DEFAULTS


def merge_legacy_kwargs(
    options: DiscoveryOptions | None,
    kwargs: Mapping[str, Any],
    caller: str,
    stacklevel: int = 3,
) -> DiscoveryOptions:
    """Fold deprecated per-knob keyword arguments into an options object.

    Accepts exactly the :data:`LEGACY_OPTION_NAMES` (plus ``explain`` /
    ``trace`` for forward-compatible keyword use); any use emits a
    :class:`DeprecationWarning` naming the caller and the replacement.
    Passing both ``options`` and a legacy kwarg that it also sets is an
    error — the call would be ambiguous.
    """
    if not kwargs:
        return options if options is not None else DEFAULT_OPTIONS
    known = {field.name for field in dataclasses.fields(DiscoveryOptions)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise TypeError(
            f"{caller} got unexpected keyword argument(s) {unknown}; "
            f"known options: {sorted(known)}"
        )
    warnings.warn(
        f"passing {sorted(kwargs)} to {caller} as keyword arguments is "
        f"deprecated; pass options=DiscoveryOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if options is None:
        return DiscoveryOptions(**dict(kwargs))
    conflicting = sorted(
        name for name in kwargs if kwargs[name] != getattr(options, name)
    )
    if conflicting:
        raise TypeError(
            f"{caller} got both options= and conflicting legacy "
            f"keyword(s) {conflicting}"
        )
    return options
