"""The one options object every discovery entry point accepts.

Before this module existed, four entry points each re-plumbed the same
tuning knobs: ``SemanticMapper(**kwargs)``, ``batch.Scenario``'s
``mapper_options`` pairs, the service's hand-rolled ``_mapper_options``
dict, and CLI flags. :class:`DiscoveryOptions` is now the single source
of truth; the old keyword spellings keep working everywhere through
:func:`merge_legacy_kwargs`, which emits a :class:`DeprecationWarning`
(see ``docs/api.md`` for the deprecation policy).

The frozen dataclass is hashable and picklable, so it travels inside
batch :class:`~repro.discovery.batch.Scenario` specs across process
pools unchanged. :meth:`DiscoveryOptions.to_pairs` serialises only the
fields that differ from the defaults — a scenario built with default
options therefore fingerprints identically to one built before this
class existed, keeping the service's content-addressed result cache
warm across the API change.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Any, Iterable, Mapping

#: Legacy ``SemanticMapper`` keyword names, all absorbed by
#: :class:`DiscoveryOptions` (new code passes ``options=`` instead).
LEGACY_OPTION_NAMES = (
    "max_path_edges",
    "use_partof_filter",
    "use_disjointness_filter",
    "use_cardinality_filter",
)


@dataclass(frozen=True)
class DiscoveryOptions:
    """Every tuning knob of one discovery run.

    Parameters
    ----------
    max_path_edges:
        Length cap for the Section 3.3 lossy-path search.
    use_partof_filter / use_disjointness_filter / use_cardinality_filter:
        Ablation switches for the semantic-compatibility checks of
        Sections 3.2–3.3 (see ``benchmarks/benchmark_ablation.py``).
    explain:
        Record structured prune events and per-candidate rank provenance
        on the result (implies ``trace``); see ``repro.trace``.
    trace:
        Record a span tree of per-phase wall times on the result without
        the explain provenance.
    """

    max_path_edges: int = 6
    use_partof_filter: bool = True
    use_disjointness_filter: bool = True
    use_cardinality_filter: bool = True
    explain: bool = False
    trace: bool = False

    def __post_init__(self) -> None:
        if not isinstance(self.max_path_edges, int) or isinstance(
            self.max_path_edges, bool
        ):
            raise ValueError(
                f"max_path_edges must be an int, got "
                f"{type(self.max_path_edges).__name__}"
            )
        if self.max_path_edges < 1:
            raise ValueError(
                f"max_path_edges must be >= 1, got {self.max_path_edges}"
            )
        for name in (
            "use_partof_filter",
            "use_disjointness_filter",
            "use_cardinality_filter",
            "explain",
            "trace",
        ):
            value = getattr(self, name)
            if not isinstance(value, bool):
                raise ValueError(
                    f"{name} must be a bool, got {type(value).__name__}"
                )

    # -- construction ----------------------------------------------------
    def replace(self, **changes: Any) -> "DiscoveryOptions":
        """A copy with ``changes`` applied (validated like ``__init__``)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def from_mapping(
        cls, mapping: Mapping[str, Any], where: str = "options"
    ) -> "DiscoveryOptions":
        """Build from a JSON-style dict; unknown keys raise ``ValueError``."""
        if not isinstance(mapping, Mapping):
            raise ValueError(
                f"{where} must be an object, got {type(mapping).__name__}"
            )
        known = {field.name for field in dataclasses.fields(cls)}
        unknown = sorted(set(mapping) - known)
        if unknown:
            raise ValueError(
                f"unknown {where} key(s) {unknown}; known: {sorted(known)}"
            )
        return cls(**dict(mapping))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[str, Any]]
    ) -> "DiscoveryOptions":
        """Rebuild from :meth:`to_pairs` output (or legacy option pairs)."""
        return cls.from_mapping(dict(pairs), where="option pairs")

    # -- serialisation ---------------------------------------------------
    def to_pairs(self) -> tuple[tuple[str, Any], ...]:
        """Non-default fields as sorted pairs (the Scenario storage form).

        Default options serialise to ``()`` — byte-identical to the
        pre-``DiscoveryOptions`` empty ``mapper_options`` tuple, so
        content fingerprints (and the service result cache keyed on
        them) survive the API migration.
        """
        defaults = _DEFAULTS
        return tuple(
            sorted(
                (field.name, getattr(self, field.name))
                for field in dataclasses.fields(self)
                if getattr(self, field.name)
                != getattr(defaults, field.name)
            )
        )

    def to_dict(self) -> dict[str, Any]:
        """Every field, JSON-friendly (wire and report payloads)."""
        return {
            field.name: getattr(self, field.name)
            for field in dataclasses.fields(self)
        }

    # -- behaviour queries -----------------------------------------------
    @property
    def wants_trace(self) -> bool:
        """True when this run should record spans (explain implies trace)."""
        return self.trace or self.explain


_DEFAULTS = DiscoveryOptions()

#: The default options singleton (shared; the class is immutable).
DEFAULT_OPTIONS = _DEFAULTS


def merge_legacy_kwargs(
    options: DiscoveryOptions | None,
    kwargs: Mapping[str, Any],
    caller: str,
    stacklevel: int = 3,
) -> DiscoveryOptions:
    """Fold deprecated per-knob keyword arguments into an options object.

    Accepts exactly the :data:`LEGACY_OPTION_NAMES` (plus ``explain`` /
    ``trace`` for forward-compatible keyword use); any use emits a
    :class:`DeprecationWarning` naming the caller and the replacement.
    Passing both ``options`` and a legacy kwarg that it also sets is an
    error — the call would be ambiguous.
    """
    if not kwargs:
        return options if options is not None else DEFAULT_OPTIONS
    known = {field.name for field in dataclasses.fields(DiscoveryOptions)}
    unknown = sorted(set(kwargs) - known)
    if unknown:
        raise TypeError(
            f"{caller} got unexpected keyword argument(s) {unknown}; "
            f"known options: {sorted(known)}"
        )
    warnings.warn(
        f"passing {sorted(kwargs)} to {caller} as keyword arguments is "
        f"deprecated; pass options=DiscoveryOptions(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    if options is None:
        return DiscoveryOptions(**dict(kwargs))
    conflicting = sorted(
        name for name in kwargs if kwargs[name] != getattr(options, name)
    )
    if conflicting:
        raise TypeError(
            f"{caller} got both options= and conflicting legacy "
            f"keyword(s) {conflicting}"
        )
    return options
