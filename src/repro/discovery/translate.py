"""Translating CSGs into relational expressions (Section 3.4).

A discovered CSG, together with the correspondences it covers, is first
encoded as a conjunctive query over CM predicates (the encoding algorithm
of Section 2, plus key-merging), then rewritten over the schema's LAV
table semantics into table-level queries. Correspondence ``i`` exports the
shared distinguished variable ``v{i}`` on both sides, so the source and
target queries of a mapping candidate align positionally.
"""

from __future__ import annotations

import weakref
from typing import Sequence

from repro.correspondences import LiftedCorrespondence
from repro.discovery.csg import CSG
from repro.exceptions import DiscoveryError
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters
from repro.queries.conjunctive import ConjunctiveQuery, Term
from repro.queries.normalize import key_positions_of_schema
from repro.queries.rewrite import rewrite_query
from repro.semantics.encoder import apply_key_merge, encode_tree
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import SemanticTree


def correspondence_variable(index: int) -> str:
    """The shared distinguished variable name of correspondence ``index``."""
    return f"v{index + 1}"


def csg_to_cm_query(
    csg: CSG,
    covered: Sequence[LiftedCorrespondence],
    side: str,
    semantics: SchemaSemantics,
) -> ConjunctiveQuery:
    """Encode a CSG and its covered correspondences as a CM-level query.

    The head exports one term per covered correspondence, in order;
    correspondences sharing an attribute node share a variable.
    """
    if side not in ("source", "target"):
        raise DiscoveryError(f"side must be 'source' or 'target': {side!r}")
    marked = csg.marked_map()
    column_map: dict[str, tuple] = {}
    attribute_to_column: dict[tuple, str] = {}
    head_column_names: list[str] = []
    for index, item in enumerate(covered):
        cls = item.source_class if side == "source" else item.target_class
        attribute = (
            item.source_attribute if side == "source" else item.target_attribute
        )
        if cls not in marked:
            raise DiscoveryError(
                f"correspondence {item.correspondence} covers class "
                f"{cls!r} absent from {csg}"
            )
        node = marked[cls]
        key = (node, attribute)
        if key in attribute_to_column:
            head_column_names.append(attribute_to_column[key])
            continue
        name = correspondence_variable(index)
        attribute_to_column[key] = name
        column_map[name] = key
        head_column_names.append(name)
    tree = SemanticTree(csg.tree.root, csg.tree.edges, column_map)
    encoded = apply_key_merge(
        encode_tree(tree, semantics.model), tree, semantics.model
    )
    head_terms: list[Term] = [
        encoded.column_variables[name] for name in head_column_names
    ]
    return ConjunctiveQuery(head_terms, encoded.atoms, name="ans")


#: Translation memo, weakly keyed by the semantics object (the values
#: never reference it, so entries die exactly when the semantics does).
#: The inner key freezes everything ``csg_to_cm_query`` + rewriting read:
#: the CSG's tree structure, marked nodes, the covered correspondences,
#: the side, and the required-tables flag. Unbounded by default;
#: ``perf.config.cache_size("translation")`` (set per run through
#: ``DiscoveryOptions.translation_cache_size``) installs a
#: wholesale-clear bound on each per-semantics store.
_TRANSLATION_CACHE: "weakref.WeakKeyDictionary[SchemaSemantics, dict]" = (
    weakref.WeakKeyDictionary()
)


def clear_translation_cache() -> None:
    _TRANSLATION_CACHE.clear()


def _csg_cache_key(csg: CSG) -> tuple:
    return (
        str(csg.tree.root),
        tuple(
            (
                str(edge.parent),
                edge.cm_edge.source,
                edge.cm_edge.label,
                edge.cm_edge.target,
                str(edge.child),
            )
            for edge in csg.tree.edges
        ),
        tuple((name, str(node)) for name, node in csg.marked),
    )


def translate_csg(
    csg: CSG,
    covered: Sequence[LiftedCorrespondence],
    side: str,
    semantics: SchemaSemantics,
    require_correspondence_tables: bool = True,
) -> list[ConjunctiveQuery]:
    """CSG → table-level queries via LAV rewriting (memoized).

    Per the paper, surviving rewritings must mention the tables whose
    columns are linked by the covered correspondences; containment-
    redundant rewritings are pruned inside :func:`rewrite_query`.
    Rewriting is deterministic and by far the most expensive step of
    candidate emission, so results are memoized per semantics object —
    repeated discovery over the same schema pair (batch runs, warm
    re-runs) skips it entirely.
    """
    if not perf_config.enabled():
        return _translate_uncached(
            csg, covered, side, semantics, require_correspondence_tables
        )
    store = _TRANSLATION_CACHE.get(semantics)
    if store is None:
        store = {}
        _TRANSLATION_CACHE[semantics] = store
    key = (
        side,
        bool(require_correspondence_tables),
        _csg_cache_key(csg),
        tuple(covered),
    )
    hit = store.get(key)
    if hit is not None:
        perf_counters.record("translate_cache_hits")
        return list(hit)
    perf_counters.record("translate_cache_misses")
    queries = _translate_uncached(
        csg, covered, side, semantics, require_correspondence_tables
    )
    bound = perf_config.cache_size("translation")
    if bound is not None and len(store) >= bound:
        store.clear()
    store[key] = tuple(queries)
    return queries


def _translate_uncached(
    csg: CSG,
    covered: Sequence[LiftedCorrespondence],
    side: str,
    semantics: SchemaSemantics,
    require_correspondence_tables: bool,
) -> list[ConjunctiveQuery]:
    cm_query = csg_to_cm_query(csg, covered, side, semantics)
    required: set[str] = set()
    if require_correspondence_tables:
        for item in covered:
            column = (
                item.correspondence.source
                if side == "source"
                else item.correspondence.target
            )
            required.add(column.table)
    return rewrite_query(
        cm_query,
        semantics.views(),
        required_tables=required,
        key_positions=key_positions_of_schema(semantics.schema),
    )
