"""Translating CSGs into relational expressions (Section 3.4).

A discovered CSG, together with the correspondences it covers, is first
encoded as a conjunctive query over CM predicates (the encoding algorithm
of Section 2, plus key-merging), then rewritten over the schema's LAV
table semantics into table-level queries. Correspondence ``i`` exports the
shared distinguished variable ``v{i}`` on both sides, so the source and
target queries of a mapping candidate align positionally.
"""

from __future__ import annotations

from typing import Sequence

from repro.correspondences import LiftedCorrespondence
from repro.discovery.csg import CSG
from repro.exceptions import DiscoveryError
from repro.queries.conjunctive import ConjunctiveQuery, Term
from repro.queries.normalize import key_positions_of_schema
from repro.queries.rewrite import rewrite_query
from repro.semantics.encoder import apply_key_merge, encode_tree
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import SemanticTree


def correspondence_variable(index: int) -> str:
    """The shared distinguished variable name of correspondence ``index``."""
    return f"v{index + 1}"


def csg_to_cm_query(
    csg: CSG,
    covered: Sequence[LiftedCorrespondence],
    side: str,
    semantics: SchemaSemantics,
) -> ConjunctiveQuery:
    """Encode a CSG and its covered correspondences as a CM-level query.

    The head exports one term per covered correspondence, in order;
    correspondences sharing an attribute node share a variable.
    """
    if side not in ("source", "target"):
        raise DiscoveryError(f"side must be 'source' or 'target': {side!r}")
    marked = csg.marked_map()
    column_map: dict[str, tuple] = {}
    attribute_to_column: dict[tuple, str] = {}
    head_column_names: list[str] = []
    for index, item in enumerate(covered):
        cls = item.source_class if side == "source" else item.target_class
        attribute = (
            item.source_attribute if side == "source" else item.target_attribute
        )
        if cls not in marked:
            raise DiscoveryError(
                f"correspondence {item.correspondence} covers class "
                f"{cls!r} absent from {csg}"
            )
        node = marked[cls]
        key = (node, attribute)
        if key in attribute_to_column:
            head_column_names.append(attribute_to_column[key])
            continue
        name = correspondence_variable(index)
        attribute_to_column[key] = name
        column_map[name] = key
        head_column_names.append(name)
    tree = SemanticTree(csg.tree.root, csg.tree.edges, column_map)
    encoded = apply_key_merge(
        encode_tree(tree, semantics.model), tree, semantics.model
    )
    head_terms: list[Term] = [
        encoded.column_variables[name] for name in head_column_names
    ]
    return ConjunctiveQuery(head_terms, encoded.atoms, name="ans")


def translate_csg(
    csg: CSG,
    covered: Sequence[LiftedCorrespondence],
    side: str,
    semantics: SchemaSemantics,
    require_correspondence_tables: bool = True,
) -> list[ConjunctiveQuery]:
    """CSG → table-level queries via LAV rewriting.

    Per the paper, surviving rewritings must mention the tables whose
    columns are linked by the covered correspondences; containment-
    redundant rewritings are pruned inside :func:`rewrite_query`.
    """
    cm_query = csg_to_cm_query(csg, covered, side, semantics)
    required: set[str] = set()
    if require_correspondence_tables:
        for item in covered:
            column = (
                item.correspondence.source
                if side == "source"
                else item.correspondence.target
            )
            required.add(column.table)
    return rewrite_query(
        cm_query,
        semantics.views(),
        required_tables=required,
        key_positions=key_positions_of_schema(semantics.schema),
    )
