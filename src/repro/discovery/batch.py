"""Batch discovery: shared indexes, parallel fan-out, and fault isolation.

:func:`discover_many` runs a list of :class:`Scenario` specs through
:class:`~repro.discovery.mapper.SemanticMapper`. In serial mode the
shared-computation layer does the heavy lifting automatically: scenarios
over the same schema pair hit the same :class:`~repro.perf.GraphIndex`,
reasoner memos, and translation caches, so a whole-dataset run pays the
per-graph costs once. With ``workers > 1`` scenarios fan out over a
``concurrent.futures`` process pool; scenarios are grouped by schema
pair (by *content*, so equal-but-distinct semantics objects share a
worker) and each worker process shares its caches across the group's
correspondence sets.

Fault isolation
---------------
One bad scenario never kills the batch. Every scenario runs under a
guard that captures

* exceptions raised by ``discover()`` (including validation errors),
* a configurable per-scenario wall-clock timeout
  (:class:`~repro.exceptions.ScenarioTimeout`), and
* worker-process deaths (``BrokenProcessPool`` →
  :class:`~repro.exceptions.WorkerCrashed`), with a bounded serial
  re-run for the groups the dead worker took down,

as structured :class:`ScenarioFailure` records in
:attr:`BatchResult.failures`. Every scenario is probed for picklability
before any worker is spawned; unpicklable specs degrade to serial
execution in the parent (or to a failure record, under
``BatchPolicy(on_unpicklable="fail")``) with a note, while the rest of
the batch still runs in parallel. See ``docs/robustness.md``.

Parallel and serial modes produce identical results: each scenario runs
the same deterministic ``discover()``, and outputs are re-ordered to the
input order before returning.
"""

from __future__ import annotations

import pickle
import signal
import threading
import time
import traceback
import warnings
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from repro.correspondences import CorrespondenceSet
from repro.discovery.fingerprint import (
    scenario_fingerprint,
    semantics_content_key,
)
from repro.discovery.mapper import DiscoveryResult, SemanticMapper
from repro.discovery.options import DiscoveryOptions, merge_legacy_kwargs
from repro.exceptions import (
    BatchError,
    ScenarioTimeout,
    TimeoutUnavailableWarning,
    WorkerCrashed,
)
from repro.perf import counters as perf_counters
from repro.semantics.lav import SchemaSemantics

#: How many innermost traceback frames a :class:`ScenarioFailure` keeps.
_TRACEBACK_FRAMES = 4


@dataclass(frozen=True, eq=False)
class Scenario:
    """One discovery request: a schema pair plus correspondences.

    ``mapper_options`` stores the discovery options as a sorted tuple of
    ``(field, value)`` pairs — the picklable, fingerprint-stable storage
    form of :class:`~repro.discovery.options.DiscoveryOptions`
    (:meth:`~repro.discovery.options.DiscoveryOptions.to_pairs`). New
    code passes ``options=DiscoveryOptions(...)`` to :meth:`create`; the
    old ``**mapper_options`` keyword spelling still works but emits a
    :class:`DeprecationWarning`, and its values are only validated when
    the scenario *runs* so one malformed spec stays a per-scenario
    failure record instead of killing batch assembly.
    """

    scenario_id: str
    source: SchemaSemantics
    target: SchemaSemantics
    correspondences: CorrespondenceSet
    mapper_options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def create(
        cls,
        scenario_id: str,
        source: SchemaSemantics,
        target: SchemaSemantics,
        correspondences: CorrespondenceSet,
        options: DiscoveryOptions | None = None,
        **mapper_options: object,
    ) -> "Scenario":
        if options is not None:
            # Eager validation: an explicit options object is the new
            # API, so mixing in legacy kwargs fails fast here.
            options = merge_legacy_kwargs(
                options, mapper_options, "Scenario.create()"
            )
            pairs = options.to_pairs()
        else:
            pairs = tuple(sorted(mapper_options.items()))
            if mapper_options:
                warnings.warn(
                    f"passing {sorted(mapper_options)} to Scenario.create() "
                    f"as keyword arguments is deprecated; pass "
                    f"options=DiscoveryOptions(...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
        return cls(scenario_id, source, target, correspondences, pairs)

    def discovery_options(self) -> DiscoveryOptions | None:
        """The stored pairs as a :class:`DiscoveryOptions`, if they parse.

        ``None`` means the pairs hold legacy values no options object
        accepts; :meth:`run` then falls back to the deprecated keyword
        path (and surfaces its error, if any, at run time).
        """
        try:
            return DiscoveryOptions.from_pairs(self.mapper_options)
        except (TypeError, ValueError):
            return None

    def run(self, tracer=None) -> DiscoveryResult:
        options = self.discovery_options()
        if options is not None:
            mapper = SemanticMapper(
                self.source, self.target, self.correspondences, options=options
            )
        else:
            mapper = SemanticMapper(
                self.source,
                self.target,
                self.correspondences,
                **dict(self.mapper_options),
            )
        result = mapper.discover(tracer=tracer)
        result.scenario_id = self.scenario_id
        return result


@dataclass(frozen=True)
class BatchPolicy:
    """Fault-handling knobs for one batch run.

    Parameters
    ----------
    timeout_seconds:
        Per-scenario wall-clock limit; ``None`` disables the limit.
        Enforced with ``SIGALRM`` in whichever process runs the scenario
        (worker processes and, in serial mode, the parent's main
        thread). In contexts where ``SIGALRM`` cannot be armed — worker
        *threads* (e.g. the ``repro.service`` job queue) or non-Unix
        platforms — the limit degrades to no-timeout with a
        :class:`~repro.exceptions.TimeoutUnavailableWarning`.
    retries:
        How many serial re-runs a scenario gets after its worker process
        died (the whole group is re-run in the parent, since a dead
        worker takes every in-flight scenario of its group with it).
        ``0`` turns worker deaths directly into failure records.
    on_unpicklable:
        ``"serial"`` (default) runs scenarios that fail the pickling
        probe serially in the parent, keeping the rest of the batch
        parallel; ``"fail"`` records them as failures instead.
    """

    timeout_seconds: float | None = None
    retries: int = 1
    on_unpicklable: str = "serial"

    def __post_init__(self) -> None:
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise ValueError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.retries < 0:
            raise ValueError(f"retries must be >= 0, got {self.retries}")
        if self.on_unpicklable not in ("serial", "fail"):
            raise ValueError(
                "on_unpicklable must be 'serial' or 'fail', "
                f"got {self.on_unpicklable!r}"
            )


@dataclass(frozen=True)
class ScenarioFailure:
    """Structured record of one scenario that did not produce a result.

    ``error_type`` is the exception class name (``"ScenarioTimeout"``,
    ``"WorkerCrashed"``, ``"ValidationError"``, ``"PicklingError"``, ...),
    ``traceback_summary`` the innermost frames as ``file:line in func``
    strings, and ``attempts`` how many times the scenario was tried
    (> 1 after a worker-death retry).
    """

    scenario_id: str
    error_type: str
    message: str
    traceback_summary: tuple[str, ...] = ()
    elapsed_seconds: float = 0.0
    attempts: int = 1

    def describe(self) -> str:
        frames = (
            " <- ".join(self.traceback_summary)
            if self.traceback_summary
            else "no traceback"
        )
        return (
            f"{self.scenario_id}: {self.error_type}: {self.message} "
            f"(attempt {self.attempts}, {self.elapsed_seconds:.3f}s; {frames})"
        )

    def __str__(self) -> str:
        return self.describe()


def failure_from_exception(
    scenario_id: str,
    error: BaseException,
    elapsed: float,
    attempts: int = 1,
) -> ScenarioFailure:
    frames = tuple(
        f"{frame.filename.rsplit('/', 1)[-1]}:{frame.lineno} in {frame.name}"
        for frame in traceback.extract_tb(error.__traceback__)[
            -_TRACEBACK_FRAMES:
        ]
    )
    return ScenarioFailure(
        scenario_id=scenario_id,
        error_type=type(error).__name__,
        message=str(error),
        traceback_summary=frames,
        elapsed_seconds=round(elapsed, 6),
        attempts=attempts,
    )


@dataclass
class BatchResult:
    """Per-scenario results (input order), failures, and statistics.

    ``results`` holds the scenarios that produced a
    :class:`DiscoveryResult`; ``failures`` holds a
    :class:`ScenarioFailure` for every scenario that did not.
    ``stats["scenarios"]`` counts all inputs, ``stats["succeeded"]`` /
    ``stats["failed"]`` the split.
    """

    results: list[tuple[str, DiscoveryResult]]
    stats: dict[str, int | float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)
    failures: list[ScenarioFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def result_for(self, scenario_id: str) -> DiscoveryResult:
        for found_id, result in self.results:
            if found_id == scenario_id:
                return result
        failure = self.failure_for(scenario_id)
        if failure is not None:
            raise KeyError(
                f"scenario {scenario_id!r} failed: {failure.describe()}"
            )
        raise KeyError(scenario_id)

    def failure_for(self, scenario_id: str) -> ScenarioFailure | None:
        for failure in self.failures:
            if failure.scenario_id == scenario_id:
                return failure
        return None

    def raise_first_failure(self) -> None:
        """Re-surface the first failure as a :class:`BatchError` (fail-fast)."""
        if self.failures:
            raise BatchError(self.failures[0].describe())

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


# ---------------------------------------------------------------------------
# Content identity of schema semantics (grouping key)
# ---------------------------------------------------------------------------
# Both helpers now live in ``repro.discovery.fingerprint`` (the staged
# engine keys on the same content identities); re-exported here because
# the batch module is their historical home and the service imports
# ``scenario_fingerprint`` from it.
_semantics_content_key = semantics_content_key


def _group_by_pair(
    scenarios: Sequence[tuple[int, Scenario]] | Sequence[Scenario],
) -> list[list[tuple[int, Scenario]]]:
    """Partition scenarios by schema pair, keeping original positions.

    Grouping keeps every scenario of one schema pair in one worker, so
    the worker's graph indexes, reasoner memos, and translation caches
    are shared across the pair's correspondence sets. Pairs are compared
    by content (:func:`_semantics_content_key`), not object identity.
    """
    items: list[tuple[int, Scenario]]
    if scenarios and not isinstance(scenarios[0], tuple):
        items = list(enumerate(scenarios))  # type: ignore[arg-type]
    else:
        items = list(scenarios)  # type: ignore[assignment]
    groups: dict[tuple[str, str], list[tuple[int, Scenario]]] = {}
    for position, scenario in items:
        key = (
            _semantics_content_key(scenario.source),
            _semantics_content_key(scenario.target),
        )
        groups.setdefault(key, []).append((position, scenario))
    return list(groups.values())


# ---------------------------------------------------------------------------
# Guarded execution
# ---------------------------------------------------------------------------
@contextmanager
def _deadline(seconds: float | None, scenario_id: str) -> Iterator[None]:
    """Raise :class:`ScenarioTimeout` after ``seconds`` of wall-clock time.

    Uses ``SIGALRM``, so it only arms on platforms that have it and when
    running on the main thread of its process (always true for pool
    workers). Elsewhere — notably worker *threads* such as the
    ``repro.service`` job queue, where ``signal.signal`` would raise —
    the limit degrades to no-timeout with a
    :class:`TimeoutUnavailableWarning` and a ``timeouts_unenforced``
    perf counter, never a crash and never a silent drop.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if not hasattr(signal, "SIGALRM"):
        reason = "this platform has no SIGALRM"
    elif threading.current_thread() is not threading.main_thread():
        reason = (
            "SIGALRM can only be armed on the process's main thread, and "
            "this scenario is running on a worker thread"
        )
    else:
        reason = None
    if reason is not None:
        warnings.warn(
            TimeoutUnavailableWarning(
                f"scenario {scenario_id!r}: the {seconds}s wall-clock "
                f"limit is not enforced ({reason}); running without a "
                f"timeout"
            ),
            stacklevel=3,
        )
        perf_counters.record("timeouts_unenforced")
        yield
        return

    def _on_alarm(signum, frame):  # noqa: ARG001 - signal signature
        raise ScenarioTimeout(
            f"scenario {scenario_id!r} exceeded the {seconds}s "
            f"wall-clock limit"
        )

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _guarded_run(
    scenario: Scenario,
    timeout_seconds: float | None,
    attempts: int = 1,
) -> tuple[str, object]:
    """Run one scenario under fault isolation.

    Returns ``("ok", DiscoveryResult)`` or ``("error", ScenarioFailure)``;
    never raises for scenario-level problems.
    """
    start = time.perf_counter()
    try:
        with _deadline(timeout_seconds, scenario.scenario_id):
            result = scenario.run()
    except Exception as error:
        elapsed = time.perf_counter() - start
        return (
            "error",
            failure_from_exception(scenario.scenario_id, error, elapsed, attempts),
        )
    return ("ok", result)


def _run_group(
    group: list[tuple[int, Scenario]],
    timeout_seconds: float | None = None,
) -> list[tuple[int, str, str, object]]:
    """Process-pool worker: run one schema pair's scenarios serially.

    Each scenario is individually guarded, so one failure inside the
    group still lets the rest of the group produce results. Rows are
    ``(position, scenario_id, kind, payload)`` with ``kind`` in
    ``{"ok", "error"}``.
    """
    rows: list[tuple[int, str, str, object]] = []
    for position, scenario in group:
        kind, payload = _guarded_run(scenario, timeout_seconds)
        rows.append((position, scenario.scenario_id, kind, payload))
    return rows


def _pickling_error(scenario: Scenario) -> BaseException | None:
    """Probe one scenario for picklability; return the failure, if any.

    Pickling unpicklable payloads (locks, open files, bound local
    closures) raises ``TypeError`` or ``AttributeError`` at least as
    often as ``pickle.PicklingError``, so the probe catches broadly.
    """
    try:
        pickle.dumps(scenario)
    except Exception as error:
        return error
    return None


# ---------------------------------------------------------------------------
# Aggregation
# ---------------------------------------------------------------------------
def _aggregate_stats(
    results: Iterable[tuple[str, DiscoveryResult]],
    total: int,
    failures: Sequence[ScenarioFailure],
    retried: int = 0,
) -> dict[str, int | float]:
    totals = perf_counters.PerfCounters()
    wall = 0.0
    succeeded = 0
    for _, result in results:
        totals.merge(result.stats)
        wall += result.elapsed_seconds
        succeeded += 1
    stats = totals.snapshot()
    stats["scenarios"] = total
    stats["succeeded"] = succeeded
    stats["failed"] = len(failures)
    stats["timeouts"] = sum(
        1 for f in failures if f.error_type == ScenarioTimeout.__name__
    )
    stats["worker_crashes"] = sum(
        1 for f in failures if f.error_type == WorkerCrashed.__name__
    )
    stats["retried"] = retried
    stats["total_discovery_seconds"] = round(wall, 6)
    return stats


class BatchDiscovery:
    """Front-end running many scenarios with shared computation.

    >>> batch = BatchDiscovery(workers=1)  # doctest: +SKIP
    >>> batch.discover_many(scenarios)     # doctest: +SKIP
    """

    def __init__(
        self, workers: int = 1, policy: BatchPolicy | None = None
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.policy = policy or BatchPolicy()

    def discover_many(
        self,
        scenarios: Sequence[Scenario],
        workers: int | None = None,
    ) -> BatchResult:
        scenarios = list(scenarios)
        self._check_unique_ids(scenarios)
        workers = self.workers if workers is None else workers
        notes: list[str] = []
        outcomes: list[tuple[str, object] | None] = [None] * len(scenarios)
        retried = 0
        if workers > 1 and len(scenarios) > 1:
            retried = self._run_parallel(scenarios, workers, outcomes, notes)
        else:
            for position, scenario in enumerate(scenarios):
                outcomes[position] = _guarded_run(
                    scenario, self.policy.timeout_seconds
                )
        results: list[tuple[str, DiscoveryResult]] = []
        failures: list[ScenarioFailure] = []
        for position, outcome in enumerate(outcomes):
            if outcome is None:  # pragma: no cover - defensive
                failures.append(
                    ScenarioFailure(
                        scenario_id=scenarios[position].scenario_id,
                        error_type=WorkerCrashed.__name__,
                        message="scenario produced no outcome",
                    )
                )
                continue
            kind, payload = outcome
            if kind == "ok":
                results.append(
                    (scenarios[position].scenario_id, payload)  # type: ignore[arg-type]
                )
            else:
                failures.append(payload)  # type: ignore[arg-type]
        stats = _aggregate_stats(results, len(scenarios), failures, retried)
        return BatchResult(results, stats, notes, failures)

    @staticmethod
    def _check_unique_ids(scenarios: Sequence[Scenario]) -> None:
        seen: set[str] = set()
        for scenario in scenarios:
            if scenario.scenario_id in seen:
                raise ValueError(
                    f"duplicate scenario_id {scenario.scenario_id!r}; "
                    f"ids must be unique within a batch"
                )
            seen.add(scenario.scenario_id)

    # ------------------------------------------------------------------
    # Parallel execution
    # ------------------------------------------------------------------
    def _run_parallel(
        self,
        scenarios: Sequence[Scenario],
        workers: int,
        outcomes: list[tuple[str, object] | None],
        notes: list[str],
    ) -> int:
        """Fan groups out over a process pool; fill ``outcomes`` in place.

        Returns the number of scenarios that were re-run serially after
        a worker death.
        """
        policy = self.policy
        # Probe every scenario for picklability before spawning workers:
        # ProcessPoolExecutor raises lazily otherwise, poisoning the pool
        # mid-batch for a spec that was doomed from the start.
        pool_items: list[tuple[int, Scenario]] = []
        serial_items: list[tuple[int, Scenario]] = []
        for position, scenario in enumerate(scenarios):
            error = _pickling_error(scenario)
            if error is None:
                pool_items.append((position, scenario))
                continue
            if policy.on_unpicklable == "fail":
                notes.append(
                    f"scenario {scenario.scenario_id!r} is not picklable "
                    f"({type(error).__name__}); recorded as failure"
                )
                outcomes[position] = (
                    "error",
                    ScenarioFailure(
                        scenario_id=scenario.scenario_id,
                        error_type=type(error).__name__,
                        message=f"scenario spec does not pickle: {error}",
                    ),
                )
            else:
                notes.append(
                    f"scenario {scenario.scenario_id!r} is not picklable "
                    f"({type(error).__name__}); falling back to serial"
                )
                serial_items.append((position, scenario))

        retry_items: list[tuple[int, Scenario]] = []
        retried = 0
        if pool_items:
            groups = _group_by_pair(pool_items)
            with ProcessPoolExecutor(max_workers=workers) as pool:
                future_groups = {
                    pool.submit(
                        _run_group, group, policy.timeout_seconds
                    ): group
                    for group in groups
                }
                pending = set(future_groups)
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in done:
                        group = future_groups[future]
                        try:
                            rows = future.result()
                        except Exception as error:
                            # A dead worker (BrokenProcessPool) fails every
                            # in-flight future; collect the groups for a
                            # bounded serial re-run instead of aborting.
                            group_ids = [s.scenario_id for _, s in group]
                            notes.append(
                                f"worker running {group_ids} died "
                                f"({type(error).__name__}: {error}); "
                                + (
                                    "retrying serially"
                                    if policy.retries > 0
                                    else "recording failures"
                                )
                            )
                            if policy.retries > 0:
                                retry_items.extend(group)
                            else:
                                for position, scenario in group:
                                    outcomes[position] = (
                                        "error",
                                        ScenarioFailure(
                                            scenario_id=scenario.scenario_id,
                                            error_type=WorkerCrashed.__name__,
                                            message=(
                                                f"worker process died: "
                                                f"{type(error).__name__}: "
                                                f"{error}"
                                            ),
                                        ),
                                    )
                            continue
                        for position, _, kind, payload in rows:
                            outcomes[position] = (kind, payload)

        for position, scenario in retry_items:
            retried += 1
            outcome = None
            for attempt in range(2, policy.retries + 2):
                outcome = _guarded_run(
                    scenario, policy.timeout_seconds, attempts=attempt
                )
                if outcome[0] == "ok":
                    break
            outcomes[position] = outcome

        for position, scenario in serial_items:
            outcomes[position] = _guarded_run(
                scenario, policy.timeout_seconds
            )
        return retried


def discover_many(
    scenarios: Sequence[Scenario],
    workers: int = 1,
    policy: BatchPolicy | None = None,
) -> BatchResult:
    """Run many discovery scenarios, sharing work; see the module doc."""
    return BatchDiscovery(workers=workers, policy=policy).discover_many(
        scenarios
    )


def scenarios_for_cases(
    source: SchemaSemantics,
    target: SchemaSemantics,
    cases: Iterable[tuple[str, CorrespondenceSet]],
    mapper_options: Mapping[str, object] | None = None,
    options: DiscoveryOptions | None = None,
) -> list[Scenario]:
    """Scenarios for many correspondence sets over one schema pair.

    ``options`` is the supported spelling; ``mapper_options`` keyword
    pairs are deprecated (the per-scenario ``Scenario.create`` shim
    warns once per case).
    """
    legacy = dict(mapper_options or {})
    return [
        Scenario.create(
            case_id, source, target, correspondences, options=options, **legacy
        )
        for case_id, correspondences in cases
    ]
