"""Batch discovery: shared indexes plus parallel scenario fan-out.

:func:`discover_many` runs a list of :class:`Scenario` specs through
:class:`~repro.discovery.mapper.SemanticMapper`. In serial mode the
shared-computation layer does the heavy lifting automatically: scenarios
over the same schema pair hit the same :class:`~repro.perf.GraphIndex`,
reasoner memos, and translation caches, so a whole-dataset run pays the
per-graph costs once. With ``workers > 1`` scenarios fan out over a
``concurrent.futures`` process pool; scenarios are grouped by schema
pair so each worker process also shares its caches across the group's
correspondence sets. Scenario specs are plain picklable dataclasses —
if a spec turns out not to pickle, the batch degrades to serial and
records a note instead of failing.

Parallel and serial modes produce identical results: each scenario runs
the same deterministic ``discover()``, and outputs are re-ordered to the
input order before returning.
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.correspondences import CorrespondenceSet
from repro.discovery.mapper import DiscoveryResult, SemanticMapper
from repro.perf import counters as perf_counters
from repro.semantics.lav import SchemaSemantics


@dataclass(frozen=True, eq=False)
class Scenario:
    """One discovery request: a schema pair plus correspondences.

    ``mapper_options`` holds extra :class:`SemanticMapper` keyword
    arguments as a sorted tuple of pairs, keeping the spec hashable-free
    and picklable.
    """

    scenario_id: str
    source: SchemaSemantics
    target: SchemaSemantics
    correspondences: CorrespondenceSet
    mapper_options: tuple[tuple[str, object], ...] = ()

    @classmethod
    def create(
        cls,
        scenario_id: str,
        source: SchemaSemantics,
        target: SchemaSemantics,
        correspondences: CorrespondenceSet,
        **mapper_options: object,
    ) -> "Scenario":
        return cls(
            scenario_id,
            source,
            target,
            correspondences,
            tuple(sorted(mapper_options.items())),
        )

    def run(self) -> DiscoveryResult:
        mapper = SemanticMapper(
            self.source,
            self.target,
            self.correspondences,
            **dict(self.mapper_options),
        )
        return mapper.discover()


@dataclass
class BatchResult:
    """Per-scenario results (input order) plus aggregate statistics."""

    results: list[tuple[str, DiscoveryResult]]
    stats: dict[str, int | float] = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def result_for(self, scenario_id: str) -> DiscoveryResult:
        for found_id, result in self.results:
            if found_id == scenario_id:
                return result
        raise KeyError(scenario_id)

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)


def _group_by_pair(
    scenarios: Sequence[Scenario],
) -> list[list[tuple[int, Scenario]]]:
    """Partition scenarios by schema pair, keeping original positions.

    Grouping keeps every scenario of one schema pair in one worker, so
    the worker's graph indexes, reasoner memos, and translation caches
    are shared across the pair's correspondence sets.
    """
    groups: dict[tuple[int, int], list[tuple[int, Scenario]]] = {}
    for position, scenario in enumerate(scenarios):
        key = (id(scenario.source), id(scenario.target))
        groups.setdefault(key, []).append((position, scenario))
    return list(groups.values())


def _run_group(
    group: list[tuple[int, Scenario]],
) -> list[tuple[int, str, DiscoveryResult]]:
    """Process-pool worker: run one schema pair's scenarios serially."""
    return [
        (position, scenario.scenario_id, scenario.run())
        for position, scenario in group
    ]


def _aggregate_stats(
    results: Iterable[tuple[str, DiscoveryResult]],
) -> dict[str, int | float]:
    totals = perf_counters.PerfCounters()
    wall = 0.0
    count = 0
    for _, result in results:
        totals.merge(result.stats)
        wall += result.elapsed_seconds
        count += 1
    stats = totals.snapshot()
    stats["scenarios"] = count
    stats["total_discovery_seconds"] = round(wall, 6)
    return stats


class BatchDiscovery:
    """Front-end running many scenarios with shared computation.

    >>> batch = BatchDiscovery(workers=1)  # doctest: +SKIP
    >>> batch.discover_many(scenarios)     # doctest: +SKIP
    """

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers

    def discover_many(
        self,
        scenarios: Sequence[Scenario],
        workers: int | None = None,
    ) -> BatchResult:
        scenarios = list(scenarios)
        workers = self.workers if workers is None else workers
        notes: list[str] = []
        if workers > 1 and len(scenarios) > 1:
            try:
                ordered = self._run_parallel(scenarios, workers)
            except pickle.PicklingError as error:
                notes.append(f"falling back to serial: unpicklable ({error})")
                ordered = self._run_serial(scenarios)
        else:
            ordered = self._run_serial(scenarios)
        return BatchResult(ordered, _aggregate_stats(ordered), notes)

    def _run_serial(
        self, scenarios: Sequence[Scenario]
    ) -> list[tuple[str, DiscoveryResult]]:
        return [
            (scenario.scenario_id, scenario.run()) for scenario in scenarios
        ]

    def _run_parallel(
        self, scenarios: Sequence[Scenario], workers: int
    ) -> list[tuple[str, DiscoveryResult]]:
        groups = _group_by_pair(scenarios)
        # Probe picklability up front so the fallback happens before any
        # worker is spawned (ProcessPoolExecutor failures are otherwise
        # raised lazily and can poison the pool).
        pickle.dumps(scenarios[0])
        slots: list[tuple[int, str, DiscoveryResult] | None] = [
            None
        ] * len(scenarios)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            for rows in pool.map(_run_group, groups):
                for position, scenario_id, result in rows:
                    slots[position] = (position, scenario_id, result)
        assert all(slot is not None for slot in slots)
        return [(scenario_id, result) for _, scenario_id, result in slots]


def discover_many(
    scenarios: Sequence[Scenario],
    workers: int = 1,
) -> BatchResult:
    """Run many discovery scenarios, sharing work; see the module doc."""
    return BatchDiscovery(workers=workers).discover_many(scenarios)


def scenarios_for_cases(
    source: SchemaSemantics,
    target: SchemaSemantics,
    cases: Iterable[tuple[str, CorrespondenceSet]],
    mapper_options: Mapping[str, object] | None = None,
) -> list[Scenario]:
    """Scenarios for many correspondence sets over one schema pair."""
    options = dict(mapper_options or {})
    return [
        Scenario.create(case_id, source, target, correspondences, **options)
        for case_id, correspondences in cases
    ]
