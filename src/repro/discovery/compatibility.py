"""Semantic compatibility between source and target connections.

Implements observation (i) of Section 3.2 plus the Section 3.3
refinements: a connection discovered in the source must be *compatible*
with the target connection it realizes —

* by **cardinality category**: a target connection functional in a
  direction demands a source connection functional in that direction
  (Example 1.1's hypothetical upper-bound-1 ``hasBookSoldAt``);
* by **semantic type**: a **partOf** target relationship should pair with
  a **partOf** source connection (Example 1.3's ``chairOf`` vs ``deanOf``);
* by **consistency**: CSGs denoting the empty class (ISA up then ISA⁻
  down into a disjoint sibling) are eliminated outright;
* by **reified-anchor category** (Section 3.3): a target tree rooted at a
  reified relationship prefers source anchors of the same arity and
  many-many/many-one/one-one flavor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.cm.cardinality import ConnectionCategory, categories_compatible
from repro.cm.graph import CMEdge
from repro.cm.model import SemanticType
from repro.cm.reasoner import CMReasoner
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters


def path_semantic_type(edges: Sequence[CMEdge]) -> SemanticType:
    """The semantic type of a composed connection.

    A composition is **partOf** when every proper relationship edge along
    it is partOf (ISA and attribute edges are neutral); any plain
    relationship edge makes the whole connection plain.
    """
    relationship_edges = [
        edge
        for edge in edges
        if edge.kind in (CMEdge.KIND_RELATIONSHIP, CMEdge.KIND_ROLE)
    ]
    if relationship_edges and all(
        edge.semantic_type is SemanticType.PART_OF
        for edge in relationship_edges
    ):
        return SemanticType.PART_OF
    return SemanticType.PLAIN


@dataclass(frozen=True)
class ConnectionProfile:
    """Everything compatibility checks need to know about one connection."""

    category: ConnectionCategory
    semantic_type: SemanticType
    length: int

    @classmethod
    def of_path(cls, edges: Sequence[CMEdge]) -> "ConnectionProfile":
        if not perf_config.enabled():
            return cls._compute(edges)
        key = tuple(edges)  # CMEdge is frozen: the tuple is a full identity
        hit = _PROFILE_CACHE.get(key)
        if hit is not None:
            perf_counters.record("profile_cache_hits")
            return hit
        perf_counters.record("profile_cache_misses")
        profile = cls._compute(edges)
        bound = perf_config.cache_size("profile")
        if bound is not None and len(_PROFILE_CACHE) >= bound:
            _PROFILE_CACHE.clear()
        _PROFILE_CACHE[key] = profile
        return profile

    @classmethod
    def _compute(cls, edges: Sequence[CMEdge]) -> "ConnectionProfile":
        return cls(
            category=CMReasoner.path_category(edges),
            semantic_type=path_semantic_type(edges),
            length=len(edges),
        )


#: Module-wide ``of_path`` memo; keys are frozen edge tuples, so entries
#: from different models cannot collide. Bounded by wholesale clearing at
#: ``perf.config.cache_size("profile")`` entries (default 8192,
#: overridable per run through ``DiscoveryOptions.profile_cache_size``).
_PROFILE_CACHE: dict[tuple[CMEdge, ...], ConnectionProfile] = {}


def clear_profile_cache() -> None:
    _PROFILE_CACHE.clear()


def compatibility_violation(
    source: ConnectionProfile,
    target: ConnectionProfile,
    check_cardinality: bool = True,
    check_semantic_type: bool = True,
) -> str | None:
    """Name the rule an incompatible pair violates, or ``None`` if none.

    Cardinality: the source category must satisfy every functionality
    constraint of the target category (rule ``"cardinality"``). Semantic
    type: a partOf target rejects a plain source (rule ``"partOf"``; the
    paper "eliminates or downgrades" such pairings — we eliminate, which
    is what drives the precision gain in Example 1.3). A partOf source
    may still realize a plain target.

    The returned rule names are part of the explain-trace vocabulary
    (see :class:`repro.trace.PruneEvent`). The ``check_*`` flags support
    ablation experiments.
    """
    if check_cardinality and not categories_compatible(
        source.category, target.category
    ):
        return "cardinality"
    if (
        check_semantic_type
        and target.semantic_type is SemanticType.PART_OF
        and source.semantic_type is not SemanticType.PART_OF
    ):
        return "partOf"
    return None


def connections_compatible(
    source: ConnectionProfile,
    target: ConnectionProfile,
    check_cardinality: bool = True,
    check_semantic_type: bool = True,
) -> bool:
    """Hard compatibility filter between one source/target connection pair.

    Boolean view of :func:`compatibility_violation`.
    """
    return (
        compatibility_violation(
            source,
            target,
            check_cardinality=check_cardinality,
            check_semantic_type=check_semantic_type,
        )
        is None
    )


def tree_pair_compatible(
    source_reasoner: CMReasoner,
    target_reasoner: CMReasoner,
    source_paths: Sequence[Sequence[CMEdge]],
    target_paths: Sequence[Sequence[CMEdge]],
) -> bool:
    """Pairwise compatibility of corresponding connections in two CSGs.

    ``source_paths[i]`` and ``target_paths[i]`` connect corresponding
    pairs of marked nodes. Both sides must also be internally consistent
    (no disjoint-sibling ISA hops).
    """
    if len(source_paths) != len(target_paths):
        raise ValueError("path lists must pair up positionally")
    for path in source_paths:
        if not source_reasoner.path_is_consistent(list(path)):
            return False
    for path in target_paths:
        if not target_reasoner.path_is_consistent(list(path)):
            return False
    for source_path, target_path in zip(source_paths, target_paths):
        if not connections_compatible(
            ConnectionProfile.of_path(source_path),
            ConnectionProfile.of_path(target_path),
        ):
            return False
    return True


@dataclass(frozen=True)
class AnchorProfile:
    """Section 3.3's preferences for reified-relationship anchors."""

    arity: int
    category: ConnectionCategory

    @classmethod
    def of_reified(
        cls, reasoner: CMReasoner, reified_class: str
    ) -> "AnchorProfile":
        roles = reasoner.model.roles_of(reified_class)
        if len(roles) == 2:
            first, second = roles
            # Traversing role1⁻ then role2 recovers the binary category.
            category = ConnectionCategory.of(
                first.from_card.compose(second.to_card),
                second.from_card.compose(first.to_card),
            )
        else:
            category = ConnectionCategory.MANY_MANY
        return cls(arity=len(roles), category=category)


def anchors_compatible(source: AnchorProfile, target: AnchorProfile) -> bool:
    """Reified anchors must agree on arity and satisfy the target category."""
    if source.arity != target.arity:
        return False
    return categories_compatible(source.category, target.category)
