"""Incremental re-discovery: run again after an edit, reusing stages.

After a user edits a scenario — typically adding, removing, or changing
one correspondence in the interactive refinement loop the paper
describes — most of the discovery work is unchanged: the schemas and
CMs are the same, and every target CSG whose covered correspondences
the edit did not touch would search, filter, and translate identically.
:func:`rediscover` runs the edited scenario through the staged engine
(whose process-wide :class:`~repro.discovery.engine.cache.StageCache`
still holds the previous run's artifacts) and reports *what was
reusable*: which whole stages the edit invalidated (by fingerprint
comparison against the previous run) and how many cached stage
artifacts and per-target search units the warm run actually replayed.

The output is byte-identical to a cold run of the edited scenario — the
cache substitutes artifacts only at equal content fingerprints — so
callers never trade correctness for the speedup. The batch, service,
CLI (``python -m repro map --reuse-from``), and benchmark layers all go
through this module.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.discovery.batch import Scenario
from repro.discovery.engine.stages import STAGE_NAMES, UNIT_STAGE
from repro.discovery.mapper import DiscoveryResult


def _previous_fingerprints(
    previous: "DiscoveryResult | Rediscovery | Mapping[str, str] | None",
) -> dict[str, str]:
    if previous is None:
        return {}
    if isinstance(previous, DiscoveryResult):
        return dict(previous.stage_fingerprints)
    if isinstance(previous, Rediscovery):
        return dict(previous.result.stage_fingerprints)
    return dict(previous)


@dataclass
class Rediscovery:
    """One incremental run: the fresh result plus the reuse report.

    ``unchanged_stages`` / ``invalidated_stages`` compare the new run's
    stage fingerprints against the previous run's (pipeline order): an
    unchanged stage *could* be served wholesale from cache, an
    invalidated one had to recompute — though inside the fused search
    block reuse is finer-grained (per-target units; see
    ``stats["stage_cache_hit_source_search.unit"]``).
    """

    result: DiscoveryResult
    previous_fingerprints: dict[str, str] = field(default_factory=dict)

    @property
    def stage_fingerprints(self) -> dict[str, str]:
        return self.result.stage_fingerprints

    @property
    def unchanged_stages(self) -> tuple[str, ...]:
        return tuple(
            stage
            for stage, fingerprint in self.result.stage_fingerprints.items()
            if self.previous_fingerprints.get(stage) == fingerprint
        )

    @property
    def invalidated_stages(self) -> tuple[str, ...]:
        return tuple(
            stage
            for stage, fingerprint in self.result.stage_fingerprints.items()
            if self.previous_fingerprints.get(stage) != fingerprint
        )

    @property
    def full_reuse(self) -> bool:
        """True when the edit changed nothing (every stage fingerprint
        matches the previous run's)."""
        return not self.invalidated_stages

    # -- cache traffic of this run (from ``result.stats``) ---------------
    @property
    def stage_cache_hits(self) -> int:
        return int(self.result.stats.get("stage_cache_hits", 0))

    @property
    def stage_cache_misses(self) -> int:
        return int(self.result.stats.get("stage_cache_misses", 0))

    @property
    def unit_cache_hits(self) -> int:
        """Per-target search units replayed from cache — the fine-grained
        reuse that survives a correspondence edit."""
        return int(
            self.result.stats.get(f"stage_cache_hit_{UNIT_STAGE}", 0)
        )

    def report(self) -> dict[str, Any]:
        """A JSON-friendly summary (CLI ``--reuse-from``, benchmarks)."""
        return {
            "unchanged_stages": list(self.unchanged_stages),
            "invalidated_stages": list(self.invalidated_stages),
            "full_reuse": self.full_reuse,
            "stage_cache_hits": self.stage_cache_hits,
            "stage_cache_misses": self.stage_cache_misses,
            "unit_cache_hits": self.unit_cache_hits,
            "elapsed_seconds": self.result.elapsed_seconds,
            "candidates": len(self.result.candidates),
        }


def rediscover(
    previous: "DiscoveryResult | Rediscovery | Mapping[str, str] | None",
    scenario: Scenario,
    tracer=None,
) -> Rediscovery:
    """Re-run discovery for an edited scenario, reusing cached stages.

    ``previous`` supplies the baseline stage fingerprints to compare
    against — the previous run's :class:`DiscoveryResult` (or its
    ``stage_fingerprints`` mapping, which is all that needs persisting),
    or ``None`` to just run warm and report this run's fingerprints. The
    actual reuse comes from the process-wide stage cache, so the previous
    run must have executed in this process for the speedup to
    materialise; the *report* is correct either way.
    """
    result = scenario.run(tracer=tracer)
    return Rediscovery(result, _previous_fingerprints(previous))


def rediscover_many(
    previous: Mapping[str, "DiscoveryResult | Mapping[str, str]"],
    scenarios: list[Scenario],
) -> list[tuple[str, Rediscovery]]:
    """Serially :func:`rediscover` each scenario against its previous run.

    ``previous`` maps ``scenario_id`` to the earlier result (missing ids
    run warm with an empty baseline). Serial on purpose: the reuse lives
    in this process's stage cache, which worker processes would not see.
    """
    outcomes: list[tuple[str, Rediscovery]] = []
    for scenario in scenarios:
        outcomes.append(
            (
                scenario.scenario_id,
                rediscover(previous.get(scenario.scenario_id), scenario),
            )
        )
    return outcomes


__all__ = [
    "Rediscovery",
    "rediscover",
    "rediscover_many",
    "STAGE_NAMES",
]
