"""The disk-backed, content-addressed stage-artifact store.

This is the persistence tier under the in-memory caches: the engine's
:class:`~repro.discovery.engine.cache.StageCache` and the service's
:class:`~repro.service.cache.ResultCache` both key on
``(stage, fingerprint)`` pairs whose fingerprints cover *content* — so a
cached artifact is valid for any process, on any day, as long as the
code that wrote it still produces the same artifact for the same
fingerprint. :class:`PersistentStageStore` turns that property into
shared warm state: CLI runs, ``discover_many`` workers, service worker
processes, and restarts all read and write one directory of
fingerprint-named entry files.

Durability and correctness rules (production posture):

* **Atomic writes.** Every entry is written to a ``tempfile`` in the
  destination directory and published with ``os.replace`` — readers
  never observe a half-written entry, and two processes racing to write
  the same fingerprint both leave a complete entry behind (last replace
  wins; both are correct by content-addressing).
* **Versioned entries.** Every entry embeds
  ``(STORE_FORMAT, STORE_VERSION, stage, fingerprint)``; an entry
  written by an older/newer store format, or landing under the wrong
  path, reads as a miss — never as a wrong artifact.
* **Corruption degrades to a miss.** Truncated, garbage, or unpicklable
  entry files return ``None`` (counted in
  ``stage_cache_disk_errors``), and the engine recomputes and
  overwrites them. The store must never turn a bad disk into a crash.

Activation: the store is off unless a cache directory is named — by
``DiscoveryOptions(cache_dir=...)`` (a per-run contextvar override, see
:func:`cache_dir_override`), by :func:`configure` (process-wide: the
service and CLI install their ``--cache-dir`` here), or by the
``REPRO_CACHE_DIR`` environment variable (lowest precedence; how forked
service workers and CI jobs inherit one). ``repro.perf.clear_caches()``
clears the active store along with the in-memory tiers.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import threading
from contextlib import contextmanager
from contextvars import ContextVar
from pathlib import Path
from typing import Any, Iterator

from repro.perf import counters as perf_counters

#: Magic string stamped into every entry file.
STORE_FORMAT = "repro-stage-store"

#: Bump on any change that invalidates previously written artifacts
#: (artifact dataclass shape, fingerprint conventions, pickling layout).
#: Entries carrying a different version read as misses.
STORE_VERSION = 1

#: Environment variable naming a default cache directory (lowest
#: precedence; see :func:`active_cache_dir`).
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: File suffix of entry files (anything else in the tree is ignored).
ENTRY_SUFFIX = ".entry"


def _safe_segment(name: str) -> str:
    """A filesystem-safe directory segment for a stage name.

    Collisions (``a.b`` vs ``a_b``) are harmless: the entry header
    records the true stage name and :meth:`PersistentStageStore.get`
    verifies it, so a colliding read degrades to a miss.
    """
    return "".join(
        ch if ch.isalnum() or ch in "_-" else "_" for ch in name
    ) or "_"


class PersistentStageStore:
    """One cache directory of ``(stage, fingerprint)`` entry files.

    Layout: ``<root>/<stage>/<fp[:2]>/<fp>.entry`` — the two-hex-char
    shard keeps directories small under millions of entries. Instances
    are cheap; :func:`store_for` keeps one per resolved directory.
    """

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def entry_path(self, stage: str, fingerprint: str) -> Path:
        shard = fingerprint[:2] if len(fingerprint) >= 2 else "__"
        return (
            self.root
            / _safe_segment(stage)
            / shard
            / f"{fingerprint}{ENTRY_SUFFIX}"
        )

    # ------------------------------------------------------------------
    # Read
    # ------------------------------------------------------------------
    def get(self, stage: str, fingerprint: str) -> Any | None:
        """The stored artifact, or ``None`` (absent/corrupt/stale-format).

        Never raises for a bad entry: any failure to read, unpickle, or
        validate is counted (``stage_cache_disk_errors``) and reported
        as a miss, so callers recompute and overwrite.
        """
        path = self.entry_path(stage, fingerprint)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError:
            perf_counters.record("stage_cache_disk_errors")
            return None
        try:
            entry = pickle.loads(raw)
            fmt, version, entry_stage, entry_fp, artifact = entry
        except Exception:
            # Truncated write, garbage bytes, or an artifact class this
            # code no longer defines — all equally "not a cache entry".
            perf_counters.record("stage_cache_disk_errors")
            return None
        if (
            fmt != STORE_FORMAT
            or version != STORE_VERSION
            or entry_stage != stage
            or entry_fp != fingerprint
        ):
            perf_counters.record("stage_cache_disk_stale")
            return None
        return artifact

    # ------------------------------------------------------------------
    # Write
    # ------------------------------------------------------------------
    def put(self, stage: str, fingerprint: str, artifact: Any) -> bool:
        """Atomically publish one entry; ``False`` on any failure.

        The payload is staged in a ``tempfile`` in the destination
        directory and moved into place with ``os.replace``, so
        concurrent writers (threads or processes) can never leave a
        torn entry — the loser of the race simply overwrites the winner
        with an identical-by-content artifact.
        """
        try:
            payload = pickle.dumps(
                (STORE_FORMAT, STORE_VERSION, stage, fingerprint, artifact),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception:
            perf_counters.record("stage_cache_disk_write_errors")
            return False
        path = self.entry_path(stage, fingerprint)
        tmp_name: str | None = None
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                prefix=".tmp-", dir=str(path.parent)
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
                tmp_name = None
            finally:
                if tmp_name is not None:
                    os.unlink(tmp_name)
        except OSError:
            perf_counters.record("stage_cache_disk_write_errors")
            return False
        perf_counters.record("stage_cache_disk_writes")
        return True

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        """Delete every entry file; returns how many were removed.

        Leaves the directory tree in place (other processes may hold
        it open as their cache dir) and ignores races with concurrent
        writers — an entry published mid-clear simply survives.
        """
        removed = 0
        for path in self._entry_files():
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def stats(self) -> dict[str, int]:
        """Entry counts by stage directory plus a total (diagnostics)."""
        per_stage: dict[str, int] = {}
        total = 0
        for path in self._entry_files():
            stage_dir = path.parent.parent.name
            per_stage[stage_dir] = per_stage.get(stage_dir, 0) + 1
            total += 1
        per_stage["entries"] = total
        return per_stage

    def _entry_files(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        yield from self.root.glob(f"*/*/*{ENTRY_SUFFIX}")

    def __len__(self) -> int:
        return sum(1 for _ in self._entry_files())


# ---------------------------------------------------------------------------
# Active-store resolution
# ---------------------------------------------------------------------------
_CONFIGURED_DIR: str | None = None

_OVERRIDE_DIR: ContextVar[str | None] = ContextVar(
    "repro_persist_cache_dir", default=None
)

_STORES: dict[str, PersistentStageStore] = {}
_STORES_LOCK = threading.Lock()


def configure(cache_dir: str | os.PathLike | None) -> None:
    """Install (or with ``None``, remove) the process-wide cache dir.

    The service and the CLI put their ``--cache-dir`` here so every
    discovery in the process — including job-queue worker threads —
    shares the disk tier without per-call plumbing.
    """
    global _CONFIGURED_DIR
    _CONFIGURED_DIR = None if cache_dir is None else str(cache_dir)


def configured_dir() -> str | None:
    """The process-wide cache dir installed by :func:`configure`."""
    return _CONFIGURED_DIR


@contextmanager
def cache_dir_override(
    cache_dir: str | os.PathLike | None,
) -> Iterator[None]:
    """Use ``cache_dir`` for the block's dynamic extent.

    This is how ``DiscoveryOptions(cache_dir=...)`` activates the disk
    tier for one run: contextvar-scoped, so concurrent service jobs
    with different settings never see each other's directory.
    """
    token = _OVERRIDE_DIR.set(
        None if cache_dir is None else str(cache_dir)
    )
    try:
        yield
    finally:
        _OVERRIDE_DIR.reset(token)


def active_cache_dir() -> str | None:
    """The cache dir in effect: override > configured > environment."""
    override = _OVERRIDE_DIR.get()
    if override is not None:
        return override
    if _CONFIGURED_DIR is not None:
        return _CONFIGURED_DIR
    return os.environ.get(CACHE_DIR_ENV) or None


def store_for(cache_dir: str | os.PathLike) -> PersistentStageStore:
    """The (shared) store instance for ``cache_dir``."""
    key = str(Path(cache_dir))
    with _STORES_LOCK:
        store = _STORES.get(key)
        if store is None:
            store = PersistentStageStore(key)
            _STORES[key] = store
        return store


def active_store() -> PersistentStageStore | None:
    """The store for the active cache dir, or ``None`` when disabled."""
    cache_dir = active_cache_dir()
    if cache_dir is None:
        return None
    return store_for(cache_dir)


def clear_active_store() -> None:
    """Drop every entry of the active store (``perf.clear_caches``)."""
    store = active_store()
    if store is not None:
        store.clear()
