"""Typed, frozen artifacts — one per stage of the discovery pipeline.

Each artifact is the complete output of one stage, stamped with the
content-addressed ``fingerprint`` of the stage's *input* (see
:func:`repro.discovery.fingerprint.stage_fingerprint`): upstream
artifact fingerprints chained with the options subset the stage reads.
Equal fingerprint ⇒ equal artifact, which is what lets the
:class:`~repro.discovery.engine.cache.StageCache` substitute a cached
artifact for a recomputation without changing any output byte.

Three stages — source search, pair filtering, and translation — execute
*fused* (the paper's tiered fallback gates each source-CSG tier on
whether candidate emission succeeded, so the stages cannot be separated
by barriers without changing behaviour; see ``docs/architecture.md``).
Their artifacts are still materialised individually, and the fused
block's real reuse granularity is the per-target
:class:`SourceSearchUnit`: everything one target CSG's search produced
— candidates, surviving pairs, notes, eliminations — replayable in
order for byte-identical warm output.

Payloads are immutable (tuples of frozen dataclasses, strings, and the
frozen query/candidate objects), so artifacts may be shared freely
across threads and runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.correspondences import LiftedCorrespondence
from repro.discovery.csg import CSG
from repro.discovery.ranking import CandidateScore
from repro.mappings.expression import MappingCandidate


@dataclass(frozen=True)
class LiftedCorrespondences:
    """Stage ``lift``: correspondences lifted to marked CM class nodes."""

    fingerprint: str
    items: tuple[LiftedCorrespondence, ...]


@dataclass(frozen=True)
class TargetCSGSet:
    """Stage ``target_csgs``: the target-side CSGs (Cases A and B)."""

    fingerprint: str
    csgs: tuple[CSG, ...]


@dataclass(frozen=True)
class PairRecord:
    """One CSG pair that survived the compatibility filters."""

    source_csg: str
    target_csg: str
    reversals: int
    candidates: int


@dataclass(frozen=True)
class SourceSearchUnit:
    """One target CSG's complete search outcome (the fused block's unit).

    ``considered`` lists every source CSG examined as ``(tier, text)``
    rows (tier ``"functional"`` or ``"lossy"``); ``scored`` carries the
    emitted candidates with their rank scores in emission order, which
    the stable rank sort depends on. ``notes`` and ``eliminations`` are
    replayed verbatim on a cache hit so warm runs stay byte-identical.
    """

    fingerprint: str
    target_csg: str
    considered: tuple[tuple[str, str], ...]
    pairs: tuple[PairRecord, ...]
    scored: tuple[tuple[CandidateScore, MappingCandidate], ...]
    notes: tuple[str, ...]
    eliminations: tuple[str, ...]


@dataclass(frozen=True)
class SourceCSGSet:
    """Stage ``source_search``: per-target units with every CSG examined."""

    fingerprint: str
    units: tuple[SourceSearchUnit, ...]


@dataclass(frozen=True)
class CompatiblePairs:
    """Stage ``pair_filter``: surviving pairs plus the elimination log."""

    fingerprint: str
    pairs: tuple[PairRecord, ...]
    eliminations: tuple[str, ...]


@dataclass(frozen=True)
class TranslatedCandidates:
    """Stage ``translate``: scored candidates in emission order."""

    fingerprint: str
    scored: tuple[tuple[CandidateScore, MappingCandidate], ...]
    notes: tuple[str, ...]


@dataclass(frozen=True)
class RankedResult:
    """Stage ``rank``: the final ordered candidate list plus diagnostics.

    Carries ``notes`` and ``eliminations`` so a full-pipeline cache hit
    can reconstruct a complete :class:`DiscoveryResult` without running
    any stage.
    """

    fingerprint: str
    candidates: tuple[MappingCandidate, ...]
    notes: tuple[str, ...]
    eliminations: tuple[str, ...]
