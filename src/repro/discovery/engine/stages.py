"""The staged semantic-discovery engine (the pipeline of Section 3).

:class:`SemanticEngine` runs the algorithm as six explicit stages —
:data:`STAGE_NAMES` — each producing one typed artifact
(:mod:`repro.discovery.engine.artifacts`) stamped with a
content-addressed fingerprint. ``SemanticMapper`` is a thin orchestrator
over this engine; the engine owns the stage graph, the perf phases, the
trace spans, and the :class:`~repro.discovery.engine.cache.StageCache`
interaction.

Stage vocabulary discipline: every per-stage perf phase
(``time_<stage>_s`` in ``DiscoveryResult.stats``), every top-level trace
span, and every service phase metric derives from the *same*
:data:`STAGE_NAMES` constant — the three vocabularies cannot drift (a
test pins them identical).

Fused execution
---------------
``source_search``, ``pair_filter``, and ``translate`` execute as one
fused per-target loop: the paper's tiered fallback (full functional
trees → lossy extension → split across partial trees) decides whether to
try the next tier based on whether candidate *emission* — which runs the
pair filters and the translation — produced results for the previous
tier. Separating the stages with barriers would change which tiers run
and therefore the output. The three artifacts are still materialised
(post hoc) with their own fingerprints; the fused block's reuse
granularity is the per-target :class:`SourceSearchUnit`, keyed by the
target CSG's content plus the correspondences relevant to it — this is
what makes a one-correspondence edit cheap: every unaffected target's
unit replays from cache.

Caching discipline: the stage cache is consulted only when the perf
layer is enabled, the run is untraced (a tracer wants the real spans
and prune events, so cached fast paths are bypassed), and the run's
``stage_cache_size`` is non-zero. Cold runs are byte-identical to the
pre-engine pipeline; warm runs replay recorded notes/eliminations in
order, so they are byte-identical too.
"""

from __future__ import annotations

import itertools
from typing import Any

from repro.correspondences import CorrespondenceSet, LiftedCorrespondence
from repro.discovery.compatibility import (
    ConnectionProfile,
    compatibility_violation,
)
from repro.discovery.csg import (
    CSG,
    extend_partial_trees,
    find_source_functional_csgs,
    find_target_csgs,
)
from repro.discovery.engine.artifacts import (
    CompatiblePairs,
    LiftedCorrespondences,
    PairRecord,
    RankedResult,
    SourceCSGSet,
    SourceSearchUnit,
    TargetCSGSet,
    TranslatedCandidates,
)
from repro.discovery.engine.cache import StageCache, stage_cache
from repro.discovery.fingerprint import (
    csg_content_key,
    semantics_content_key,
    stage_fingerprint,
)
from repro.discovery.options import DiscoveryOptions
from repro.discovery.ranking import CandidateScore, origin_rank
from repro.discovery.steiner import CostModel, direction_reversals
from repro.discovery.translate import translate_csg
from repro.exceptions import DiscoveryError
from repro.mappings.expression import (
    MappingCandidate,
    deduplicate_candidates,
    trim_redundant_joins,
)
from repro.mappings.refinement import optional_tables
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters

#: The semantic pipeline's stages, in execution order. This tuple is the
#: single source of the stage vocabulary: perf phases (and therefore the
#: ``time_<stage>_s`` stats keys), top-level trace span names, and the
#: service's phase metrics all derive from it.
STAGE_NAMES = (
    "lift",
    "target_csgs",
    "source_search",
    "pair_filter",
    "translate",
    "rank",
)

#: The Clio/RIC baseline runs as a single adapter stage.
CLIO_STAGE_NAMES = ("clio",)

#: The cache key name of the fused block's per-target units.
UNIT_STAGE = "source_search.unit"

#: The :class:`DiscoveryOptions` fields each stage's output depends on.
#: Fields *not* listed for a stage must never change its artifact;
#: ``explain`` / ``trace`` / cache sizing / ``distance_oracle`` are
#: deliberately absent everywhere (observability and output-neutral
#: search guidance must not invalidate caches).
STAGE_OPTION_FIELDS: dict[str, tuple[str, ...]] = {
    "lift": (),
    "target_csgs": (),
    "source_search": ("max_path_edges",),
    "pair_filter": (
        "use_cardinality_filter",
        "use_disjointness_filter",
        "use_partof_filter",
    ),
    "translate": (),
    "rank": (),
}


def time_stat_key(stage: str) -> str:
    """The ``DiscoveryResult.stats`` key of one stage's wall time."""
    return f"time_{stage}_s"


class EngineOutcome:
    """What one engine run hands back to the orchestrator."""

    __slots__ = ("candidates", "stage_fingerprints", "full_hit")

    def __init__(
        self,
        candidates: list[MappingCandidate],
        stage_fingerprints: dict[str, str],
        full_hit: bool = False,
    ) -> None:
        self.candidates = candidates
        self.stage_fingerprints = stage_fingerprints
        self.full_hit = full_hit


class SemanticEngine:
    """One run of the staged pipeline over a fixed scenario."""

    def __init__(
        self,
        source_semantics,
        target_semantics,
        correspondences: CorrespondenceSet,
        options: DiscoveryOptions,
        source_reasoner,
        target_reasoner,
        tracer,
    ) -> None:
        self.source_semantics = source_semantics
        self.target_semantics = target_semantics
        self.correspondences = correspondences
        self.options = options
        self._source_reasoner = source_reasoner
        self._target_reasoner = target_reasoner
        self._tracer = tracer

    # ------------------------------------------------------------------
    # Fingerprints
    # ------------------------------------------------------------------
    def _options_subset(self, stage: str) -> tuple[tuple[str, Any], ...]:
        return tuple(
            (name, getattr(self.options, name))
            for name in STAGE_OPTION_FIELDS[stage]
        )

    def stage_fingerprints(self) -> dict[str, str]:
        """Every stage's input fingerprint, chained in pipeline order."""
        source_key = semantics_content_key(self.source_semantics)
        target_key = semantics_content_key(self.target_semantics)
        correspondence_key = tuple(str(c) for c in self.correspondences)
        fingerprints: dict[str, str] = {}
        upstream = stage_fingerprint(
            "lift",
            source_key,
            target_key,
            correspondence_key,
            self._options_subset("lift"),
        )
        fingerprints["lift"] = upstream
        for stage in STAGE_NAMES[1:]:
            upstream = stage_fingerprint(
                stage, upstream, self._options_subset(stage)
            )
            fingerprints[stage] = upstream
        return fingerprints

    def _unit_fingerprint(
        self,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
    ) -> str:
        """One fused-block unit's identity: target CSG × relevant items.

        Deliberately independent of the *other* correspondences and
        target CSGs, so a one-correspondence edit leaves every
        unaffected target's unit fingerprint — and cache entry — intact.
        """
        return stage_fingerprint(
            UNIT_STAGE,
            semantics_content_key(self.source_semantics),
            semantics_content_key(self.target_semantics),
            csg_content_key(target_csg),
            tuple(str(item) for item in relevant),
            self._options_subset("source_search"),
            self._options_subset("pair_filter"),
            self._options_subset("translate"),
        )

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def _cache(self) -> StageCache | None:
        """The stage cache, or ``None`` when this run must bypass it.

        Bypassed when the perf layer is disabled (the seed path must
        recompute everything), when a tracer is recording (spans and
        prune events must come from real execution), or when the run
        disabled it via ``stage_cache_size=0``.
        """
        if not perf_config.enabled():
            return None
        if self._tracer.enabled:
            return None
        size = perf_config.cache_size("stage")
        if size is not None and size <= 0:
            return None
        return stage_cache()

    def run(
        self, notes: list[str], eliminations: list[str]
    ) -> EngineOutcome:
        fingerprints = self.stage_fingerprints()
        cache = self._cache()
        if cache is not None:
            ranked = cache.get("rank", fingerprints["rank"])
            if ranked is not None:
                notes.extend(ranked.notes)
                eliminations.extend(ranked.eliminations)
                return EngineOutcome(
                    list(ranked.candidates), fingerprints, full_hit=True
                )
        lifted = self._lift(fingerprints, cache)
        if not lifted.items:
            raise DiscoveryError("no correspondences to interpret")
        targets = self._target_csgs(fingerprints, cache, lifted)
        scored = self._fused_search(
            fingerprints, cache, lifted, targets, notes, eliminations
        )
        candidates = self._rank(
            fingerprints, cache, scored, notes, eliminations
        )
        return EngineOutcome(candidates, fingerprints)

    # ------------------------------------------------------------------
    # Stage 1: lift
    # ------------------------------------------------------------------
    def _lift(
        self, fingerprints: dict[str, str], cache: StageCache | None
    ) -> LiftedCorrespondences:
        with perf_counters.phase("lift"), self._tracer.span("lift") as span:
            artifact = (
                cache.get("lift", fingerprints["lift"])
                if cache is not None
                else None
            )
            if artifact is None:
                items = tuple(
                    self.correspondences.lift(
                        self.source_semantics, self.target_semantics
                    )
                )
                artifact = LiftedCorrespondences(fingerprints["lift"], items)
                if cache is not None:
                    cache.put("lift", fingerprints["lift"], artifact)
            span.set("correspondences", len(artifact.items))
        return artifact

    # ------------------------------------------------------------------
    # Stage 2: target CSGs
    # ------------------------------------------------------------------
    def _target_csgs(
        self,
        fingerprints: dict[str, str],
        cache: StageCache | None,
        lifted: LiftedCorrespondences,
    ) -> TargetCSGSet:
        with perf_counters.phase("target_csgs"), self._tracer.span(
            "target_csgs"
        ) as span:
            artifact = (
                cache.get("target_csgs", fingerprints["target_csgs"])
                if cache is not None
                else None
            )
            if artifact is None:
                csgs = tuple(
                    find_target_csgs(self.target_semantics, lifted.items)
                )
                artifact = TargetCSGSet(fingerprints["target_csgs"], csgs)
                if cache is not None:
                    cache.put(
                        "target_csgs", fingerprints["target_csgs"], artifact
                    )
            span.set("found", len(artifact.csgs))
        return artifact

    # ------------------------------------------------------------------
    # Stages 3-5 (fused): source search, pair filter, translate
    # ------------------------------------------------------------------
    def _fused_search(
        self,
        fingerprints: dict[str, str],
        cache: StageCache | None,
        lifted: LiftedCorrespondences,
        targets: TargetCSGSet,
        notes: list[str],
        eliminations: list[str],
    ) -> list[tuple[CandidateScore, MappingCandidate]]:
        scored: list[tuple[CandidateScore, MappingCandidate]] = []
        units: list[SourceSearchUnit] = []
        with perf_counters.phase("source_search"):
            for target_csg in targets.csgs:
                relevant = tuple(
                    item
                    for item in lifted.items
                    if item.target_class in target_csg.marked_classes()
                )
                if not relevant:
                    continue
                with self._tracer.span(
                    "source_search",
                    target=str(target_csg.anchor),
                    origin=target_csg.origin,
                ) as span:
                    unit_key = self._unit_fingerprint(target_csg, relevant)
                    unit = (
                        cache.get(UNIT_STAGE, unit_key)
                        if cache is not None
                        else None
                    )
                    if unit is None:
                        unit = self._run_unit(unit_key, target_csg, relevant)
                        if cache is not None:
                            cache.put(UNIT_STAGE, unit_key, unit)
                    span.set("candidates", len(unit.scored))
                notes.extend(unit.notes)
                eliminations.extend(unit.eliminations)
                scored.extend(unit.scored)
                units.append(unit)
        if cache is not None:
            cache.put(
                "source_search",
                fingerprints["source_search"],
                SourceCSGSet(fingerprints["source_search"], tuple(units)),
            )
            cache.put(
                "pair_filter",
                fingerprints["pair_filter"],
                CompatiblePairs(
                    fingerprints["pair_filter"],
                    tuple(
                        pair for unit in units for pair in unit.pairs
                    ),
                    tuple(eliminations),
                ),
            )
            cache.put(
                "translate",
                fingerprints["translate"],
                TranslatedCandidates(
                    fingerprints["translate"], tuple(scored), tuple(notes)
                ),
            )
        return scored

    def _run_unit(
        self,
        fingerprint: str,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
    ) -> SourceSearchUnit:
        """The per-target tiered search (Section 3.3's fallback ladder)."""
        notes: list[str] = []
        eliminations: list[str] = []
        considered: list[tuple[str, str]] = []
        pairs: list[PairRecord] = []
        marked_sources = {item.source_class for item in relevant}
        with self._tracer.span("functional_csgs") as span:
            functional = find_source_functional_csgs(
                self.source_semantics, relevant, target_csg
            )
            span.set("found", len(functional))
        considered.extend(("functional", str(csg)) for csg in functional)
        full = [
            csg
            for csg in functional
            if csg.marked_classes() >= marked_sources
        ]
        results: list[tuple[CandidateScore, MappingCandidate]] = []
        if full:
            for source_csg in full:
                results.extend(
                    self._emit(
                        source_csg, target_csg, relevant, eliminations, pairs
                    )
                )
            if results:
                return self._unit(
                    fingerprint, target_csg, considered, pairs, results,
                    notes, eliminations,
                )
            notes.append(
                f"{target_csg}: functional trees found but all pairs "
                f"incompatible"
            )
        # Lossy fallback (Section 3.3): extend partial functional trees
        # (including Case A.1's anchored partial trees) with minimally
        # lossy attachment paths to the remaining marked classes.
        cost_model = CostModel.from_edges(
            self.source_semantics.preselected_cm_edges(
                [item.correspondence.source for item in relevant]
            )
        )
        with self._tracer.span("lossy_extension") as span:
            extended = extend_partial_trees(
                self.source_semantics,
                marked_sources,
                cost_model,
                extra_bases=tuple(functional),
            )
            span.set("found", len(extended))
        considered.extend(("lossy", str(csg)) for csg in extended)
        for source_csg in extended:
            results.extend(
                self._emit(
                    source_csg, target_csg, relevant, eliminations, pairs
                )
            )
        if results:
            return self._unit(
                fingerprint, target_csg, considered, pairs, results,
                notes, eliminations,
            )
        if extended:
            notes.append(
                f"{target_csg}: lossy extensions found but incompatible"
            )
        # Split: partially covering functional trees, one candidate each.
        for source_csg in functional:
            results.extend(
                self._emit(
                    source_csg, target_csg, relevant, eliminations, pairs
                )
            )
        if not results:
            notes.append(f"{target_csg}: no source connection found")
        return self._unit(
            fingerprint, target_csg, considered, pairs, results,
            notes, eliminations,
        )

    @staticmethod
    def _unit(
        fingerprint: str,
        target_csg: CSG,
        considered: list[tuple[str, str]],
        pairs: list[PairRecord],
        results: list[tuple[CandidateScore, MappingCandidate]],
        notes: list[str],
        eliminations: list[str],
    ) -> SourceSearchUnit:
        return SourceSearchUnit(
            fingerprint=fingerprint,
            target_csg=str(target_csg),
            considered=tuple(considered),
            pairs=tuple(pairs),
            scored=tuple(results),
            notes=tuple(notes),
            eliminations=tuple(eliminations),
        )

    # ------------------------------------------------------------------
    # Candidate emission (pair filter + translate, per CSG pair)
    # ------------------------------------------------------------------
    def _emit(
        self,
        source_csg: CSG,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
        eliminations: list[str],
        pairs: list[PairRecord],
    ) -> list[tuple[CandidateScore, MappingCandidate]]:
        covered = tuple(
            item
            for item in relevant
            if item.source_class in source_csg.marked_classes()
            and item.target_class in target_csg.marked_classes()
        )
        if not covered:
            return []
        with self._tracer.span("csg_pair") as span:
            if self._tracer.enabled:
                span.set("source", str(source_csg))
                span.set("target", str(target_csg))
            with perf_counters.phase("pair_filter"), self._tracer.span(
                "pair_filter"
            ):
                if not self._trees_consistent(source_csg, target_csg):
                    detail = (
                        f"{source_csg} ⇄ {target_csg}: inconsistent tree "
                        f"(disjointness)"
                    )
                    eliminations.append(detail)
                    self._tracer.prune(
                        phase="pair_filter",
                        rule="disjointness.tree",
                        source_csg=str(source_csg),
                        target_csg=str(target_csg),
                        detail=detail,
                    )
                    return []
                reversals = self._pair_compatible(
                    source_csg, target_csg, covered, eliminations
                )
            if reversals is None:
                return []
            with perf_counters.phase("translate"), self._tracer.span(
                "translate"
            ):
                source_queries = translate_csg(
                    source_csg, covered, "source", self.source_semantics
                )
                target_queries = translate_csg(
                    target_csg, covered, "target", self.target_semantics
                )
            results = []
            for source_query, target_query in itertools.product(
                source_queries, target_queries
            ):
                candidate = MappingCandidate(
                    source_query,
                    target_query,
                    tuple(item.correspondence for item in covered),
                    method="semantic",
                    notes=f"{source_csg.origin}→{target_csg.origin}",
                    source_optional_tables=optional_tables(
                        source_query, source_csg, self.source_semantics
                    ),
                )
                score = CandidateScore(
                    covered=len(covered),
                    reversals=reversals,
                    tree_size=len(source_csg.tree.nodes())
                    + len(target_csg.tree.nodes()),
                    preselected=0,
                    origin_rank=origin_rank(source_csg.origin),
                    anchor_rank=self._anchor_rank(source_csg, target_csg),
                )
                results.append((score, candidate))
            span.set("candidates", len(results))
        pairs.append(
            PairRecord(
                source_csg=str(source_csg),
                target_csg=str(target_csg),
                reversals=reversals,
                candidates=len(results),
            )
        )
        return results

    def _anchor_rank(self, source_csg: CSG, target_csg: CSG) -> int:
        """Section 3.3's reified-anchor preference (0 = anchors agree).

        A target tree rooted at a reified relationship prefers a source
        tree rooted at a reified relationship of compatible arity and
        connection category; mismatched kinds rank behind.
        """
        from repro.discovery.compatibility import (
            AnchorProfile,
            anchors_compatible,
        )

        source_root = source_csg.anchor.cm_node
        target_root = target_csg.anchor.cm_node
        source_reified = self.source_semantics.graph.is_reified(source_root)
        target_reified = self.target_semantics.graph.is_reified(target_root)
        if not target_reified:
            return 0
        if not source_reified:
            self._tracer.prune(
                phase="rank",
                rule="anchor",
                source_csg=str(source_csg),
                target_csg=str(target_csg),
                detail=(
                    f"{source_csg} ranked behind: plain source anchor "
                    f"for reified target anchor {target_root}"
                ),
            )
            return 1
        source_profile = AnchorProfile.of_reified(
            self._source_reasoner, source_root
        )
        target_profile = AnchorProfile.of_reified(
            self._target_reasoner, target_root
        )
        if anchors_compatible(source_profile, target_profile):
            return 0
        self._tracer.prune(
            phase="rank",
            rule="anchor",
            source_csg=str(source_csg),
            target_csg=str(target_csg),
            detail=(
                f"{source_csg} ranked behind: reified anchors disagree "
                f"in arity/category ({source_root} vs {target_root})"
            ),
        )
        return 1

    def _trees_consistent(self, source_csg: CSG, target_csg: CSG) -> bool:
        if not self.options.use_disjointness_filter:
            return True
        return self._source_reasoner.tree_is_consistent(
            list(source_csg.cm_edges())
        ) and self._target_reasoner.tree_is_consistent(
            list(target_csg.cm_edges())
        )

    def _pair_compatible(
        self,
        source_csg: CSG,
        target_csg: CSG,
        covered: tuple[LiftedCorrespondence, ...],
        eliminations: list[str],
    ) -> int | None:
        """Check pairwise connection compatibility; return total reversals.

        ``None`` signals an incompatible pair (candidate eliminated).
        """
        total_reversals = 0
        options = self.options
        for first, second in itertools.combinations(covered, 2):
            if (
                first.source_class == second.source_class
                and first.target_class == second.target_class
            ):
                continue
            source_path = self._path(
                source_csg, first.source_class, second.source_class
            )
            target_path = self._path(
                target_csg, first.target_class, second.target_class
            )
            if options.use_disjointness_filter:
                if not self._source_reasoner.path_is_consistent(
                    list(source_path)
                ):
                    detail = (
                        f"{source_csg}: inconsistent source path "
                        f"{first.source_class}–{second.source_class}"
                    )
                    eliminations.append(detail)
                    self._tracer.prune(
                        phase="pair_filter",
                        rule="disjointness.path",
                        source_csg=str(source_csg),
                        target_csg=str(target_csg),
                        detail=detail,
                    )
                    return None
                if not self._target_reasoner.path_is_consistent(
                    list(target_path)
                ):
                    detail = (
                        f"{target_csg}: inconsistent target path "
                        f"{first.target_class}–{second.target_class}"
                    )
                    eliminations.append(detail)
                    self._tracer.prune(
                        phase="pair_filter",
                        rule="disjointness.path",
                        source_csg=str(source_csg),
                        target_csg=str(target_csg),
                        detail=detail,
                    )
                    return None
            source_profile = ConnectionProfile.of_path(source_path)
            target_profile = ConnectionProfile.of_path(target_path)
            violation = compatibility_violation(
                source_profile,
                target_profile,
                check_cardinality=options.use_cardinality_filter,
                check_semantic_type=options.use_partof_filter,
            )
            if violation is not None:
                detail = (
                    f"{source_csg} ⇄ {target_csg}: "
                    f"{source_profile.category.value}/"
                    f"{source_profile.semantic_type.value} source vs "
                    f"{target_profile.category.value}/"
                    f"{target_profile.semantic_type.value} target "
                    f"({first.source_class}–{second.source_class})"
                )
                eliminations.append(detail)
                self._tracer.prune(
                    phase="pair_filter",
                    rule=violation,
                    source_csg=str(source_csg),
                    target_csg=str(target_csg),
                    detail=detail,
                )
                return None
            total_reversals += direction_reversals(source_path)
        return total_reversals

    @staticmethod
    def _path(csg: CSG, first: str, second: str):
        if first == second:
            return ()
        return csg.connecting_path(first, second)

    # ------------------------------------------------------------------
    # Stage 6: rank
    # ------------------------------------------------------------------
    def _rank(
        self,
        fingerprints: dict[str, str],
        cache: StageCache | None,
        scored: list[tuple[CandidateScore, MappingCandidate]],
        notes: list[str],
        eliminations: list[str],
    ) -> list[MappingCandidate]:
        with perf_counters.phase("rank"), self._tracer.span(
            "rank"
        ) as span:
            scored.sort(key=lambda pair: pair[0].sort_key())
            candidates = trim_redundant_joins(
                deduplicate_candidates(
                    [candidate for _, candidate in scored],
                    criterion="connection",
                )
            )
            span.set("scored", len(scored))
            span.set("kept", len(candidates))
            if self._tracer.explain:
                self._record_rank_provenance(scored, candidates)
        if cache is not None:
            cache.put(
                "rank",
                fingerprints["rank"],
                RankedResult(
                    fingerprints["rank"],
                    tuple(candidates),
                    tuple(notes),
                    tuple(eliminations),
                ),
            )
        return candidates

    def _record_rank_provenance(
        self,
        scored: list[tuple[CandidateScore, MappingCandidate]],
        candidates: list[MappingCandidate],
    ) -> None:
        """Attach each surviving candidate's score components to the trace."""
        scores = {id(candidate): score for score, candidate in scored}
        for rank, candidate in enumerate(candidates, start=1):
            score = scores.get(id(candidate))
            entry: dict[str, Any] = {
                "rank": rank,
                "candidate": candidate.notes,
                "covered_correspondences": len(candidate.covered),
            }
            if score is not None:
                entry.update(
                    covered=score.covered,
                    reversals=score.reversals,
                    anchor_rank=score.anchor_rank,
                    preselected=score.preselected,
                    tree_size=score.tree_size,
                    origin_rank=score.origin_rank,
                )
            self._tracer.rank(entry)
