"""The staged discovery engine: typed artifacts + content-addressed cache.

This package factors the discovery pipeline into explicit stages —
:data:`~repro.discovery.engine.stages.STAGE_NAMES` — each producing a
typed, frozen artifact stamped with a content-addressed fingerprint.
``SemanticMapper`` delegates here; the engine owns the stage graph, the
perf phase / trace span vocabulary (both derive from ``STAGE_NAMES``),
the bounded LRU :class:`StageCache`, and the per-target
:class:`SourceSearchUnit` reuse that makes incremental re-discovery
(:func:`repro.discovery.incremental.rediscover`) cheap.

See ``docs/architecture.md`` for the stage graph and caching rules.
"""

from repro.discovery.engine.artifacts import (
    CompatiblePairs,
    LiftedCorrespondences,
    PairRecord,
    RankedResult,
    SourceCSGSet,
    SourceSearchUnit,
    TargetCSGSet,
    TranslatedCandidates,
)
from repro.discovery.engine.cache import (
    StageCache,
    clear_stage_cache,
    stage_cache,
)
from repro.discovery.engine.persist import (
    STORE_VERSION,
    PersistentStageStore,
    active_store,
    cache_dir_override,
    clear_active_store,
    configure as configure_persistence,
    store_for,
)
from repro.discovery.engine.stages import (
    CLIO_STAGE_NAMES,
    STAGE_NAMES,
    STAGE_OPTION_FIELDS,
    EngineOutcome,
    SemanticEngine,
    time_stat_key,
)

__all__ = [
    "CLIO_STAGE_NAMES",
    "STAGE_NAMES",
    "STAGE_OPTION_FIELDS",
    "STORE_VERSION",
    "CompatiblePairs",
    "EngineOutcome",
    "LiftedCorrespondences",
    "PairRecord",
    "PersistentStageStore",
    "RankedResult",
    "SemanticEngine",
    "SourceCSGSet",
    "SourceSearchUnit",
    "StageCache",
    "TargetCSGSet",
    "TranslatedCandidates",
    "active_store",
    "cache_dir_override",
    "clear_active_store",
    "clear_stage_cache",
    "configure_persistence",
    "stage_cache",
    "store_for",
    "time_stat_key",
]
