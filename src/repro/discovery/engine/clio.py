"""The Clio/RIC baseline as a single-stage engine.

``DiscoveryOptions(engine="clio")`` routes a discovery run through the
schema-only baseline (:class:`repro.baseline.clio.RICBasedMapper`)
behind the *same* unified entry points as the semantic engine — library
``discover()``, batch, CLI (``--engine clio``), and the service wire
format (``{"options": {"engine": "clio"}}``). The baseline itself is
reused unchanged; this module only adapts it to the engine protocol: one
``clio`` stage (:data:`~repro.discovery.engine.stages.CLIO_STAGE_NAMES`)
with a perf phase, a trace span, a content-addressed fingerprint, and a
cacheable :class:`~repro.discovery.engine.artifacts.RankedResult`.
"""

from __future__ import annotations

from repro.discovery.engine.artifacts import RankedResult
from repro.discovery.engine.cache import stage_cache
from repro.discovery.engine.stages import EngineOutcome
from repro.discovery.fingerprint import (
    semantics_content_key,
    stage_fingerprint,
)
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters


def clio_fingerprint(source_semantics, target_semantics, correspondences) -> str:
    """The ``clio`` stage's input fingerprint (schemas enter via the
    semantics keys; the baseline reads no :class:`DiscoveryOptions`
    fields)."""
    return stage_fingerprint(
        "clio",
        semantics_content_key(source_semantics),
        semantics_content_key(target_semantics),
        tuple(str(c) for c in correspondences),
    )


def run_clio(
    source_semantics,
    target_semantics,
    correspondences,
    tracer,
    notes: list[str],
    eliminations: list[str],
) -> EngineOutcome:
    """Run the RIC baseline as one cached stage."""
    # Imported lazily: repro.baseline.clio imports the mapper module,
    # which imports this engine package.
    from repro.baseline.clio import RICBasedMapper

    fingerprint = clio_fingerprint(
        source_semantics, target_semantics, correspondences
    )
    fingerprints = {"clio": fingerprint}
    size = perf_config.cache_size("stage")
    use_cache = (
        perf_config.enabled()
        and not tracer.enabled
        and not (size is not None and size <= 0)
    )
    cache = stage_cache() if use_cache else None
    with perf_counters.phase("clio"), tracer.span("clio") as span:
        if cache is not None:
            ranked = cache.get("clio", fingerprint)
            if ranked is not None:
                notes.extend(ranked.notes)
                eliminations.extend(ranked.eliminations)
                span.set("candidates", len(ranked.candidates))
                return EngineOutcome(
                    list(ranked.candidates), fingerprints, full_hit=True
                )
        baseline = RICBasedMapper(
            source_semantics.schema,
            target_semantics.schema,
            correspondences,
        )
        result = baseline.discover()
        notes.extend(result.notes)
        eliminations.extend(result.eliminations)
        span.set("candidates", len(result.candidates))
        if cache is not None:
            cache.put(
                "clio",
                fingerprint,
                RankedResult(
                    fingerprint,
                    tuple(result.candidates),
                    tuple(result.notes),
                    tuple(result.eliminations),
                ),
            )
    return EngineOutcome(result.candidates, fingerprints)
