"""The bounded LRU stage cache behind incremental re-discovery.

One process-wide :class:`StageCache` holds the staged engine's
content-addressed artifacts (see
:mod:`repro.discovery.engine.artifacts`), keyed by ``(stage name,
fingerprint)``. Because fingerprints cover *content* — semantics,
correspondences, and the options subset each stage reads — the cache is
safely shared across scenarios, threads (service job workers), and
repeated ``discover()`` calls: a hit can only ever return the artifact
the stage would have recomputed.

The cache layers on :mod:`repro.perf`: it is bypassed entirely under
``perf.disabled()``, its entry bound comes from
``perf.config.cache_size("stage")`` (overridable per run through
``DiscoveryOptions.stage_cache_size``), its traffic lands in the perf
counters (``stage_cache_hits`` / ``stage_cache_misses`` plus per-stage
``stage_cache_hit_<stage>`` breakdowns), and ``perf.clear_caches()``
drops it alongside the other process-wide caches.

When a cache directory is active (``DiscoveryOptions(cache_dir=...)``,
``persist.configure``, or ``REPRO_CACHE_DIR`` — see
:mod:`repro.discovery.engine.persist`), the cache gains a disk tier: a
memory miss falls through to the content-addressed store (a disk hit is
promoted into memory and counted as ``stage_cache_disk_hit_<stage>``),
and every ``put`` writes through so other processes — CLI runs, batch
workers, pre-fork service siblings — can start warm.

The per-run entry bound is enforced on ``get`` as well as ``put``: a run
that shrinks ``stage_cache_size`` via ``perf.cache_size_overrides``
immediately drops entries above its bound instead of reading (and
pinning) artifacts an earlier, larger bound admitted.

Thread-safety: a single lock guards the ordered map. Artifacts are
frozen dataclasses of immutable payloads, so returning a shared
reference is safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.discovery.engine import persist
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters


class StageCache:
    """A thread-safe LRU map from ``(stage, fingerprint)`` to artifacts."""

    def __init__(self, capacity: int | None = None) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.Lock()

    def _bound(self) -> int | None:
        if self._capacity is not None:
            return self._capacity
        return perf_config.cache_size("stage")

    def _shrink_to(self, bound: int) -> None:
        """Evict LRU entries down to ``bound`` (caller holds the lock)."""
        while len(self._entries) > max(bound, 0):
            self._entries.popitem(last=False)

    def get(self, stage: str, fingerprint: str) -> Any | None:
        """The cached artifact, or ``None``; counts hit/miss traffic.

        Enforces the *current* entry bound before looking up: a shrunk
        per-run ``stage_cache_size`` override takes effect immediately,
        so the run can never read or hold entries above its bound.
        On a memory miss, the persistent disk tier (when active) is
        consulted; a disk hit is promoted into memory.
        """
        bound = self._bound()
        key = (stage, fingerprint)
        with self._lock:
            if bound is not None and len(self._entries) > bound:
                self._shrink_to(bound)
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
        if artifact is not None:
            perf_counters.record("stage_cache_hits")
            perf_counters.record(f"stage_cache_hit_{stage}")
            return artifact
        store = persist.active_store()
        if store is not None and (bound is None or bound > 0):
            artifact = store.get(stage, fingerprint)
            if artifact is not None:
                with self._lock:
                    self._entries[key] = artifact
                    self._entries.move_to_end(key)
                    if bound is not None:
                        self._shrink_to(bound)
                perf_counters.record("stage_cache_disk_hits")
                perf_counters.record(f"stage_cache_disk_hit_{stage}")
                return artifact
            perf_counters.record("stage_cache_disk_misses")
        perf_counters.record("stage_cache_misses")
        perf_counters.record(f"stage_cache_miss_{stage}")
        return None

    def put(self, stage: str, fingerprint: str, artifact: Any) -> None:
        bound = self._bound()
        if bound is not None and bound <= 0:
            return
        key = (stage, fingerprint)
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            if bound is not None:
                self._shrink_to(bound)
        store = persist.active_store()
        if store is not None:
            store.put(stage, fingerprint, artifact)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Current occupancy by stage name (diagnostics, not metrics)."""
        with self._lock:
            per_stage: dict[str, int] = {}
            for stage, _ in self._entries:
                per_stage[stage] = per_stage.get(stage, 0) + 1
            per_stage["entries"] = len(self._entries)
        return per_stage

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide stage cache shared by every engine run.
_SHARED = StageCache()


def stage_cache() -> StageCache:
    """The shared process-wide :class:`StageCache`."""
    return _SHARED


def clear_stage_cache() -> None:
    """Drop every cached stage artifact (see ``repro.perf.clear_caches``)."""
    _SHARED.clear()
