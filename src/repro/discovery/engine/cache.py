"""The bounded LRU stage cache behind incremental re-discovery.

One process-wide :class:`StageCache` holds the staged engine's
content-addressed artifacts (see
:mod:`repro.discovery.engine.artifacts`), keyed by ``(stage name,
fingerprint)``. Because fingerprints cover *content* — semantics,
correspondences, and the options subset each stage reads — the cache is
safely shared across scenarios, threads (service job workers), and
repeated ``discover()`` calls: a hit can only ever return the artifact
the stage would have recomputed.

The cache layers on :mod:`repro.perf`: it is bypassed entirely under
``perf.disabled()``, its entry bound comes from
``perf.config.cache_size("stage")`` (overridable per run through
``DiscoveryOptions.stage_cache_size``), its traffic lands in the perf
counters (``stage_cache_hits`` / ``stage_cache_misses`` plus per-stage
``stage_cache_hit_<stage>`` breakdowns), and ``perf.clear_caches()``
drops it alongside the other process-wide caches.

Thread-safety: a single lock guards the ordered map. Artifacts are
frozen dataclasses of immutable payloads, so returning a shared
reference is safe.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any

from repro.perf import config as perf_config
from repro.perf import counters as perf_counters


class StageCache:
    """A thread-safe LRU map from ``(stage, fingerprint)`` to artifacts."""

    def __init__(self, capacity: int | None = None) -> None:
        self._capacity = capacity
        self._entries: "OrderedDict[tuple[str, str], Any]" = OrderedDict()
        self._lock = threading.Lock()

    def _bound(self) -> int | None:
        if self._capacity is not None:
            return self._capacity
        return perf_config.cache_size("stage")

    def get(self, stage: str, fingerprint: str) -> Any | None:
        """The cached artifact, or ``None``; counts hit/miss traffic."""
        key = (stage, fingerprint)
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is not None:
                self._entries.move_to_end(key)
        if artifact is None:
            perf_counters.record("stage_cache_misses")
            perf_counters.record(f"stage_cache_miss_{stage}")
            return None
        perf_counters.record("stage_cache_hits")
        perf_counters.record(f"stage_cache_hit_{stage}")
        return artifact

    def put(self, stage: str, fingerprint: str, artifact: Any) -> None:
        bound = self._bound()
        if bound is not None and bound <= 0:
            return
        key = (stage, fingerprint)
        with self._lock:
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            if bound is not None:
                while len(self._entries) > bound:
                    self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        """Current occupancy by stage name (diagnostics, not metrics)."""
        with self._lock:
            per_stage: dict[str, int] = {}
            for stage, _ in self._entries:
                per_stage[stage] = per_stage.get(stage, 0) + 1
            per_stage["entries"] = len(self._entries)
        return per_stage

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: The process-wide stage cache shared by every engine run.
_SHARED = StageCache()


def stage_cache() -> StageCache:
    """The shared process-wide :class:`StageCache`."""
    return _SHARED


def clear_stage_cache() -> None:
    """Drop every cached stage artifact (see ``repro.perf.clear_caches``)."""
    _SHARED.clear()
