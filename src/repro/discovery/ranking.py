"""Ranking of mapping candidates.

The paper presents candidates to users for selection; ordering matters.
Preferences, in order: cover more correspondences; avoid lossy joins
(fewer direction reversals); use more pre-selected s-tree edges; be
compact (Occam — smaller trees); and prefer table-anchored CSGs over
constructed ones.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CandidateScore:
    """Sortable quality record attached to each candidate during discovery.

    ``anchor_rank`` carries Section 3.3's reified-anchor preference: 0
    when source and target anchors agree in kind (both reified with
    compatible arity/category, or both plain), 1 otherwise.
    """

    covered: int
    reversals: int
    tree_size: int
    preselected: int
    origin_rank: int
    anchor_rank: int = 0

    def sort_key(self) -> tuple:
        return (
            -self.covered,
            self.reversals,
            self.anchor_rank,
            -self.preselected,
            self.tree_size,
            self.origin_rank,
        )


_ORIGIN_RANKS = {"table": 0, "A.1": 1, "A.2": 2, "constructed": 3, "lossy": 4}


def origin_rank(origin: str) -> int:
    """Preference rank of a CSG origin label (lower is better)."""
    key = origin.split(":")[0]
    return _ORIGIN_RANKS.get(key, 5)
