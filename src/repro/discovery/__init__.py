"""The paper's core contribution: semantic mapping discovery."""

from repro.discovery.steiner import (
    CostModel,
    DiscoveredTree,
    direction_reversals,
    functional_tree_from_root,
    functional_trees_from_root,
    minimal_functional_trees,
    minimally_lossy_paths,
    simple_paths,
)
from repro.discovery.compatibility import (
    AnchorProfile,
    ConnectionProfile,
    anchors_compatible,
    compatibility_violation,
    connections_compatible,
    path_semantic_type,
)
from repro.discovery.options import (
    DEFAULT_OPTIONS,
    DiscoveryOptions,
    merge_legacy_kwargs,
)
from repro.discovery.csg import (
    CSG,
    csg_from_discovered,
    csg_from_table,
    discovered_to_semantic_tree,
    find_source_functional_csgs,
    find_source_lossy_csgs,
    find_target_csgs,
)
from repro.discovery.translate import (
    correspondence_variable,
    csg_to_cm_query,
    translate_csg,
)
from repro.discovery.ranking import CandidateScore, origin_rank
from repro.discovery.mapper import (
    DiscoveryResult,
    SemanticMapper,
    discover_mappings,
)
from repro.discovery.batch import (
    BatchDiscovery,
    BatchPolicy,
    BatchResult,
    Scenario,
    ScenarioFailure,
    discover_many,
    scenario_fingerprint,
    scenarios_for_cases,
)
from repro.discovery.engine import (
    CLIO_STAGE_NAMES,
    STAGE_NAMES,
    SemanticEngine,
    StageCache,
    clear_stage_cache,
    stage_cache,
)
from repro.discovery.fingerprint import (
    semantics_content_key,
    stage_fingerprint,
)
from repro.discovery.incremental import (
    Rediscovery,
    rediscover,
    rediscover_many,
)

__all__ = [
    "CostModel",
    "DiscoveredTree",
    "direction_reversals",
    "functional_tree_from_root",
    "functional_trees_from_root",
    "minimal_functional_trees",
    "minimally_lossy_paths",
    "simple_paths",
    "AnchorProfile",
    "ConnectionProfile",
    "anchors_compatible",
    "compatibility_violation",
    "connections_compatible",
    "path_semantic_type",
    "DEFAULT_OPTIONS",
    "DiscoveryOptions",
    "merge_legacy_kwargs",
    "CSG",
    "csg_from_discovered",
    "csg_from_table",
    "discovered_to_semantic_tree",
    "find_source_functional_csgs",
    "find_source_lossy_csgs",
    "find_target_csgs",
    "correspondence_variable",
    "csg_to_cm_query",
    "translate_csg",
    "CandidateScore",
    "origin_rank",
    "DiscoveryResult",
    "SemanticMapper",
    "discover_mappings",
    "BatchDiscovery",
    "BatchPolicy",
    "BatchResult",
    "Scenario",
    "ScenarioFailure",
    "discover_many",
    "scenario_fingerprint",
    "scenarios_for_cases",
    "CLIO_STAGE_NAMES",
    "STAGE_NAMES",
    "SemanticEngine",
    "StageCache",
    "clear_stage_cache",
    "stage_cache",
    "semantics_content_key",
    "stage_fingerprint",
    "Rediscovery",
    "rediscover",
    "rediscover_many",
]
