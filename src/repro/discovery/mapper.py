"""The end-to-end semantic mapping discovery pipeline (Section 3).

:class:`SemanticMapper` is a thin orchestrator: it validates inputs,
resolves the run's tracer and cache sizing, and delegates the algorithm
to the staged engine (:mod:`repro.discovery.engine`), which runs it as
six explicit stages:

1. **lift** the correspondences to marked class nodes in both CM graphs;
2. **target_csgs** — find target CSGs (Case A: a single pre-selected
   s-tree; Case B: constructed minimal functional trees);
3. **source_search** — for each target CSG, find source CSGs: Case A.1
   (anchored at the class corresponding to the target anchor), Case A.2
   (all minimal functional trees), and, when no functional tree covers
   the marked nodes and the target connection tolerates it, the
   Section 3.3 lossy path search; when even that fails, split the
   correspondences across partially covering trees;
4. **pair_filter** — filter CSG pairs by semantic compatibility
   (cardinality categories, partOf, ISA-disjointness consistency);
5. **translate** each surviving pair into table-level expressions by LAV
   rewriting;
6. **rank** the emitted :class:`MappingCandidate` objects.

Each stage yields a typed artifact stamped with a content-addressed
fingerprint (exposed on :attr:`DiscoveryResult.stage_fingerprints`), and
a bounded LRU stage cache makes repeated and *incremental* discovery
(:func:`repro.discovery.incremental.rediscover`) cheap — see
``docs/architecture.md``.

Tuning knobs live on one frozen
:class:`~repro.discovery.options.DiscoveryOptions` object shared by
every entry point (library, batch, CLI, service); the old per-knob
keyword arguments still work through a :class:`DeprecationWarning`
shim. ``DiscoveryOptions(engine="clio")`` routes the run through the
schema-only RIC baseline behind the same API. With
``DiscoveryOptions(explain=True)`` (or an externally activated
:class:`repro.trace.Tracer`) the run records a span tree of per-phase
wall times, a structured prune event for every candidate a semantic
filter rejected, and per-candidate rank provenance — all exposed on
:attr:`DiscoveryResult.trace`.
"""

from __future__ import annotations

import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro import trace as tracing
from repro.cm.reasoner import CMReasoner
from repro.correspondences import Correspondence, CorrespondenceSet
from repro.discovery.engine import persist
from repro.discovery.engine.clio import run_clio
from repro.discovery.engine.stages import EngineOutcome, SemanticEngine
from repro.discovery.options import DiscoveryOptions, merge_legacy_kwargs
from repro.mappings.expression import MappingCandidate, MappingSet
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters
from repro.semantics.lav import SchemaSemantics
from repro.trace.tracer import NOOP, NoopTracer, Tracer


@dataclass
class DiscoveryResult:
    """Ranked candidates plus run diagnostics.

    ``eliminations`` records CSG pairs removed by the semantic filters
    (with the responsible filter named) — the library-level analogue of
    the paper's interactive mapping debugging. With tracing/explain
    enabled, ``trace`` carries the structured counterpart: the span
    tree, the prune log, and per-candidate rank provenance (see
    :mod:`repro.trace`); ``rank_provenance`` mirrors the provenance
    entries for direct access.
    """

    candidates: list[MappingCandidate]
    elapsed_seconds: float
    notes: list[str] = field(default_factory=list)
    eliminations: list[str] = field(default_factory=list)
    correspondences: CorrespondenceSet | None = None
    #: Perf-layer instrumentation for this run: cache hit/miss counters,
    #: Dijkstra sweeps, paths pruned, and ``time_<phase>_s`` wall times
    #: (see ``repro.perf.counters`` for the counter vocabulary).
    stats: dict[str, int | float] = field(default_factory=dict)
    #: The trace document of this run (``Tracer.to_dict()``), or ``None``
    #: when the run was untraced.
    trace: dict[str, Any] | None = None
    #: Per-candidate score components, best first (explain mode only).
    rank_provenance: list[dict[str, Any]] = field(default_factory=list)
    #: Content-addressed input fingerprint of every engine stage (see
    #: ``repro.discovery.engine``); feeds incremental re-discovery,
    #: which compares these against a previous run's to report exactly
    #: which stages an edit invalidated.
    stage_fingerprints: dict[str, str] = field(default_factory=dict)
    #: Content-addressed fingerprint of the whole scenario (see
    #: :func:`repro.discovery.fingerprint.discovery_fingerprint`) —
    #: the same key the service result cache uses.
    fingerprint: str | None = None
    #: Caller-chosen scenario label, stamped by ``Scenario.run``.
    scenario_id: str | None = None

    @property
    def mappings(self) -> MappingSet:
        """The candidates as a first-class, provenance-stamped set.

        This is the artifact downstream consumers should hold on to:
        :func:`repro.mappings.algebra.compose` / ``invert`` /
        ``diff_candidates`` accept it, it serializes via the versioned
        ``repro-mappings/1`` format, and it carries the scenario
        fingerprint the result caches key on.
        """
        return MappingSet(
            candidates=tuple(self.candidates),
            fingerprint=self.fingerprint,
            scenario_id=self.scenario_id,
        )

    def best(self) -> MappingCandidate | None:
        return self.candidates[0] if self.candidates else None

    def uncovered_correspondences(self) -> tuple[Correspondence, ...]:
        """Input correspondences no candidate covers (need user attention)."""
        if self.correspondences is None:
            return ()
        covered: set[Correspondence] = set()
        for candidate in self.candidates:
            covered.update(candidate.covered)
        return tuple(
            c for c in self.correspondences if c not in covered
        )

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


class SemanticMapper:
    """Discovers schema mapping candidates from table semantics."""

    def __init__(
        self,
        source_semantics: SchemaSemantics,
        target_semantics: SchemaSemantics,
        correspondences: CorrespondenceSet,
        options: DiscoveryOptions | None = None,
        **legacy_options: object,
    ) -> None:
        """``options`` collects every tuning knob (ablation filter
        switches, the lossy-path length cap, engine selection,
        explain/trace recording, cache sizing); the old per-knob keyword
        arguments are still accepted but emit a
        :class:`DeprecationWarning`.

        Inputs are validated up front through :mod:`repro.validation`;
        ill-formed semantics or dangling correspondences raise
        :class:`~repro.exceptions.ValidationError` with structured
        diagnostics instead of failing mid-search.
        """
        from repro.validation import validate_pair

        validate_pair(
            source_semantics, target_semantics, correspondences
        ).raise_if_errors()
        self.options = merge_legacy_kwargs(
            options, legacy_options, "SemanticMapper()"
        )
        self.source_semantics = source_semantics
        self.target_semantics = target_semantics
        self.correspondences = correspondences
        self._source_reasoner = CMReasoner.shared(source_semantics.model)
        self._target_reasoner = CMReasoner.shared(target_semantics.model)
        self._tracer: Tracer | NoopTracer = NOOP

    # -- legacy attribute views (kept for backward compatibility) --------
    @property
    def max_path_edges(self) -> int:
        return self.options.max_path_edges

    @property
    def use_partof_filter(self) -> bool:
        return self.options.use_partof_filter

    @property
    def use_disjointness_filter(self) -> bool:
        return self.options.use_disjointness_filter

    @property
    def use_cardinality_filter(self) -> bool:
        return self.options.use_cardinality_filter

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def _resolve_tracer(
        self, tracer: Tracer | None
    ) -> tuple[Tracer | NoopTracer, bool]:
        """Pick this run's tracer: explicit > ambient > options-created.

        Returns ``(tracer, owned)`` — ``owned`` means this run created
        the tracer (and must activate it for the module-level helpers in
        steiner/csg/translate to see it).
        """
        if tracer is not None:
            return tracer, True
        ambient = tracing.current()
        if ambient is not None:
            return ambient, False
        if self.options.wants_trace:
            return Tracer(explain=self.options.explain), True
        return NOOP, False

    def discover(self, tracer: Tracer | None = None) -> DiscoveryResult:
        """Run the pipeline; ``tracer`` overrides the ambient/option tracer."""
        start = time.perf_counter()
        notes: list[str] = []
        self._eliminations: list[str] = []
        self._tracer, owned = self._resolve_tracer(tracer)
        recording = self._tracer.enabled
        activation = (
            tracing.activate(self._tracer)
            if recording and tracing.current() is not self._tracer
            else nullcontext()
        )
        size_overrides = self.options.cache_size_overrides()
        sizing = (
            perf_config.cache_size_overrides(**size_overrides)
            if size_overrides
            else nullcontext()
        )
        oracle = (
            perf_config.distance_oracle(False)
            if not self.options.distance_oracle
            else nullcontext()
        )
        persistence = (
            persist.cache_dir_override(self.options.cache_dir)
            if self.options.cache_dir is not None
            else nullcontext()
        )
        try:
            with activation, sizing, oracle, persistence, \
                    perf_counters.scope() as frame:
                with self._tracer.span("discover"):
                    outcome = self._run_engine(notes)
        finally:
            run_tracer = self._tracer
            self._tracer = NOOP
        elapsed = time.perf_counter() - start
        stats = frame.snapshot()
        stats["time_discover_s"] = round(elapsed, 6)
        provenance = (
            list(run_tracer.provenance) if run_tracer.enabled else []
        )
        from repro.discovery.fingerprint import discovery_fingerprint

        return DiscoveryResult(
            outcome.candidates,
            elapsed,
            notes,
            eliminations=self._eliminations,
            correspondences=self.correspondences,
            stats=stats,
            trace=run_tracer.to_dict() if run_tracer.enabled else None,
            rank_provenance=provenance,
            stage_fingerprints=outcome.stage_fingerprints,
            fingerprint=discovery_fingerprint(
                self.source_semantics,
                self.target_semantics,
                self.correspondences,
                self.options.to_pairs(),
            ),
        )

    def _run_engine(self, notes: list[str]) -> EngineOutcome:
        """Dispatch to the engine ``self.options.engine`` selects."""
        if self.options.engine == "clio":
            return run_clio(
                self.source_semantics,
                self.target_semantics,
                self.correspondences,
                self._tracer,
                notes,
                self._eliminations,
            )
        engine = SemanticEngine(
            self.source_semantics,
            self.target_semantics,
            self.correspondences,
            self.options,
            self._source_reasoner,
            self._target_reasoner,
            self._tracer,
        )
        return engine.run(notes, self._eliminations)

    def stage_fingerprints(self) -> dict[str, str]:
        """The engine-stage fingerprints this mapper's inputs produce.

        Computable without running discovery — incremental re-discovery
        uses this to predict which stages an edit invalidates.
        """
        if self.options.engine == "clio":
            from repro.discovery.engine.clio import clio_fingerprint

            return {
                "clio": clio_fingerprint(
                    self.source_semantics,
                    self.target_semantics,
                    self.correspondences,
                )
            }
        return SemanticEngine(
            self.source_semantics,
            self.target_semantics,
            self.correspondences,
            self.options,
            self._source_reasoner,
            self._target_reasoner,
            NOOP,
        ).stage_fingerprints()


def discover_mappings(
    source_semantics: SchemaSemantics,
    target_semantics: SchemaSemantics,
    correspondences: CorrespondenceSet,
    options: DiscoveryOptions | None = None,
    trace: Tracer | None = None,
    **legacy_options: object,
) -> DiscoveryResult:
    """One-shot convenience wrapper around :class:`SemanticMapper`.

    ``options`` carries every tuning knob; ``trace`` injects a
    caller-owned :class:`repro.trace.Tracer` (its spans and prune events
    accumulate there *and* on ``result.trace``).
    """
    return SemanticMapper(
        source_semantics,
        target_semantics,
        correspondences,
        options=options,
        **legacy_options,
    ).discover(tracer=trace)
