"""The end-to-end semantic mapping discovery pipeline (Section 3).

:class:`SemanticMapper` wires together the whole algorithm:

1. lift the correspondences to marked class nodes in both CM graphs;
2. find target CSGs (Case A: a single pre-selected s-tree; Case B:
   constructed minimal functional trees);
3. for each target CSG, find source CSGs — Case A.1 (anchored at the
   class corresponding to the target anchor), Case A.2 (all minimal
   functional trees), and, when no functional tree covers the marked
   nodes and the target connection tolerates it, the Section 3.3 lossy
   path search; when even that fails, split the correspondences across
   partially covering trees;
4. filter CSG pairs by semantic compatibility (cardinality categories,
   partOf, ISA-disjointness consistency);
5. translate each surviving pair into table-level expressions by LAV
   rewriting and emit ranked :class:`MappingCandidate` objects.

Tuning knobs live on one frozen
:class:`~repro.discovery.options.DiscoveryOptions` object shared by
every entry point (library, batch, CLI, service); the old per-knob
keyword arguments still work through a :class:`DeprecationWarning`
shim. With ``DiscoveryOptions(explain=True)`` (or an externally
activated :class:`repro.trace.Tracer`) the run records a span tree of
per-phase wall times, a structured prune event for every candidate a
semantic filter rejected, and per-candidate rank provenance — all
exposed on :attr:`DiscoveryResult.trace`.
"""

from __future__ import annotations

import itertools
import time
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any

from repro import trace as tracing
from repro.cm.reasoner import CMReasoner
from repro.correspondences import (
    Correspondence,
    CorrespondenceSet,
    LiftedCorrespondence,
)
from repro.discovery.compatibility import (
    ConnectionProfile,
    compatibility_violation,
)
from repro.discovery.csg import (
    CSG,
    extend_partial_trees,
    find_source_functional_csgs,
    find_source_lossy_csgs,
    find_target_csgs,
)
from repro.discovery.options import DiscoveryOptions, merge_legacy_kwargs
from repro.discovery.ranking import CandidateScore, origin_rank
from repro.discovery.steiner import CostModel, direction_reversals
from repro.discovery.translate import translate_csg
from repro.exceptions import DiscoveryError
from repro.mappings.expression import (
    MappingCandidate,
    deduplicate_candidates,
    trim_redundant_joins,
)
from repro.mappings.refinement import optional_tables
from repro.perf import counters as perf_counters
from repro.semantics.lav import SchemaSemantics
from repro.trace.tracer import NOOP, NoopTracer, Tracer


@dataclass
class DiscoveryResult:
    """Ranked candidates plus run diagnostics.

    ``eliminations`` records CSG pairs removed by the semantic filters
    (with the responsible filter named) — the library-level analogue of
    the paper's interactive mapping debugging. With tracing/explain
    enabled, ``trace`` carries the structured counterpart: the span
    tree, the prune log, and per-candidate rank provenance (see
    :mod:`repro.trace`); ``rank_provenance`` mirrors the provenance
    entries for direct access.
    """

    candidates: list[MappingCandidate]
    elapsed_seconds: float
    notes: list[str] = field(default_factory=list)
    eliminations: list[str] = field(default_factory=list)
    correspondences: CorrespondenceSet | None = None
    #: Perf-layer instrumentation for this run: cache hit/miss counters,
    #: Dijkstra sweeps, paths pruned, and ``time_<phase>_s`` wall times
    #: (see ``repro.perf.counters`` for the counter vocabulary).
    stats: dict[str, int | float] = field(default_factory=dict)
    #: The trace document of this run (``Tracer.to_dict()``), or ``None``
    #: when the run was untraced.
    trace: dict[str, Any] | None = None
    #: Per-candidate score components, best first (explain mode only).
    rank_provenance: list[dict[str, Any]] = field(default_factory=list)

    def best(self) -> MappingCandidate | None:
        return self.candidates[0] if self.candidates else None

    def uncovered_correspondences(self) -> tuple[Correspondence, ...]:
        """Input correspondences no candidate covers (need user attention)."""
        if self.correspondences is None:
            return ()
        covered: set[Correspondence] = set()
        for candidate in self.candidates:
            covered.update(candidate.covered)
        return tuple(
            c for c in self.correspondences if c not in covered
        )

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


class SemanticMapper:
    """Discovers schema mapping candidates from table semantics."""

    def __init__(
        self,
        source_semantics: SchemaSemantics,
        target_semantics: SchemaSemantics,
        correspondences: CorrespondenceSet,
        options: DiscoveryOptions | None = None,
        **legacy_options: object,
    ) -> None:
        """``options`` collects every tuning knob (ablation filter
        switches, the lossy-path length cap, explain/trace recording);
        the old per-knob keyword arguments are still accepted but emit a
        :class:`DeprecationWarning`.

        Inputs are validated up front through :mod:`repro.validation`;
        ill-formed semantics or dangling correspondences raise
        :class:`~repro.exceptions.ValidationError` with structured
        diagnostics instead of failing mid-search.
        """
        from repro.validation import validate_pair

        validate_pair(
            source_semantics, target_semantics, correspondences
        ).raise_if_errors()
        self.options = merge_legacy_kwargs(
            options, legacy_options, "SemanticMapper()"
        )
        self.source_semantics = source_semantics
        self.target_semantics = target_semantics
        self.correspondences = correspondences
        self._source_reasoner = CMReasoner.shared(source_semantics.model)
        self._target_reasoner = CMReasoner.shared(target_semantics.model)
        self._tracer: Tracer | NoopTracer = NOOP

    # -- legacy attribute views (kept for backward compatibility) --------
    @property
    def max_path_edges(self) -> int:
        return self.options.max_path_edges

    @property
    def use_partof_filter(self) -> bool:
        return self.options.use_partof_filter

    @property
    def use_disjointness_filter(self) -> bool:
        return self.options.use_disjointness_filter

    @property
    def use_cardinality_filter(self) -> bool:
        return self.options.use_cardinality_filter

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def _resolve_tracer(
        self, tracer: Tracer | None
    ) -> tuple[Tracer | NoopTracer, bool]:
        """Pick this run's tracer: explicit > ambient > options-created.

        Returns ``(tracer, owned)`` — ``owned`` means this run created
        the tracer (and must activate it for the module-level helpers in
        steiner/csg/translate to see it).
        """
        if tracer is not None:
            return tracer, True
        ambient = tracing.current()
        if ambient is not None:
            return ambient, False
        if self.options.wants_trace:
            return Tracer(explain=self.options.explain), True
        return NOOP, False

    def discover(self, tracer: Tracer | None = None) -> DiscoveryResult:
        """Run the pipeline; ``tracer`` overrides the ambient/option tracer."""
        start = time.perf_counter()
        notes: list[str] = []
        self._eliminations: list[str] = []
        self._tracer, owned = self._resolve_tracer(tracer)
        recording = self._tracer.enabled
        activation = (
            tracing.activate(self._tracer)
            if recording and tracing.current() is not self._tracer
            else nullcontext()
        )
        try:
            with activation, perf_counters.scope() as frame:
                with self._tracer.span("discover"):
                    candidates = self._pipeline(notes)
        finally:
            run_tracer = self._tracer
            self._tracer = NOOP
        elapsed = time.perf_counter() - start
        stats = frame.snapshot()
        stats["time_discover_s"] = round(elapsed, 6)
        provenance = (
            list(run_tracer.provenance) if run_tracer.enabled else []
        )
        return DiscoveryResult(
            candidates,
            elapsed,
            notes,
            eliminations=self._eliminations,
            correspondences=self.correspondences,
            stats=stats,
            trace=run_tracer.to_dict() if run_tracer.enabled else None,
            rank_provenance=provenance,
        )

    def _pipeline(self, notes: list[str]) -> list[MappingCandidate]:
        with perf_counters.phase("lift"), self._tracer.span("lift") as span:
            lifted = self.correspondences.lift(
                self.source_semantics, self.target_semantics
            )
            span.set("correspondences", len(lifted))
        if not lifted:
            raise DiscoveryError("no correspondences to interpret")
        scored: list[tuple[CandidateScore, MappingCandidate]] = []
        with perf_counters.phase("target_csgs"), self._tracer.span(
            "target_csgs"
        ) as span:
            target_csgs = find_target_csgs(self.target_semantics, lifted)
            span.set("found", len(target_csgs))
        with perf_counters.phase("source_search"):
            for target_csg in target_csgs:
                relevant = tuple(
                    item
                    for item in lifted
                    if item.target_class in target_csg.marked_classes()
                )
                if not relevant:
                    continue
                with self._tracer.span(
                    "source_search",
                    target=str(target_csg.anchor),
                    origin=target_csg.origin,
                ) as span:
                    found = self._candidates_for_target(
                        target_csg, relevant, notes
                    )
                    span.set("candidates", len(found))
                scored.extend(found)
        with perf_counters.phase("rank"), self._tracer.span(
            "rank"
        ) as span:
            scored.sort(key=lambda pair: pair[0].sort_key())
            candidates = trim_redundant_joins(
                deduplicate_candidates(
                    [candidate for _, candidate in scored]
                )
            )
            span.set("scored", len(scored))
            span.set("kept", len(candidates))
            if self._tracer.explain:
                self._record_rank_provenance(scored, candidates)
        return candidates

    def _record_rank_provenance(
        self,
        scored: list[tuple[CandidateScore, MappingCandidate]],
        candidates: list[MappingCandidate],
    ) -> None:
        """Attach each surviving candidate's score components to the trace."""
        scores = {id(candidate): score for score, candidate in scored}
        for rank, candidate in enumerate(candidates, start=1):
            score = scores.get(id(candidate))
            entry: dict[str, Any] = {
                "rank": rank,
                "candidate": candidate.notes,
                "covered_correspondences": len(candidate.covered),
            }
            if score is not None:
                entry.update(
                    covered=score.covered,
                    reversals=score.reversals,
                    anchor_rank=score.anchor_rank,
                    preselected=score.preselected,
                    tree_size=score.tree_size,
                    origin_rank=score.origin_rank,
                )
            self._tracer.rank(entry)

    # ------------------------------------------------------------------
    # Per-target-CSG search
    # ------------------------------------------------------------------
    def _candidates_for_target(
        self,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
        notes: list[str],
    ) -> list[tuple[CandidateScore, MappingCandidate]]:
        marked_sources = {item.source_class for item in relevant}
        with self._tracer.span("functional_csgs") as span:
            functional = find_source_functional_csgs(
                self.source_semantics, relevant, target_csg
            )
            span.set("found", len(functional))
        full = [
            csg
            for csg in functional
            if csg.marked_classes() >= marked_sources
        ]
        results: list[tuple[CandidateScore, MappingCandidate]] = []
        if full:
            for source_csg in full:
                results.extend(
                    self._emit(source_csg, target_csg, relevant)
                )
            if results:
                return results
            notes.append(
                f"{target_csg}: functional trees found but all pairs "
                f"incompatible"
            )
        # Lossy fallback (Section 3.3): extend partial functional trees
        # (including Case A.1's anchored partial trees) with minimally
        # lossy attachment paths to the remaining marked classes.
        cost_model = CostModel.from_edges(
            self.source_semantics.preselected_cm_edges(
                [item.correspondence.source for item in relevant]
            )
        )
        with self._tracer.span("lossy_extension") as span:
            extended = extend_partial_trees(
                self.source_semantics,
                marked_sources,
                cost_model,
                extra_bases=tuple(functional),
            )
            span.set("found", len(extended))
        for source_csg in extended:
            results.extend(self._emit(source_csg, target_csg, relevant))
        if results:
            return results
        if extended:
            notes.append(
                f"{target_csg}: lossy extensions found but incompatible"
            )
        # Split: partially covering functional trees, one candidate each.
        for source_csg in functional:
            results.extend(self._emit(source_csg, target_csg, relevant))
        if not results:
            notes.append(f"{target_csg}: no source connection found")
        return results

    # ------------------------------------------------------------------
    # Candidate emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        source_csg: CSG,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
    ) -> list[tuple[CandidateScore, MappingCandidate]]:
        covered = tuple(
            item
            for item in relevant
            if item.source_class in source_csg.marked_classes()
            and item.target_class in target_csg.marked_classes()
        )
        if not covered:
            return []
        with self._tracer.span("csg_pair") as span:
            if self._tracer.enabled:
                span.set("source", str(source_csg))
                span.set("target", str(target_csg))
            if not self._trees_consistent(source_csg, target_csg):
                detail = (
                    f"{source_csg} ⇄ {target_csg}: inconsistent tree "
                    f"(disjointness)"
                )
                self._eliminations.append(detail)
                self._tracer.prune(
                    phase="pair_filter",
                    rule="disjointness.tree",
                    source_csg=str(source_csg),
                    target_csg=str(target_csg),
                    detail=detail,
                )
                return []
            reversals = self._pair_compatible(
                source_csg, target_csg, covered
            )
            if reversals is None:
                return []
            with perf_counters.phase("translate"), self._tracer.span(
                "translate"
            ):
                source_queries = translate_csg(
                    source_csg, covered, "source", self.source_semantics
                )
                target_queries = translate_csg(
                    target_csg, covered, "target", self.target_semantics
                )
            results = []
            for source_query, target_query in itertools.product(
                source_queries, target_queries
            ):
                candidate = MappingCandidate(
                    source_query,
                    target_query,
                    tuple(item.correspondence for item in covered),
                    method="semantic",
                    notes=f"{source_csg.origin}→{target_csg.origin}",
                    source_optional_tables=optional_tables(
                        source_query, source_csg, self.source_semantics
                    ),
                )
                score = CandidateScore(
                    covered=len(covered),
                    reversals=reversals,
                    tree_size=len(source_csg.tree.nodes())
                    + len(target_csg.tree.nodes()),
                    preselected=0,
                    origin_rank=origin_rank(source_csg.origin),
                    anchor_rank=self._anchor_rank(source_csg, target_csg),
                )
                results.append((score, candidate))
            span.set("candidates", len(results))
        return results

    def _anchor_rank(self, source_csg: CSG, target_csg: CSG) -> int:
        """Section 3.3's reified-anchor preference (0 = anchors agree).

        A target tree rooted at a reified relationship prefers a source
        tree rooted at a reified relationship of compatible arity and
        connection category; mismatched kinds rank behind.
        """
        from repro.discovery.compatibility import (
            AnchorProfile,
            anchors_compatible,
        )

        source_root = source_csg.anchor.cm_node
        target_root = target_csg.anchor.cm_node
        source_reified = self.source_semantics.graph.is_reified(source_root)
        target_reified = self.target_semantics.graph.is_reified(target_root)
        if not target_reified:
            return 0
        if not source_reified:
            self._tracer.prune(
                phase="rank",
                rule="anchor",
                source_csg=str(source_csg),
                target_csg=str(target_csg),
                detail=(
                    f"{source_csg} ranked behind: plain source anchor "
                    f"for reified target anchor {target_root}"
                ),
            )
            return 1
        source_profile = AnchorProfile.of_reified(
            self._source_reasoner, source_root
        )
        target_profile = AnchorProfile.of_reified(
            self._target_reasoner, target_root
        )
        if anchors_compatible(source_profile, target_profile):
            return 0
        self._tracer.prune(
            phase="rank",
            rule="anchor",
            source_csg=str(source_csg),
            target_csg=str(target_csg),
            detail=(
                f"{source_csg} ranked behind: reified anchors disagree "
                f"in arity/category ({source_root} vs {target_root})"
            ),
        )
        return 1

    def _trees_consistent(self, source_csg: CSG, target_csg: CSG) -> bool:
        if not self.options.use_disjointness_filter:
            return True
        return self._source_reasoner.tree_is_consistent(
            list(source_csg.cm_edges())
        ) and self._target_reasoner.tree_is_consistent(
            list(target_csg.cm_edges())
        )

    def _pair_compatible(
        self,
        source_csg: CSG,
        target_csg: CSG,
        covered: tuple[LiftedCorrespondence, ...],
    ) -> int | None:
        """Check pairwise connection compatibility; return total reversals.

        ``None`` signals an incompatible pair (candidate eliminated).
        """
        total_reversals = 0
        options = self.options
        for first, second in itertools.combinations(covered, 2):
            if (
                first.source_class == second.source_class
                and first.target_class == second.target_class
            ):
                continue
            source_path = self._path(
                source_csg, first.source_class, second.source_class
            )
            target_path = self._path(
                target_csg, first.target_class, second.target_class
            )
            if options.use_disjointness_filter:
                if not self._source_reasoner.path_is_consistent(
                    list(source_path)
                ):
                    detail = (
                        f"{source_csg}: inconsistent source path "
                        f"{first.source_class}–{second.source_class}"
                    )
                    self._eliminations.append(detail)
                    self._tracer.prune(
                        phase="pair_filter",
                        rule="disjointness.path",
                        source_csg=str(source_csg),
                        target_csg=str(target_csg),
                        detail=detail,
                    )
                    return None
                if not self._target_reasoner.path_is_consistent(
                    list(target_path)
                ):
                    detail = (
                        f"{target_csg}: inconsistent target path "
                        f"{first.target_class}–{second.target_class}"
                    )
                    self._eliminations.append(detail)
                    self._tracer.prune(
                        phase="pair_filter",
                        rule="disjointness.path",
                        source_csg=str(source_csg),
                        target_csg=str(target_csg),
                        detail=detail,
                    )
                    return None
            source_profile = ConnectionProfile.of_path(source_path)
            target_profile = ConnectionProfile.of_path(target_path)
            violation = compatibility_violation(
                source_profile,
                target_profile,
                check_cardinality=options.use_cardinality_filter,
                check_semantic_type=options.use_partof_filter,
            )
            if violation is not None:
                detail = (
                    f"{source_csg} ⇄ {target_csg}: "
                    f"{source_profile.category.value}/"
                    f"{source_profile.semantic_type.value} source vs "
                    f"{target_profile.category.value}/"
                    f"{target_profile.semantic_type.value} target "
                    f"({first.source_class}–{second.source_class})"
                )
                self._eliminations.append(detail)
                self._tracer.prune(
                    phase="pair_filter",
                    rule=violation,
                    source_csg=str(source_csg),
                    target_csg=str(target_csg),
                    detail=detail,
                )
                return None
            total_reversals += direction_reversals(source_path)
        return total_reversals

    @staticmethod
    def _path(csg: CSG, first: str, second: str):
        if first == second:
            return ()
        return csg.connecting_path(first, second)


def discover_mappings(
    source_semantics: SchemaSemantics,
    target_semantics: SchemaSemantics,
    correspondences: CorrespondenceSet,
    options: DiscoveryOptions | None = None,
    trace: Tracer | None = None,
    **legacy_options: object,
) -> DiscoveryResult:
    """One-shot convenience wrapper around :class:`SemanticMapper`.

    ``options`` carries every tuning knob; ``trace`` injects a
    caller-owned :class:`repro.trace.Tracer` (its spans and prune events
    accumulate there *and* on ``result.trace``).
    """
    return SemanticMapper(
        source_semantics,
        target_semantics,
        correspondences,
        options=options,
        **legacy_options,
    ).discover(tracer=trace)
