"""The end-to-end semantic mapping discovery pipeline (Section 3).

:class:`SemanticMapper` wires together the whole algorithm:

1. lift the correspondences to marked class nodes in both CM graphs;
2. find target CSGs (Case A: a single pre-selected s-tree; Case B:
   constructed minimal functional trees);
3. for each target CSG, find source CSGs — Case A.1 (anchored at the
   class corresponding to the target anchor), Case A.2 (all minimal
   functional trees), and, when no functional tree covers the marked
   nodes and the target connection tolerates it, the Section 3.3 lossy
   path search; when even that fails, split the correspondences across
   partially covering trees;
4. filter CSG pairs by semantic compatibility (cardinality categories,
   partOf, ISA-disjointness consistency);
5. translate each surviving pair into table-level expressions by LAV
   rewriting and emit ranked :class:`MappingCandidate` objects.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.cm.reasoner import CMReasoner
from repro.correspondences import (
    Correspondence,
    CorrespondenceSet,
    LiftedCorrespondence,
)
from repro.discovery.compatibility import (
    ConnectionProfile,
    connections_compatible,
)
from repro.discovery.csg import (
    CSG,
    extend_partial_trees,
    find_source_functional_csgs,
    find_source_lossy_csgs,
    find_target_csgs,
)
from repro.discovery.ranking import CandidateScore, origin_rank
from repro.discovery.steiner import CostModel, direction_reversals
from repro.discovery.translate import translate_csg
from repro.exceptions import DiscoveryError
from repro.mappings.expression import (
    MappingCandidate,
    deduplicate_candidates,
    trim_redundant_joins,
)
from repro.mappings.refinement import optional_tables
from repro.perf import counters as perf_counters
from repro.semantics.lav import SchemaSemantics


@dataclass
class DiscoveryResult:
    """Ranked candidates plus run diagnostics.

    ``eliminations`` records CSG pairs removed by the semantic filters
    (with the responsible filter named) — the library-level analogue of
    the paper's interactive mapping debugging.
    """

    candidates: list[MappingCandidate]
    elapsed_seconds: float
    notes: list[str] = field(default_factory=list)
    eliminations: list[str] = field(default_factory=list)
    correspondences: CorrespondenceSet | None = None
    #: Perf-layer instrumentation for this run: cache hit/miss counters,
    #: Dijkstra sweeps, paths pruned, and ``time_<phase>_s`` wall times
    #: (see ``repro.perf.counters`` for the counter vocabulary).
    stats: dict[str, int | float] = field(default_factory=dict)

    def best(self) -> MappingCandidate | None:
        return self.candidates[0] if self.candidates else None

    def uncovered_correspondences(self) -> tuple[Correspondence, ...]:
        """Input correspondences no candidate covers (need user attention)."""
        if self.correspondences is None:
            return ()
        covered: set[Correspondence] = set()
        for candidate in self.candidates:
            covered.update(candidate.covered)
        return tuple(
            c for c in self.correspondences if c not in covered
        )

    def __len__(self) -> int:
        return len(self.candidates)

    def __iter__(self):
        return iter(self.candidates)


class SemanticMapper:
    """Discovers schema mapping candidates from table semantics."""

    def __init__(
        self,
        source_semantics: SchemaSemantics,
        target_semantics: SchemaSemantics,
        correspondences: CorrespondenceSet,
        max_path_edges: int = 6,
        use_partof_filter: bool = True,
        use_disjointness_filter: bool = True,
        use_cardinality_filter: bool = True,
    ) -> None:
        """``use_*_filter`` flags exist for ablation studies: switching
        one off disables the corresponding semantic-compatibility check
        of Sections 3.2–3.3 (see ``benchmarks/benchmark_ablation.py``).

        Inputs are validated up front through :mod:`repro.validation`;
        ill-formed semantics or dangling correspondences raise
        :class:`~repro.exceptions.ValidationError` with structured
        diagnostics instead of failing mid-search.
        """
        from repro.validation import validate_pair

        validate_pair(
            source_semantics, target_semantics, correspondences
        ).raise_if_errors()
        self.source_semantics = source_semantics
        self.target_semantics = target_semantics
        self.correspondences = correspondences
        self.max_path_edges = max_path_edges
        self.use_partof_filter = use_partof_filter
        self.use_disjointness_filter = use_disjointness_filter
        self.use_cardinality_filter = use_cardinality_filter
        self._source_reasoner = CMReasoner.shared(source_semantics.model)
        self._target_reasoner = CMReasoner.shared(target_semantics.model)

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def discover(self) -> DiscoveryResult:
        start = time.perf_counter()
        notes: list[str] = []
        self._eliminations: list[str] = []
        with perf_counters.scope() as frame:
            with perf_counters.phase("lift"):
                lifted = self.correspondences.lift(
                    self.source_semantics, self.target_semantics
                )
            if not lifted:
                raise DiscoveryError("no correspondences to interpret")
            scored: list[tuple[CandidateScore, MappingCandidate]] = []
            with perf_counters.phase("target_csgs"):
                target_csgs = find_target_csgs(self.target_semantics, lifted)
            with perf_counters.phase("source_search"):
                for target_csg in target_csgs:
                    relevant = tuple(
                        item
                        for item in lifted
                        if item.target_class in target_csg.marked_classes()
                    )
                    if not relevant:
                        continue
                    scored.extend(
                        self._candidates_for_target(target_csg, relevant, notes)
                    )
            with perf_counters.phase("rank"):
                scored.sort(key=lambda pair: pair[0].sort_key())
                candidates = trim_redundant_joins(
                    deduplicate_candidates(
                        [candidate for _, candidate in scored]
                    )
                )
        elapsed = time.perf_counter() - start
        stats = frame.snapshot()
        stats["time_discover_s"] = round(elapsed, 6)
        return DiscoveryResult(
            candidates,
            elapsed,
            notes,
            eliminations=self._eliminations,
            correspondences=self.correspondences,
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Per-target-CSG search
    # ------------------------------------------------------------------
    def _candidates_for_target(
        self,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
        notes: list[str],
    ) -> list[tuple[CandidateScore, MappingCandidate]]:
        marked_sources = {item.source_class for item in relevant}
        functional = find_source_functional_csgs(
            self.source_semantics, relevant, target_csg
        )
        full = [
            csg
            for csg in functional
            if csg.marked_classes() >= marked_sources
        ]
        results: list[tuple[CandidateScore, MappingCandidate]] = []
        if full:
            for source_csg in full:
                results.extend(
                    self._emit(source_csg, target_csg, relevant)
                )
            if results:
                return results
            notes.append(
                f"{target_csg}: functional trees found but all pairs "
                f"incompatible"
            )
        # Lossy fallback (Section 3.3): extend partial functional trees
        # (including Case A.1's anchored partial trees) with minimally
        # lossy attachment paths to the remaining marked classes.
        cost_model = CostModel.from_edges(
            self.source_semantics.preselected_cm_edges(
                [item.correspondence.source for item in relevant]
            )
        )
        extended = extend_partial_trees(
            self.source_semantics,
            marked_sources,
            cost_model,
            extra_bases=tuple(functional),
        )
        for source_csg in extended:
            results.extend(self._emit(source_csg, target_csg, relevant))
        if results:
            return results
        if extended:
            notes.append(
                f"{target_csg}: lossy extensions found but incompatible"
            )
        # Split: partially covering functional trees, one candidate each.
        for source_csg in functional:
            results.extend(self._emit(source_csg, target_csg, relevant))
        if not results:
            notes.append(f"{target_csg}: no source connection found")
        return results

    # ------------------------------------------------------------------
    # Candidate emission
    # ------------------------------------------------------------------
    def _emit(
        self,
        source_csg: CSG,
        target_csg: CSG,
        relevant: tuple[LiftedCorrespondence, ...],
    ) -> list[tuple[CandidateScore, MappingCandidate]]:
        covered = tuple(
            item
            for item in relevant
            if item.source_class in source_csg.marked_classes()
            and item.target_class in target_csg.marked_classes()
        )
        if not covered:
            return []
        if not self._trees_consistent(source_csg, target_csg):
            self._eliminations.append(
                f"{source_csg} ⇄ {target_csg}: inconsistent tree "
                f"(disjointness)"
            )
            return []
        reversals = self._pair_compatible(source_csg, target_csg, covered)
        if reversals is None:
            return []
        with perf_counters.phase("translate"):
            source_queries = translate_csg(
                source_csg, covered, "source", self.source_semantics
            )
            target_queries = translate_csg(
                target_csg, covered, "target", self.target_semantics
            )
        results = []
        for source_query, target_query in itertools.product(
            source_queries, target_queries
        ):
            candidate = MappingCandidate(
                source_query,
                target_query,
                tuple(item.correspondence for item in covered),
                method="semantic",
                notes=f"{source_csg.origin}→{target_csg.origin}",
                source_optional_tables=optional_tables(
                    source_query, source_csg, self.source_semantics
                ),
            )
            score = CandidateScore(
                covered=len(covered),
                reversals=reversals,
                tree_size=len(source_csg.tree.nodes())
                + len(target_csg.tree.nodes()),
                preselected=0,
                origin_rank=origin_rank(source_csg.origin),
                anchor_rank=self._anchor_rank(source_csg, target_csg),
            )
            results.append((score, candidate))
        return results

    def _anchor_rank(self, source_csg: CSG, target_csg: CSG) -> int:
        """Section 3.3's reified-anchor preference (0 = anchors agree).

        A target tree rooted at a reified relationship prefers a source
        tree rooted at a reified relationship of compatible arity and
        connection category; mismatched kinds rank behind.
        """
        from repro.discovery.compatibility import (
            AnchorProfile,
            anchors_compatible,
        )

        source_root = source_csg.anchor.cm_node
        target_root = target_csg.anchor.cm_node
        source_reified = self.source_semantics.graph.is_reified(source_root)
        target_reified = self.target_semantics.graph.is_reified(target_root)
        if not target_reified:
            return 0
        if not source_reified:
            return 1
        source_profile = AnchorProfile.of_reified(
            self._source_reasoner, source_root
        )
        target_profile = AnchorProfile.of_reified(
            self._target_reasoner, target_root
        )
        return 0 if anchors_compatible(source_profile, target_profile) else 1

    def _trees_consistent(self, source_csg: CSG, target_csg: CSG) -> bool:
        if not self.use_disjointness_filter:
            return True
        return self._source_reasoner.tree_is_consistent(
            list(source_csg.cm_edges())
        ) and self._target_reasoner.tree_is_consistent(
            list(target_csg.cm_edges())
        )

    def _pair_compatible(
        self,
        source_csg: CSG,
        target_csg: CSG,
        covered: tuple[LiftedCorrespondence, ...],
    ) -> int | None:
        """Check pairwise connection compatibility; return total reversals.

        ``None`` signals an incompatible pair (candidate eliminated).
        """
        total_reversals = 0
        for first, second in itertools.combinations(covered, 2):
            if (
                first.source_class == second.source_class
                and first.target_class == second.target_class
            ):
                continue
            source_path = self._path(
                source_csg, first.source_class, second.source_class
            )
            target_path = self._path(
                target_csg, first.target_class, second.target_class
            )
            if self.use_disjointness_filter:
                if not self._source_reasoner.path_is_consistent(
                    list(source_path)
                ):
                    self._eliminations.append(
                        f"{source_csg}: inconsistent source path "
                        f"{first.source_class}–{second.source_class}"
                    )
                    return None
                if not self._target_reasoner.path_is_consistent(
                    list(target_path)
                ):
                    self._eliminations.append(
                        f"{target_csg}: inconsistent target path "
                        f"{first.target_class}–{second.target_class}"
                    )
                    return None
            source_profile = ConnectionProfile.of_path(source_path)
            target_profile = ConnectionProfile.of_path(target_path)
            if not connections_compatible(
                source_profile,
                target_profile,
                check_cardinality=self.use_cardinality_filter,
                check_semantic_type=self.use_partof_filter,
            ):
                self._eliminations.append(
                    f"{source_csg} ⇄ {target_csg}: "
                    f"{source_profile.category.value}/"
                    f"{source_profile.semantic_type.value} source vs "
                    f"{target_profile.category.value}/"
                    f"{target_profile.semantic_type.value} target "
                    f"({first.source_class}–{second.source_class})"
                )
                return None
            total_reversals += direction_reversals(source_path)
        return total_reversals

    @staticmethod
    def _path(csg: CSG, first: str, second: str):
        if first == second:
            return ()
        return csg.connecting_path(first, second)


def discover_mappings(
    source_semantics: SchemaSemantics,
    target_semantics: SchemaSemantics,
    correspondences: CorrespondenceSet,
) -> DiscoveryResult:
    """One-shot convenience wrapper around :class:`SemanticMapper`."""
    return SemanticMapper(
        source_semantics, target_semantics, correspondences
    ).discover()
