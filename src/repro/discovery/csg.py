"""Conceptual subgraphs (CSGs) and the case analysis of Section 3.2–3.3.

A CSG is a candidate connection among marked class nodes in one CM graph,
represented as an anchored :class:`~repro.semantics.stree.SemanticTree`
(structure only — attributes are attached during translation). The
functions here implement the paper's case analysis:

* **Case A** — the target CSG is the s-tree of a single pre-selected
  table; **A.1** roots the source search at the node corresponding to the
  target anchor, **A.2** (no corresponding root) searches all minimal
  functional trees covering the source marked nodes;
* **Case B** — several pre-selected target s-trees: minimal functional
  trees are constructed on *both* sides and paired via Case A heuristics;
* **lossy fallback** (Section 3.3) — when the target connection between
  two marked nodes is many-to-many (or no functional tree exists), the
  source search looks for minimally lossy simple paths instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.cm.graph import CMEdge
from repro.correspondences import LiftedCorrespondence
from repro.discovery.steiner import (
    CostModel,
    DiscoveredTree,
    direction_reversals,
    functional_tree_from_root,
    functional_trees_from_root,
    minimal_functional_trees,
    minimally_lossy_paths,
)
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import STreeEdge, STreeNode, SemanticTree


@dataclass(frozen=True)
class CSG:
    """A conceptual subgraph: an anchored tree plus its marked nodes.

    ``marked`` maps each covered CM class name to the tree node standing
    for it (relevant when s-trees contain class copies).
    """

    tree: SemanticTree
    marked: tuple[tuple[str, STreeNode], ...]
    origin: str

    @property
    def anchor(self) -> STreeNode:
        return self.tree.root

    def marked_map(self) -> dict[str, STreeNode]:
        return dict(self.marked)

    def marked_classes(self) -> frozenset[str]:
        return frozenset(name for name, _ in self.marked)

    def node_for(self, class_name: str) -> STreeNode | None:
        return self.marked_map().get(class_name)

    def connecting_path(
        self, first: str, second: str
    ) -> tuple[CMEdge, ...]:
        """Tree path between two marked classes (up to LCA, then down)."""
        nodes = self.marked_map()
        path_a = self.tree.path_from_root(nodes[first])
        path_b = self.tree.path_from_root(nodes[second])
        common = 0
        for edge_a, edge_b in zip(path_a, path_b):
            if edge_a != edge_b:
                break
            common += 1
        up = tuple(
            edge.cm_edge.reversed() for edge in reversed(path_a[common:])
        )
        down = tuple(edge.cm_edge for edge in path_b[common:])
        return up + down

    def cm_edges(self) -> tuple[CMEdge, ...]:
        return self.tree.cm_edges()

    def __str__(self) -> str:
        marked = ", ".join(name for name, _ in self.marked)
        return f"CSG[{self.origin}] anchored at {self.anchor} marking {{{marked}}}"


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def discovered_to_semantic_tree(
    tree: DiscoveredTree,
) -> SemanticTree:
    """Convert a search result into an s-tree (nodes are unique, copy 0)."""
    edges = [
        STreeEdge(STreeNode(edge.source), STreeNode(edge.target), edge)
        for edge in _bfs_order(tree)
    ]
    return SemanticTree(STreeNode(tree.root), edges)


def _bfs_order(tree: DiscoveredTree) -> list[CMEdge]:
    remaining = list(tree.edges)
    ordered: list[CMEdge] = []
    frontier = {tree.root}
    while remaining:
        progressed = False
        for edge in list(remaining):
            if edge.source in frontier:
                ordered.append(edge)
                frontier.add(edge.target)
                remaining.remove(edge)
                progressed = True
        if not progressed:
            # Disconnected edges (shouldn't happen for search output).
            ordered.extend(remaining)
            break
    return ordered


def csg_from_discovered(
    tree: DiscoveredTree, marked_classes: Iterable[str], origin: str
) -> CSG:
    semantic_tree = discovered_to_semantic_tree(tree)
    nodes = {node.cm_node: node for node in semantic_tree.nodes()}
    marked = tuple(
        sorted(
            (name, nodes[name])
            for name in set(marked_classes)
            if name in nodes
        )
    )
    return CSG(semantic_tree, marked, origin)


def csg_from_table(
    semantics: SchemaSemantics,
    table_name: str,
    lifted: Sequence[LiftedCorrespondence],
    side: str,
) -> CSG:
    """The CSG given by one pre-selected table's s-tree (Case A).

    Marked nodes are those carrying corresponded columns of this table.
    """
    tree = semantics.tree(table_name)
    marked: dict[str, STreeNode] = {}
    for item in lifted:
        column = (
            item.correspondence.source
            if side == "source"
            else item.correspondence.target
        )
        cls = item.source_class if side == "source" else item.target_class
        if column.table != table_name:
            continue
        marked.setdefault(cls, tree.column_node(column.name))
    return CSG(tree, tuple(sorted(marked.items())), f"table:{table_name}")


# ---------------------------------------------------------------------------
# Target-side CSG discovery
# ---------------------------------------------------------------------------


def find_target_csgs(
    semantics: SchemaSemantics,
    lifted: Sequence[LiftedCorrespondence],
) -> list[CSG]:
    """Target CSGs: Case A (single pre-selected tree) or Case B.

    When every corresponded target column lives in one table, that table's
    s-tree *is* the target CSG. Otherwise minimal functional trees are
    constructed over the target CM graph to connect the pre-selected
    trees' marked nodes (Case B); if none exists, each pre-selected tree
    is returned on its own (the correspondences will be split).
    """
    tables: dict[str, None] = {}
    for item in lifted:
        tables.setdefault(item.correspondence.target.table)
    if not tables:
        return []
    if len(tables) == 1:
        return [csg_from_table(semantics, next(iter(tables)), lifted, "target")]
    marked_classes = {item.target_class for item in lifted}
    cost_model = CostModel.from_edges(
        semantics.preselected_cm_edges(
            [item.correspondence.target for item in lifted]
        )
    )
    trees = minimal_functional_trees(
        semantics.graph, marked_classes, cost_model
    )
    if trees:
        return [
            csg_from_discovered(tree, marked_classes, "constructed")
            for tree in trees
        ]
    # No functional connection: the Section 3.3 rule applies on the
    # target side too — grow partial functional trees with minimally
    # lossy attachment paths.
    extended = extend_partial_trees(semantics, marked_classes, cost_model)
    if extended:
        return extended
    # Fall back to per-table CSGs; the caller pairs each separately.
    return [
        csg_from_table(semantics, table, lifted, "target") for table in tables
    ]


def extend_partial_trees(
    semantics: SchemaSemantics,
    marked_classes: Iterable[str],
    cost_model: CostModel,
    extra_bases: Sequence[CSG] = (),
    max_bases: int = 8,
) -> list[CSG]:
    """Partial functional trees grown by lossy attachments (Section 3.3).

    Bases are functional trees rooted at each marked class (covering
    whatever subset they functionally reach) plus any ``extra_bases``
    (e.g. Case A.1's anchored partial trees); bases of maximal coverage
    are extended first and the first coverage tier that fully connects
    the marked nodes wins.
    """
    marked = sorted(set(marked_classes))
    bases: list[CSG] = list(extra_bases)
    for root in marked:
        for tree, covered, _ in functional_trees_from_root(
            semantics.graph, root, marked, cost_model
        ):
            bases.append(csg_from_discovered(tree, covered, "partial"))
    seen: set[tuple] = set()
    unique_bases: list[CSG] = []
    for base in sorted(
        bases, key=lambda c: (-len(c.marked), len(c.tree.nodes()), str(c))
    ):
        signature = (
            base.tree.root,
            frozenset(str(edge) for edge in base.tree.edges),
        )
        if signature in seen:
            continue
        seen.add(signature)
        unique_bases.append(base)
    results: list[CSG] = []
    result_signatures: set[tuple] = set()
    best_coverage: int | None = None
    for base in unique_bases[:max_bases]:
        if best_coverage is not None and len(base.marked) < best_coverage:
            break
        missing = set(marked) - base.marked_classes()
        if not missing:
            continue
        for extended in extend_with_lossy_paths(
            semantics, base, missing, cost_model
        ):
            signature = frozenset(str(edge) for edge in extended.tree.edges)
            if signature in result_signatures:
                continue
            result_signatures.add(signature)
            results.append(extended)
        if results and best_coverage is None:
            best_coverage = len(base.marked)
    return results


def _lossy_csgs(
    semantics: SchemaSemantics,
    endpoints: list[str],
    cost_model: CostModel,
    max_edges: int = 6,
) -> list[CSG]:
    from repro.cm.reasoner import CMReasoner

    reasoner = CMReasoner.shared(semantics.model)
    start, end = endpoints

    def acceptable(path: tuple[CMEdge, ...]) -> bool:
        return reasoner.path_is_consistent(list(path))

    paths = minimally_lossy_paths(
        semantics.graph,
        start,
        end,
        cost_model,
        max_edges=max_edges,
        predicate=acceptable,
        # The consistency rule only inspects consecutive edge pairs, so
        # it is monotone: an inconsistent prefix can never extend into a
        # consistent path — prune the subtree before enumerating it.
        prefix_predicate=acceptable,
    )
    return [
        csg_from_discovered(DiscoveredTree(start, tuple(path)), endpoints, "lossy")
        for path in paths
    ]


# ---------------------------------------------------------------------------
# Source-side CSG discovery
# ---------------------------------------------------------------------------


def source_roots_for_anchor(
    target_csg: CSG, lifted: Sequence[LiftedCorrespondence]
) -> tuple[str, ...]:
    """Source classes corresponding to the target CSG's anchor (Case A.1)."""
    anchor_class = target_csg.anchor.cm_node
    roots: dict[str, None] = {}
    for item in lifted:
        if item.target_class == anchor_class:
            roots.setdefault(item.source_class)
    return tuple(roots)


def find_source_functional_csgs(
    semantics: SchemaSemantics,
    lifted: Sequence[LiftedCorrespondence],
    target_csg: CSG,
) -> list[CSG]:
    """Source CSGs via Cases A.1/A.2 (functional trees only)."""
    marked_classes = {item.source_class for item in lifted}
    cost_model = CostModel.from_edges(
        semantics.preselected_cm_edges(
            [item.correspondence.source for item in lifted]
        )
    )
    roots = source_roots_for_anchor(target_csg, lifted)
    results: list[CSG] = []
    if roots:
        # Case A.1: anchored at the node(s) corresponding to the target
        # anchor; cover as many marked nodes as possible. Tied minimal
        # trees are all kept as alternative candidates (Example 1.3).
        best: list[tuple[int, int, DiscoveredTree, frozenset[str]]] = []
        for root in roots:
            for tree, covered, cost in functional_trees_from_root(
                semantics.graph, root, marked_classes, cost_model
            ):
                if not covered:
                    continue
                best.append((-len(covered), cost, tree, covered))
        if best:
            best.sort(key=lambda item: (item[0], item[1], str(item[2])))
            top = best[0][:2]
            for entry in best:
                if entry[:2] == top:
                    results.append(
                        csg_from_discovered(entry[2], entry[3], "A.1")
                    )
    if not results:
        # Case A.2: no corresponding root — all minimal functional trees.
        for tree in minimal_functional_trees(
            semantics.graph, marked_classes, cost_model
        ):
            results.append(csg_from_discovered(tree, marked_classes, "A.2"))
    return results


def extend_with_lossy_paths(
    semantics: SchemaSemantics,
    base: CSG,
    missing: Iterable[str],
    cost_model: CostModel,
    max_edges: int = 6,
    max_alternatives: int = 3,
) -> list[CSG]:
    """Attach minimally lossy paths reaching the ``missing`` classes.

    This generalizes Section 3.3 beyond a single pair: a (possibly
    single-node) functional base tree is grown by the best lossy path
    from *any* of its nodes to each uncovered marked class — "connect as
    many nodes as possible [functionally] ... and, if necessary, look for
    minimally lossy joins". Paths are ranked by (reversals, cost) and the
    tied best attachments per class each yield an alternative CSG.
    """
    from repro.cm.reasoner import CMReasoner

    reasoner = CMReasoner.shared(semantics.model)

    def acceptable(path: tuple[CMEdge, ...]) -> bool:
        return reasoner.path_is_consistent(list(path))

    states: list[CSG] = [base]
    for target_class in sorted(set(missing)):
        next_states: list[CSG] = []
        for state in states:
            tree_classes = {node.cm_node for node in state.tree.nodes()}
            if target_class in tree_classes:
                # Already reachable: just mark it.
                nodes = {n.cm_node: n for n in state.tree.nodes()}
                next_states.append(
                    CSG(
                        state.tree,
                        tuple(
                            sorted(
                                dict(
                                    list(state.marked)
                                    + [(target_class, nodes[target_class])]
                                ).items()
                            )
                        ),
                        "mixed",
                    )
                )
                continue
            scored: list[tuple[int, int, str, tuple[CMEdge, ...]]] = []
            for start in sorted(tree_classes):
                for path in minimally_lossy_paths(
                    semantics.graph,
                    start,
                    target_class,
                    cost_model,
                    max_edges=max_edges,
                    predicate=acceptable,
                    # Pairwise check → monotone → safe on prefixes.
                    prefix_predicate=acceptable,
                ):
                    intermediate = {edge.target for edge in path[:-1]}
                    if intermediate & tree_classes:
                        continue  # would break tree shape
                    if path[-1].target in tree_classes:
                        continue
                    scored.append(
                        (
                            direction_reversals(path),
                            cost_model.path_cost(path),
                            start,
                            path,
                        )
                    )
            if not scored:
                continue
            scored.sort(key=lambda item: (item[0], item[1], item[2]))
            best = scored[0][:2]
            for reversals, cost, start, path in scored[:max_alternatives]:
                if (reversals, cost) != best:
                    break
                next_states.append(_attach_path(state, path, target_class))
        states = next_states
        if not states:
            return []
    return [state for state in states if state is not base]


def _attach_path(base: CSG, path: tuple[CMEdge, ...], marked_class: str) -> CSG:
    nodes = {node.cm_node: node for node in base.tree.nodes()}
    new_edges = list(base.tree.edges)
    current = nodes[path[0].source]
    for edge in path:
        child = STreeNode(edge.target)
        new_edges.append(STreeEdge(current, child, edge))
        nodes[edge.target] = child
        current = child
    tree = SemanticTree(base.tree.root, new_edges)
    marked = dict(base.marked)
    marked[marked_class] = nodes[marked_class]
    return CSG(tree, tuple(sorted(marked.items())), "mixed")


def single_node_csgs(marked_classes: Iterable[str]) -> list[CSG]:
    """One trivial CSG per marked class (extension seeds)."""
    result = []
    for name in sorted(set(marked_classes)):
        node = STreeNode(name)
        result.append(CSG(SemanticTree(node), ((name, node),), "seed"))
    return result


def find_source_lossy_csgs(
    semantics: SchemaSemantics,
    lifted: Sequence[LiftedCorrespondence],
    target_csg: CSG,
    max_edges: int = 6,
) -> list[CSG]:
    """Source CSGs via minimally lossy paths (Section 3.3).

    Applies when the target connection between two marked classes is
    non-functional: source paths between the two corresponding classes are
    enumerated and the minimally lossy, consistent ones kept.
    """
    marked_classes = sorted({item.source_class for item in lifted})
    if len(marked_classes) != 2:
        return []
    start, end = marked_classes
    cost_model = CostModel.from_edges(
        semantics.preselected_cm_edges(
            [item.correspondence.source for item in lifted]
        )
    )
    from repro.cm.reasoner import CMReasoner

    reasoner = CMReasoner.shared(semantics.model)

    def acceptable(path: tuple[CMEdge, ...]) -> bool:
        return reasoner.path_is_consistent(list(path))

    paths = minimally_lossy_paths(
        semantics.graph,
        start,
        end,
        cost_model,
        max_edges=max_edges,
        predicate=acceptable,
        # Pairwise check → monotone → safe on prefixes.
        prefix_predicate=acceptable,
    )
    results = []
    for path in paths:
        tree = DiscoveredTree(start, tuple(path))
        results.append(csg_from_discovered(tree, marked_classes, "lossy"))
    return results
