"""Content fingerprints for discovery inputs and stage artifacts.

Every cache in the discovery stack — the service's result cache, the
batch layer's schema-pair grouping, and the staged engine's
:class:`~repro.discovery.engine.cache.StageCache` — keys on *content*,
never on object identity: two equal-but-distinct inputs (a dataset
reloaded from disk, a scenario rebuilt from a wire payload) must land on
the same cache entry. This module owns the hashing conventions:

* :func:`semantics_content_key` — one :class:`SchemaSemantics`' full
  content (schema, conceptual model, s-trees), cached on the object
  because semantics are immutable after construction;
* :func:`scenario_fingerprint` — everything that determines one
  ``scenario.run()`` output (both semantics, the ordered correspondence
  list, the mapper options);
* :func:`csg_content_key` — one CSG's structure (root, edges, marked
  nodes, origin), mirroring the translation-memo key;
* :func:`stage_fingerprint` — the per-stage chaining hash of the staged
  engine: a stage's fingerprint covers its name, its upstream artifact
  fingerprints, and the options subset it reads, so an edit invalidates
  exactly the stages downstream of the change (see
  ``docs/architecture.md``).

All fingerprints are SHA-256 hex digests over stable ``repr`` text, so
they survive pickling, process boundaries, and interpreter restarts.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.discovery.csg import CSG
    from repro.semantics.lav import SchemaSemantics


def content_hash(*parts: Any) -> str:
    """SHA-256 of the stable ``repr`` of ``parts``."""
    return hashlib.sha256(repr(parts).encode("utf-8")).hexdigest()


def semantics_content_key(semantics: "SchemaSemantics") -> str:
    """A stable fingerprint of a :class:`SchemaSemantics`' full content.

    Keys on this instead of ``id()`` so equal-but-distinct objects (e.g.
    scenarios rebuilt from a dataset loader) share cache entries and
    batch workers. The fingerprint covers the schema (tables, columns,
    keys, RICs), the conceptual model (cardinalities, ISA, disjointness,
    semantic types — via ``model_to_dict``), and every s-tree; it is
    cached on the object because semantics are immutable after
    construction.
    """
    cached = getattr(semantics, "_batch_content_key", None)
    if cached is not None:
        return cached
    from repro.cm.serialize import model_to_dict

    schema = semantics.schema
    spec = repr(
        (
            schema.name,
            tuple(
                (table.name, table.columns, table.primary_key)
                for table in schema
            ),
            tuple(str(ric) for ric in schema.rics),
            model_to_dict(semantics.model),
            tuple(
                (name, semantics.tree(name).describe())
                for name in semantics.tables_with_semantics()
            ),
        )
    )
    key = hashlib.sha256(spec.encode("utf-8")).hexdigest()
    semantics._batch_content_key = key  # type: ignore[attr-defined]
    return key


def discovery_fingerprint(
    source: "SchemaSemantics",
    target: "SchemaSemantics",
    correspondences,
    mapper_options: tuple = (),
) -> str:
    """The scenario content fingerprint, from its loose components.

    :func:`scenario_fingerprint` delegates here; ``SemanticMapper`` uses
    this directly to stamp every :class:`DiscoveryResult` (and the
    :class:`~repro.mappings.expression.MappingSet` it carries) without
    building a :class:`~repro.discovery.batch.Scenario` first.
    """
    spec = repr(
        (
            semantics_content_key(source),
            semantics_content_key(target),
            tuple(str(c) for c in correspondences),
            mapper_options,
        )
    )
    return hashlib.sha256(spec.encode("utf-8")).hexdigest()


def scenario_fingerprint(scenario) -> str:
    """A stable *content* fingerprint of one discovery scenario.

    Covers everything that determines the output of ``scenario.run()`` —
    both schema semantics (via :func:`semantics_content_key`), the
    correspondence list (order-sensitively, matching
    :class:`~repro.correspondences.CorrespondenceSet` semantics), and
    the mapper options — and deliberately excludes ``scenario_id``,
    which is caller-chosen labelling. Two scenarios with equal
    fingerprints produce identical candidates, which is what makes the
    fingerprint safe as a content-addressed cache key (see
    ``repro.service.cache``).
    """
    return discovery_fingerprint(
        scenario.source,
        scenario.target,
        scenario.correspondences,
        scenario.mapper_options,
    )


def csg_content_key(csg: "CSG") -> tuple:
    """One CSG's structural identity: root, edges, marked nodes, origin.

    The same shape the translation memo keys on, plus ``origin``
    (Case A.1 / A.2 / lossy / ...), which feeds candidate notes and
    ranking and therefore belongs to the engine's unit identity.
    """
    return (
        str(csg.tree.root),
        tuple(
            (
                str(edge.parent),
                edge.cm_edge.source,
                edge.cm_edge.label,
                edge.cm_edge.target,
                str(edge.child),
            )
            for edge in csg.tree.edges
        ),
        tuple((name, str(node)) for name, node in csg.marked),
        csg.origin,
    )


def stage_fingerprint(stage: str, *parts: Any) -> str:
    """The fingerprint of one stage's input: name + upstream + options.

    ``parts`` carries the upstream artifact fingerprints and the
    ``(field, value)`` options subset the stage reads; anything *not*
    hashed here (``explain``, ``trace``, cache sizing) must never change
    a stage's output.
    """
    return content_hash(stage, *parts)
