"""Minimal functional trees and lossy-path search over CM graphs.

The discovery algorithm's graph-theoretic core (Sections 3.2–3.3):

* *functional trees* — trees all of whose root-to-node paths follow
  functional edges — correspond to lossless joins, so CSGs prefer them;
* *minimal functional trees* are Steiner trees over the functional
  subgraph: minimum cost (edges belonging to pre-selected s-trees are
  free; a hop through a reified relationship node counts as one edge),
  tie-broken by most pre-selected edges then fewest nodes, and finally
  filtered for node-set minimality (the "Intern" rule of Case A.2);
* when marked nodes admit no functional connection — or the target
  connection is many-to-many — the search falls back to *minimally lossy
  paths*: simple paths scored by the number of direction reversals
  (Section 3.3), then by cost.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.cm.graph import CMEdge, CMGraph
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters
from repro.perf.index import GraphIndex

#: Integer edge-cost scale: a plain edge costs 2, so a role edge can cost
#: 1 and a reified hop (two role edges) totals one plain edge, per the
#: paper's "a path of length two passing through a reified relationship
#: node should be counted as a path of length 1".
PLAIN_EDGE_COST = 2
ROLE_EDGE_COST = 1
PRESELECTED_COST = 0


def edge_key(edge: CMEdge) -> tuple[str, str, str]:
    """Hashable identity of a directed CM edge."""
    return (edge.source, edge.label, edge.target)


@dataclass(frozen=True)
class CostModel:
    """Edge costs for tree/path search.

    ``preselected`` holds :func:`edge_key` values of edges appearing in
    pre-selected s-trees (in either direction); those edges are free.
    """

    preselected: frozenset[tuple[str, str, str]] = frozenset()

    @classmethod
    def from_edges(cls, edges: Iterable[CMEdge]) -> "CostModel":
        keys = set()
        for edge in edges:
            keys.add(edge_key(edge))
            keys.add(edge_key(edge.reversed()))
        return cls(frozenset(keys))

    def cost(self, edge: CMEdge) -> int:
        if edge_key(edge) in self.preselected:
            return PRESELECTED_COST
        if edge.kind == CMEdge.KIND_ROLE:
            return ROLE_EDGE_COST
        return PLAIN_EDGE_COST

    def path_cost(self, edges: Sequence[CMEdge]) -> int:
        return sum(self.cost(edge) for edge in edges)

    def preselected_count(self, edges: Sequence[CMEdge]) -> int:
        return sum(1 for edge in edges if edge_key(edge) in self.preselected)


@dataclass(frozen=True)
class DiscoveredTree:
    """A tree found in a CM graph: a root plus parent→child edges."""

    root: str
    edges: tuple[CMEdge, ...]

    def nodes(self) -> frozenset[str]:
        result = {self.root}
        for edge in self.edges:
            result.add(edge.source)
            result.add(edge.target)
        return frozenset(result)

    def edge_keys(self) -> frozenset[tuple[str, str, str]]:
        return frozenset(edge_key(edge) for edge in self.edges)

    def undirected_edge_keys(self) -> frozenset[frozenset[tuple[str, str, str]]]:
        """Direction-insensitive edge identity (for deduplication)."""
        return frozenset(
            frozenset({edge_key(edge), edge_key(edge.reversed())})
            for edge in self.edges
        )

    def path_from_root(self, node: str) -> tuple[CMEdge, ...]:
        """The unique root→node path (nodes are unique in a tree)."""
        parent: dict[str, CMEdge] = {}
        for edge in self.edges:
            parent[edge.target] = edge
        path: list[CMEdge] = []
        current = node
        seen = set()
        while current != self.root:
            if current in seen or current not in parent:
                raise ValueError(f"node {node!r} not reachable from root")
            seen.add(current)
            edge = parent[current]
            path.append(edge)
            current = edge.source
        return tuple(reversed(path))

    def connecting_path(self, first: str, second: str) -> tuple[CMEdge, ...]:
        """The tree path first→second: up to the LCA (reversed), then down."""
        to_first = self.path_from_root(first)
        to_second = self.path_from_root(second)
        common = 0
        for a, b in zip(to_first, to_second):
            if edge_key(a) != edge_key(b):
                break
            common += 1
        up = tuple(edge.reversed() for edge in reversed(to_first[common:]))
        down = to_second[common:]
        return up + down

    def is_functional(self) -> bool:
        return all(edge.is_functional for edge in self.edges)

    def __str__(self) -> str:
        if not self.edges:
            return f"⟨{self.root}⟩"
        rendered = "; ".join(str(edge) for edge in self.edges)
        return f"⟨{self.root}: {rendered}⟩"


#: Cap on tied shortest paths kept per node during search.
MAX_TIED_PATHS = 8


def _path_sort_key(path: Sequence[CMEdge]) -> tuple:
    """Total deterministic order on paths (by their edge-key sequences)."""
    return tuple(edge_key(edge) for edge in path)


def _functional_shortest_paths(
    graph: CMGraph,
    root: str,
    cost_model: CostModel,
    adjacency: Mapping[str, tuple[CMEdge, ...]] | None = None,
) -> dict[str, tuple[int, tuple[tuple[CMEdge, ...], ...]]]:
    """Dijkstra over functional edges: node → (cost, tied shortest paths).

    All equal-cost shortest paths are retained (capped) so callers can
    enumerate alternative minimal trees — Example 1.3 needs both the
    ``chairOf`` and the ``deanOf`` connection as separate candidates.
    Tied paths are kept sorted (:func:`_path_sort_key`) before the
    ``MAX_TIED_PATHS`` cap is applied, so which ties survive never
    depends on heap pop order, and every truncation is counted under
    ``tied_paths_dropped`` instead of happening silently.

    ``adjacency`` is the precomputed functional adjacency of a
    :class:`~repro.perf.index.GraphIndex`; without it, edges are read
    (and re-sorted) from the graph on every visit, as the seed did.
    """
    if adjacency is not None:
        edges_from = lambda node: adjacency.get(node, ())  # noqa: E731
    else:
        edges_from = graph.functional_edges_from
    distances: dict[str, tuple[int, tuple[tuple[CMEdge, ...], ...]]] = {
        root: (0, ((),))
    }
    counter = 0
    heap: list[tuple[int, int, str]] = [(0, counter, root)]
    finalized: set[str] = set()
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in finalized:
            continue
        if distances[node][0] < dist:
            continue
        finalized.add(node)
        node_cost, node_paths = distances[node]
        for edge in edges_from(node):
            step = cost_model.cost(edge)
            candidate = node_cost + step
            extensions = tuple(path + (edge,) for path in node_paths)
            current = distances.get(edge.target)
            if current is None or candidate < current[0]:
                counter += 1
                distances[edge.target] = (
                    candidate,
                    extensions[:MAX_TIED_PATHS],
                )
                heapq.heappush(heap, (candidate, counter, edge.target))
            elif candidate == current[0] and edge.target not in finalized:
                merged = sorted(
                    current[1]
                    + tuple(
                        path
                        for path in extensions
                        if path not in current[1]
                    ),
                    key=_path_sort_key,
                )
                if len(merged) > MAX_TIED_PATHS:
                    perf_counters.record(
                        "tied_paths_dropped", len(merged) - MAX_TIED_PATHS
                    )
                distances[edge.target] = (
                    candidate,
                    tuple(merged[:MAX_TIED_PATHS]),
                )
    return distances


# ---------------------------------------------------------------------------
# Distance oracle — backward tables and A*-pruned forward search
# ---------------------------------------------------------------------------


def _backward_functional_distances(
    index: GraphIndex, target: str, cost_model: CostModel
) -> dict[str, int]:
    """``node → min functional-path cost node→target`` (exact, no paths).

    One plain Dijkstra over the reversed functional adjacency; forward
    edges keep their forward cost, so the table mirrors the forward
    search's distances exactly. Missing nodes cannot reach ``target``
    at all.
    """
    reverse = index.reverse_functional_edges()
    distances: dict[str, int] = {target: 0}
    heap: list[tuple[int, str]] = [(0, target)]
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > distances[node]:
            continue
        for edge in reverse.get(node, ()):
            candidate = dist + cost_model.cost(edge)
            previous = distances.get(edge.source)
            if previous is None or candidate < previous:
                distances[edge.source] = candidate
                heapq.heappush(heap, (candidate, edge.source))
    return distances


def _backward_tables(
    index: GraphIndex, targets: Iterable[str], cost_model: CostModel
) -> dict[str, dict[str, int]]:
    """Per-target backward distance tables, cached on the graph's index."""
    return {
        target: index.oracle_table(
            ("bd", target, cost_model),
            lambda target=target: _backward_functional_distances(
                index, target, cost_model
            ),
        )
        for target in sorted(set(targets))
    }


def _targeted_shortest_paths(
    graph: CMGraph,
    root: str,
    cost_model: CostModel,
    adjacency: Mapping[str, tuple[CMEdge, ...]],
    backward: Mapping[str, Mapping[str, int]],
    root_bounds: Mapping[str, int],
) -> dict[str, tuple[int, tuple[tuple[CMEdge, ...], ...]]]:
    """A*-pruned Dijkstra: exact target entries at a fraction of the work.

    Same algorithm (and the same deterministic tied-path semantics) as
    :func:`_functional_shortest_paths`, with two oracle-derived exact
    cuts:

    * a finalized node ``v`` is only *expanded* when some target ``t``
      satisfies ``dist(v) + bd_t(v) <= bd_t(root)`` — i.e. ``v`` lies on
      a shortest ``root→t`` path. A node failing the test contributes no
      tied shortest path to any node that lies on one, so every
      ``paths[target]`` entry is bit-for-bit what the blind sweep
      produces;
    * the sweep stops once every oracle-reachable target is finalized —
      later pops can no longer merge into a finalized entry.

    ``root_bounds`` maps each reachable target to ``bd_t(root)``;
    unreachable targets are simply absent (matching the blind sweep,
    where they never enter the table).
    """
    edges_from = lambda node: adjacency.get(node, ())  # noqa: E731
    checks = tuple(
        (backward[target], bound) for target, bound in root_bounds.items()
    )
    pending = set(root_bounds)
    distances: dict[str, tuple[int, tuple[tuple[CMEdge, ...], ...]]] = {
        root: (0, ((),))
    }
    counter = 0
    heap: list[tuple[int, int, str]] = [(0, counter, root)]
    finalized: set[str] = set()
    while heap:
        dist, _, node = heapq.heappop(heap)
        if node in finalized:
            continue
        if distances[node][0] < dist:
            continue
        finalized.add(node)
        if node in pending:
            pending.discard(node)
            if not pending:
                break
        on_tight_path = False
        for table, bound in checks:
            remaining = table.get(node)
            if remaining is not None and dist + remaining <= bound:
                on_tight_path = True
                break
        if not on_tight_path:
            perf_counters.record("bound_prunes")
            continue
        perf_counters.record("astar_expansions")
        node_cost, node_paths = distances[node]
        for edge in edges_from(node):
            step = cost_model.cost(edge)
            candidate = node_cost + step
            extensions = tuple(path + (edge,) for path in node_paths)
            current = distances.get(edge.target)
            if current is None or candidate < current[0]:
                counter += 1
                distances[edge.target] = (
                    candidate,
                    extensions[:MAX_TIED_PATHS],
                )
                heapq.heappush(heap, (candidate, counter, edge.target))
            elif candidate == current[0] and edge.target not in finalized:
                merged = sorted(
                    current[1]
                    + tuple(
                        path
                        for path in extensions
                        if path not in current[1]
                    ),
                    key=_path_sort_key,
                )
                if len(merged) > MAX_TIED_PATHS:
                    perf_counters.record(
                        "tied_paths_dropped", len(merged) - MAX_TIED_PATHS
                    )
                distances[edge.target] = (
                    candidate,
                    tuple(merged[:MAX_TIED_PATHS]),
                )
    return distances


def functional_trees_from_root(
    graph: CMGraph,
    root: str,
    targets: Iterable[str],
    cost_model: CostModel | None = None,
    max_combinations: int = 64,
) -> list[tuple[DiscoveredTree, frozenset[str], int]]:
    """Minimal functional trees rooted at ``root`` reaching ``targets``.

    Unreachable targets are left out (Case A.1: "connect as many nodes as
    possible ... and leave the rest unconnected"). Tied shortest paths are
    enumerated, so alternative connections of equal cost — Example 1.3's
    ``chairOf`` vs ``deanOf`` — each yield their own tree. Only trees of
    minimal union cost are returned.

    Shortest-path tables are read through the graph's
    :class:`~repro.perf.index.GraphIndex`, so repeated roots across
    target-CSG iterations (and across whole ``discover()`` calls on the
    same graph) reuse one Dijkstra sweep per ``(root, cost_model)``.
    With the distance oracle enabled, the sweep is A*-pruned against
    per-target backward tables (:func:`_targeted_shortest_paths`) and
    cached per ``(root, reachable targets, cost_model)`` instead — the
    target entries are identical either way.
    """
    cost_model = cost_model or CostModel()
    index = GraphIndex.of(graph)
    target_set = set(targets)
    if perf_config.distance_oracle_enabled() and target_set:
        backward = _backward_tables(index, target_set, cost_model)
        root_bounds = {
            target: table[root]
            for target, table in backward.items()
            if root in table
        }
        paths = index.shortest_paths(
            (root, frozenset(root_bounds)),
            cost_model,
            lambda: _targeted_shortest_paths(
                graph,
                root,
                cost_model,
                index.functional_adjacency,
                backward,
                root_bounds,
            ),
        )
    else:
        paths = index.shortest_paths(
            root,
            cost_model,
            lambda: _functional_shortest_paths(
                graph, root, cost_model, index.functional_adjacency
            ),
        )
    covered = frozenset(t for t in target_set if t in paths)
    choices = [paths[target][1] for target in sorted(covered)]
    results: list[tuple[int, DiscoveredTree]] = []
    seen: set[frozenset] = set()
    for index, combination in enumerate(itertools.product(*choices)):
        if index >= max_combinations:
            break
        edges: dict[tuple[str, str, str], CMEdge] = {}
        parents: dict[str, str] = {}
        valid = True
        total = 0
        for path in combination:
            for edge in path:
                key = edge_key(edge)
                if key in edges:
                    continue
                if edge.target in parents or edge.target == root:
                    # A second incoming edge breaks tree shape; such a
                    # union of tied paths is not a valid candidate.
                    valid = False
                    break
                parents[edge.target] = edge.source
                edges[key] = edge
                total += cost_model.cost(edge)
            if not valid:
                break
        if not valid:
            continue
        signature = frozenset(edges)
        if signature in seen:
            continue
        seen.add(signature)
        results.append((total, DiscoveredTree(root, tuple(edges.values()))))
    if not results:
        return []
    best = min(total for total, _ in results)
    return [
        (tree, covered, total)
        for total, tree in results
        if total == best
    ]


def functional_tree_from_root(
    graph: CMGraph,
    root: str,
    targets: Iterable[str],
    cost_model: CostModel | None = None,
) -> tuple[DiscoveredTree, frozenset[str], int]:
    """First minimal functional tree from ``root`` (single-result helper)."""
    trees = functional_trees_from_root(graph, root, targets, cost_model)
    if not trees:
        return DiscoveredTree(root, ()), frozenset(), 0
    return trees[0]


def minimal_functional_trees(
    graph: CMGraph,
    targets: Iterable[str],
    cost_model: CostModel | None = None,
    candidate_roots: Iterable[str] | None = None,
) -> list[DiscoveredTree]:
    """All minimal functional trees covering every marked node (Case A.2).

    Candidates are built per root via shortest functional paths; kept are
    those with (1) minimal cost, (2) — among those — the most pre-selected
    edges and fewest nodes, and (3) node-set minimality: a tree whose node
    set strictly contains another candidate's node set is discarded, which
    is exactly why the tree rooted at ``Intern`` loses to the tree rooted
    at ``Project`` in the paper's example.
    """
    cost_model = cost_model or CostModel()
    target_set = set(targets)
    roots = (
        tuple(candidate_roots)
        if candidate_roots is not None
        else graph.class_nodes()
    )
    if perf_config.distance_oracle_enabled() and target_set:
        # A root missing from any target's backward table cannot cover
        # that target, so its whole per-root search would be discarded
        # by the ``covered != target_set`` check below — skip it.
        index = GraphIndex.of(graph)
        tables = list(_backward_tables(index, target_set, cost_model).values())
        qualified = tuple(
            root
            for root in roots
            if all(root in table for table in tables)
        )
        if len(qualified) < len(roots):
            perf_counters.record("bound_prunes", len(roots) - len(qualified))
        roots = qualified
    complete: list[tuple[int, int, int, DiscoveredTree]] = []
    for root in roots:
        for tree, covered, cost in functional_trees_from_root(
            graph, root, target_set, cost_model
        ):
            if covered != frozenset(target_set):
                continue
            complete.append(
                (
                    cost,
                    -cost_model.preselected_count(tree.edges),
                    len(tree.nodes()),
                    tree,
                )
            )
    if not complete:
        return []
    # Node-set minimality first (independent of cost ranking).
    trees = [entry[3] for entry in complete]
    node_sets = [tree.nodes() for tree in trees]
    minimal_entries = []
    for index, entry in enumerate(complete):
        if any(
            node_sets[other] < node_sets[index]
            for other in range(len(trees))
            if other != index
        ):
            continue
        minimal_entries.append(entry)
    best = min(entry[:3] for entry in minimal_entries)
    survivors = [
        entry[3] for entry in minimal_entries if entry[:3] == best
    ]
    # Deduplicate trees with identical undirected edge sets (different
    # roots of the same tree yield the same conceptual subgraph).
    unique: list[DiscoveredTree] = []
    seen: set[frozenset] = set()
    for tree in survivors:
        signature = tree.undirected_edge_keys() or frozenset({tree.root})
        if signature not in seen:
            seen.add(signature)
            unique.append(tree)
    return unique


# ---------------------------------------------------------------------------
# Lossy (non-functional) path search — Section 3.3
# ---------------------------------------------------------------------------


def expanded_functionality_profile(edges: Sequence[CMEdge]) -> list[bool]:
    """Up/down steps of a path, with many-many edges in reified form.

    Each step is ``True`` for "down" (along a functional direction) and
    ``False`` for "up" (against one):

    * an edge functional in **both** directions (ISA) is level — skipped,
      so reversal counts are symmetric under path reversal;
    * functional forward only → one down step;
    * functional backward only → one up step;
    * functional in neither direction (a many-many hop, i.e. an elided
      reified node ``--role⁻-- R◇ --role--``) → up then down.
    """
    profile: list[bool] = []
    for edge in edges:
        forward = edge.is_functional
        backward = edge.backward_card.is_functional
        if forward and backward:
            continue  # level step: no lossy potential either way
        if forward:
            profile.append(True)
        elif backward:
            profile.append(False)
        else:
            profile.extend((False, True))
    return profile


def direction_reversals(edges: Sequence[CMEdge]) -> int:
    """Lossy-join score: up/down switches along the path (Section 3.3).

    Symmetric: a path and its reverse score the same number of reversals.
    """
    profile = expanded_functionality_profile(edges)
    reversals = 0
    for previous, current in zip(profile, profile[1:]):
        if previous != current:
            reversals += 1
    return reversals


def _make_out_edges(
    graph: CMGraph, index: GraphIndex
) -> Callable[[str], tuple[CMEdge, ...]]:
    """Adjacency lookup through the index, falling back to the graph.

    The fallback preserves the graph's error behaviour for nodes the
    index does not cover (e.g. an unknown start node still raises).
    """
    adjacency = index.adjacency

    def out_edges(node: str) -> tuple[CMEdge, ...]:
        edges = adjacency.get(node)
        if edges is None:
            return graph.edges_from(node)
        return edges

    return out_edges


def simple_paths(
    graph: CMGraph,
    start: str,
    end: str,
    max_edges: int = 6,
) -> Iterator[tuple[CMEdge, ...]]:
    """All simple (node-repetition-free) paths start→end up to a bound.

    Iterative depth-first enumeration (the seed recursed, rebuilding a
    frozenset per step); yields in the same pre-order as the recursive
    version. A path stops at ``end`` — paths never pass through it.
    """
    out_edges = _make_out_edges(graph, GraphIndex.of(graph))
    path: list[CMEdge] = []
    seen: set[str] = {start}
    stack: list[Iterator[CMEdge]] = [iter(out_edges(start))]
    while stack:
        edge = next(stack[-1], None)
        if edge is None:
            stack.pop()
            if path:
                seen.discard(path.pop().target)
            continue
        if edge.target in seen:
            continue
        if edge.target == end:
            yield tuple(path) + (edge,)
            continue
        if len(path) + 1 >= max_edges:
            continue
        path.append(edge)
        seen.add(edge.target)
        stack.append(iter(out_edges(edge.target)))


def _extend_reversal_state(
    reversals: int, last_step: bool | None, edge: CMEdge
) -> tuple[int, bool | None]:
    """Fold one edge into the incremental (reversals, last step) state.

    Mirrors :func:`expanded_functionality_profile` edge-by-edge, so the
    running count of a prefix equals ``direction_reversals(prefix)`` —
    and, both the count and the path cost being monotone under
    extension, a prefix already worse than the best complete path can be
    pruned.
    """
    forward = edge.is_functional
    backward = edge.backward_card.is_functional
    if forward and backward:
        return reversals, last_step
    if forward:
        steps: tuple[bool, ...] = (True,)
    elif backward:
        steps = (False,)
    else:
        steps = (False, True)
    for step in steps:
        if last_step is not None and step != last_step:
            reversals += 1
        last_step = step
    return reversals, last_step


def _lossy_bound_tables(
    index: GraphIndex, end: str, cost_model: CostModel
) -> tuple[dict[str, int], dict[tuple[str, bool | None], int]]:
    """Admissible completion bounds for the lossy branch-and-bound.

    Returns ``(cost_to_end, reversals_to_end)``:

    * ``cost_to_end[v]`` — minimum cost of *any* path ``v→end`` over the
      full adjacency (simple paths are a subset, so this lower-bounds
      every completion); missing nodes cannot reach ``end`` at all;
    * ``reversals_to_end[(v, f)]`` — minimum *internal* direction
      reversals of any path ``v→end`` whose first non-level profile step
      is ``f`` (``None`` = an all-level path, e.g. pure ISA hops). The
      junction reversal against the prefix's last step is added by the
      caller; see :func:`_extend_reversal_state` for the step algebra.

    Both are single backward Dijkstras — the second over the tripled
    state space ``(node, first remaining step ∈ {None, up, down})``.
    """
    reverse = index.reverse_edges()
    cost_to_end: dict[str, int] = {end: 0}
    heap: list[tuple[int, str]] = [(0, end)]
    while heap:
        dist, node = heapq.heappop(heap)
        if dist > cost_to_end[node]:
            continue
        for edge in reverse.get(node, ()):
            candidate = dist + cost_model.cost(edge)
            previous = cost_to_end.get(edge.source)
            if previous is None or candidate < previous:
                cost_to_end[edge.source] = candidate
                heapq.heappush(heap, (candidate, edge.source))

    reversals_to_end: dict[tuple[str, bool | None], int] = {(end, None): 0}
    counter = 0
    state_heap: list[tuple[int, int, str, bool | None]] = [(0, 0, end, None)]
    while state_heap:
        value, _, node, first = heapq.heappop(state_heap)
        if value > reversals_to_end[(node, first)]:
            continue

        def relax(state: tuple[str, bool | None], candidate: int) -> None:
            nonlocal counter
            previous = reversals_to_end.get(state)
            if previous is None or candidate < previous:
                reversals_to_end[state] = candidate
                counter += 1
                heapq.heappush(
                    state_heap, (candidate, counter, state[0], state[1])
                )

        for edge in reverse.get(node, ()):
            forward = edge.is_functional
            backward = edge.backward_card.is_functional
            if forward and backward:
                # Level edge: passes the remaining-profile state through.
                relax((edge.source, first), value)
            elif forward:
                # One "down" step, then the rest of the path.
                junction = 0 if first in (None, True) else 1
                relax((edge.source, True), value + junction)
            elif backward:
                # One "up" step.
                junction = 0 if first in (None, False) else 1
                relax((edge.source, False), value + junction)
            else:
                # Many-many hop: "up" then "down" (one internal reversal).
                junction = 0 if first in (None, True) else 1
                relax((edge.source, False), value + 1 + junction)
    return cost_to_end, reversals_to_end


def _reversal_bound(
    reversals_to_end: Mapping[tuple[str, bool | None], int],
    node: str,
    last_step: bool | None,
) -> int:
    """Min extra reversals of any completion from ``node`` (admissible)."""
    best: int | None = None
    for first in (None, True, False):
        value = reversals_to_end.get((node, first))
        if value is None:
            continue
        if last_step is not None and first is not None and first != last_step:
            value += 1
        if best is None or value < best:
            best = value
    return 0 if best is None else best


def minimally_lossy_paths(
    graph: CMGraph,
    start: str,
    end: str,
    cost_model: CostModel | None = None,
    max_edges: int = 6,
    predicate: Callable[[tuple[CMEdge, ...]], bool] | None = None,
    prefix_predicate: Callable[[tuple[CMEdge, ...]], bool] | None = None,
) -> list[tuple[CMEdge, ...]]:
    """Paths start→end ranked by (reversals, cost); best group returned.

    ``predicate`` filters candidate paths (e.g. "composed category must be
    many-many", or a consistency check); by default all simple paths
    qualify. ``prefix_predicate`` is an optional *monotone* filter on
    path prefixes: returning ``False`` must imply that every extension
    would fail ``predicate`` (e.g. the CM reasoner's pairwise ISA
    disjointness check). Failing prefixes prune their whole subtree
    without changing the surviving set.

    Implemented as an iterative branch-and-bound: the (reversals, cost)
    score of a partial path is a lower bound for every completion, so
    once a complete accepted path scores ``best``, any prefix scoring
    strictly worse is abandoned (counted under ``lossy_paths_pruned``).
    With the distance oracle enabled the bound is tightened by exact
    remaining-cost and remaining-reversal tables
    (:func:`_lossy_bound_tables`), so a prefix is dropped as soon as
    *no completion* can tie the incumbent — oracle-strengthened prunes
    are additionally counted under ``bound_prunes``. The surviving set
    and its order are identical to exhaustively enumerating and
    filtering, as the seed did.
    """
    cost_model = cost_model or CostModel()
    index = GraphIndex.of(graph)
    out_edges = _make_out_edges(graph, index)
    bounds: tuple[dict, dict] | None = None
    if perf_config.distance_oracle_enabled():
        bounds = index.oracle_table(
            ("lossy", end, cost_model),
            lambda: _lossy_bound_tables(index, end, cost_model),
        )
    best: tuple[int, int] | None = None
    found: list[tuple[int, int, tuple[CMEdge, ...]]] = []
    path: list[CMEdge] = []
    seen: set[str] = {start}
    # Each frame: the node's edge iterator plus the incremental
    # (reversals, last profile step, cost) state of the path so far.
    stack: list[tuple[Iterator[CMEdge], int, bool | None, int]] = [
        (iter(out_edges(start)), 0, None, 0)
    ]
    while stack:
        iterator, reversals, last_step, cost = stack[-1]
        edge = next(iterator, None)
        if edge is None:
            stack.pop()
            if path:
                seen.discard(path.pop().target)
            continue
        if edge.target in seen:
            continue
        perf_counters.record("lossy_paths_expanded")
        new_reversals, new_last = _extend_reversal_state(
            reversals, last_step, edge
        )
        new_cost = cost + cost_model.cost(edge)
        if bounds is not None:
            cost_to_end, reversals_to_end = bounds
            remaining_cost = cost_to_end.get(edge.target)
            if remaining_cost is None:
                # ``end`` is unreachable from here even on non-simple
                # paths: no completion exists at all.
                perf_counters.record("lossy_paths_pruned")
                perf_counters.record("bound_prunes")
                continue
            if best is not None:
                remaining_reversals = _reversal_bound(
                    reversals_to_end, edge.target, new_last
                )
                if (
                    new_reversals + remaining_reversals,
                    new_cost + remaining_cost,
                ) > best:
                    perf_counters.record("lossy_paths_pruned")
                    if remaining_reversals or remaining_cost:
                        perf_counters.record("bound_prunes")
                    continue
        elif best is not None and (new_reversals, new_cost) > best:
            perf_counters.record("lossy_paths_pruned")
            continue
        if prefix_predicate is not None and not prefix_predicate(
            tuple(path) + (edge,)
        ):
            perf_counters.record("lossy_prefix_skips")
            continue
        if edge.target == end:
            candidate = tuple(path) + (edge,)
            if predicate is None or predicate(candidate):
                score = (new_reversals, new_cost)
                if best is None or score < best:
                    best = score
                found.append((new_reversals, new_cost, candidate))
            continue
        if len(path) + 1 >= max_edges:
            continue
        path.append(edge)
        seen.add(edge.target)
        stack.append(
            (iter(out_edges(edge.target)), new_reversals, new_last, new_cost)
        )
    if best is None:
        return []
    survivors = [entry for entry in found if (entry[0], entry[1]) == best]
    survivors.sort(key=lambda entry: _path_text(entry[2]))
    return [entry_path for _, _, entry_path in survivors]


def _path_text(path: Sequence[CMEdge]) -> str:
    return "/".join(edge.label for edge in path)
