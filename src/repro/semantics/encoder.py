"""The encoding algorithm: s-trees → conjunctive formulas (Section 2).

The encoding introduces one object variable per s-tree node, emits a unary
class atom per node, a binary relationship atom per tree edge, and a
binary attribute atom per column — exactly the paper's example::

    T:writes(pname, bid) → O:Person(x), O:Book(y), O:writes(x, y),
                            O:pname(x, pname), O:bid(y, bid)

ISA edges denote object *identity*, so the two endpoint nodes share one
variable (both class atoms are still emitted).

Key information (Section 3.4) is folded in by :func:`apply_key_merge`:
an object identified by a single-attribute key present in the formula is
replaced by its key value ("use z instead of x ... treat hasName as the
identity relation"); composite keys merge into a global identity Skolem
term ``id_Class(key values)`` shared across all tables, which is what lets
Skolem functions from different tables join.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cm.model import ConceptualModel
from repro.queries.conjunctive import (
    Atom,
    SkolemTerm,
    Term,
    Variable,
    cm_atom,
    substitute_atom,
)
from repro.semantics.stree import STreeNode, SemanticTree


@dataclass
class EncodedTree:
    """The result of encoding an s-tree.

    ``object_terms`` maps each s-tree node to the term standing for its
    instance (a variable before key-merging; possibly a column variable or
    identity Skolem after).
    """

    atoms: tuple[Atom, ...]
    object_terms: dict[STreeNode, Term]
    column_variables: dict[str, Variable]

    def substitute_objects(self, mapping: dict[Term, Term]) -> "EncodedTree":
        """Rewrite object terms (used by key-merging)."""
        as_var_subst = {
            term: replacement
            for term, replacement in mapping.items()
            if isinstance(term, Variable)
        }
        new_atoms = tuple(
            substitute_atom(atom, as_var_subst) for atom in self.atoms
        )
        new_objects = {
            node: mapping.get(term, term)
            if not isinstance(term, Variable)
            else as_var_subst.get(term, term)
            for node, term in self.object_terms.items()
        }
        return EncodedTree(new_atoms, new_objects, dict(self.column_variables))


def object_variable(node: STreeNode) -> Variable:
    """The canonical object variable of an s-tree node (``x_Person~1``)."""
    return Variable(f"x_{node.node_id}")


def column_variable(column: str) -> Variable:
    """The distinguished variable carrying a column's value."""
    return Variable(column)


def encode_tree(tree: SemanticTree, model: ConceptualModel) -> EncodedTree:
    """Encode an s-tree into CM atoms (no key-merging).

    Emits, in order: class atoms (root first), relationship atoms per tree
    edge, attribute atoms per column.
    """
    object_terms: dict[STreeNode, Term] = {}
    # ISA edges merge endpoint variables: resolve a representative per
    # identity group by walking edges root-down.
    for node in tree.nodes():
        object_terms[node] = object_variable(node)
    for edge in tree.edges:
        if edge.cm_edge.is_isa:
            # Child and parent denote the same object; reuse the parent's
            # term for the child (root-down order guarantees it exists).
            object_terms[edge.child] = object_terms[edge.parent]
    atoms: list[Atom] = []
    for node in tree.nodes():
        atoms.append(cm_atom(node.cm_node, object_terms[node]))
    for edge in tree.edges:
        if edge.cm_edge.is_isa:
            continue  # identity — no relationship atom
        parent_term = object_terms[edge.parent]
        child_term = object_terms[edge.child]
        if edge.cm_edge.is_inverse:
            atoms.append(
                cm_atom(edge.cm_edge.base_name, child_term, parent_term)
            )
        else:
            atoms.append(
                cm_atom(edge.cm_edge.base_name, parent_term, child_term)
            )
    column_vars: dict[str, Variable] = {}
    for column in sorted(tree.columns):
        node, attribute = tree.columns[column]
        variable = column_variable(column)
        column_vars[column] = variable
        atoms.append(cm_atom(attribute, object_terms[node], variable))
    # Deduplicate (ISA merging can duplicate class atoms).
    unique: dict[Atom, None] = {}
    for atom in atoms:
        unique.setdefault(atom)
    return EncodedTree(tuple(unique), object_terms, column_vars)


def identity_skolem(class_name: str, key_terms: tuple[Term, ...]) -> SkolemTerm:
    """The global identity Skolem ``id_Class(key...)`` for composite keys."""
    return SkolemTerm(f"id_{class_name}", key_terms)


def apply_key_merge(
    encoded: EncodedTree,
    tree: SemanticTree,
    model: ConceptualModel,
) -> EncodedTree:
    """Replace identified object variables per Section 3.4.

    For each s-tree node whose class declares a key and whose key
    attributes are all present as columns of this tree:

    * single-attribute key → the object variable becomes the key column
      variable, and the (now identity) key attribute atom is dropped;
    * composite key → the object variable becomes the shared identity
      Skolem ``id_Class(key column variables...)``; attribute atoms stay.
    """
    mapping: dict[Term, Term] = {}
    drop_atoms: set[Atom] = set()
    for node in tree.nodes():
        cm_class = model.cm_class(node.cm_node)
        key = effective_key(model, node.cm_node)
        if not key:
            continue
        key_columns = {}
        for column, (owner, attribute) in tree.columns.items():
            if owner == node and attribute in key:
                key_columns[attribute] = column
        if set(key_columns) != set(key):
            continue  # not all key attributes present: stays existential
        object_term = encoded.object_terms[node]
        if not isinstance(object_term, Variable):
            continue
        if len(key) == 1:
            attribute = key[0]
            column = key_columns[attribute]
            replacement: Term = encoded.column_variables[column]
            # The key attribute atom becomes the identity O:attr(v, v)
            # after substitution; record its post-merge form for dropping.
            drop_atoms.add(cm_atom(attribute, replacement, replacement))
        else:
            replacement = identity_skolem(
                cm_class.name,
                tuple(
                    encoded.column_variables[key_columns[attribute]]
                    for attribute in key
                ),
            )
        mapping[object_term] = replacement
    merged = encoded.substitute_objects(mapping)
    kept = tuple(atom for atom in merged.atoms if atom not in drop_atoms)
    return EncodedTree(kept, merged.object_terms, merged.column_variables)


def effective_key(model: ConceptualModel, class_name: str) -> tuple[str, ...]:
    """The key of a class, inherited from superclasses when absent.

    A subclass without its own key identifies instances the way its
    superclass does (Example 1.2's programmer/engineer tables identify
    employees by ``ssn``). Ambiguity (two superclasses with different
    keys) resolves to the lexicographically first.
    """
    cm_class = model.cm_class(class_name)
    if cm_class.key:
        return cm_class.key
    candidates = []
    for ancestor in sorted(model.superclasses(class_name)):
        ancestor_key = model.cm_class(ancestor).key
        if ancestor_key:
            candidates.append(ancestor_key)
    return candidates[0] if candidates else ()


def encode_and_merge(
    tree: SemanticTree, model: ConceptualModel
) -> EncodedTree:
    """Convenience: :func:`encode_tree` then :func:`apply_key_merge`."""
    return apply_key_merge(encode_tree(tree, model), tree, model)
