"""Schema semantics: the table → s-tree association plus LAV views.

A :class:`SchemaSemantics` bundles a relational schema, the CM graph of
its conceptual model, and one :class:`~repro.semantics.stree.SemanticTree`
per table. From these it derives the key-merged LAV views used by the
rewriting step, and answers the lookups the discovery algorithm needs:
which class node carries a given column, and which s-trees are
*pre-selected* by a set of columns (Section 3.1).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.exceptions import SemanticsError
from repro.cm.graph import CMGraph
from repro.cm.model import ConceptualModel
from repro.queries.conjunctive import Variable
from repro.queries.rewrite import LAVView
from repro.relational.schema import Column, RelationalSchema
from repro.semantics.encoder import encode_and_merge
from repro.semantics.stree import STreeNode, SemanticTree


class SchemaSemantics:
    """The semantics of a whole relational schema over one CM graph."""

    def __init__(
        self,
        schema: RelationalSchema,
        graph: CMGraph,
        trees: Mapping[str, SemanticTree],
    ) -> None:
        self.schema = schema
        self.graph = graph
        self._trees: dict[str, SemanticTree] = dict(trees)
        self._validate()
        self._views: dict[str, LAVView] | None = None

    def _validate(self) -> None:
        for table_name, tree in self._trees.items():
            table = self.schema.table(table_name)
            unknown = set(tree.columns) - set(table.columns)
            if unknown:
                raise SemanticsError(
                    f"s-tree of {table_name!r} maps unknown columns "
                    f"{sorted(unknown)}"
                )
            for node in tree.nodes():
                if not self.graph.is_class_node(node.cm_node):
                    raise SemanticsError(
                        f"s-tree of {table_name!r} uses unknown class "
                        f"{node.cm_node!r}"
                    )

    @property
    def model(self) -> ConceptualModel:
        return self.graph.model

    # ------------------------------------------------------------------
    # Trees
    # ------------------------------------------------------------------
    def tree(self, table_name: str) -> SemanticTree:
        try:
            return self._trees[table_name]
        except KeyError:
            raise SemanticsError(
                f"no semantics recorded for table {table_name!r}"
            ) from None

    def has_tree(self, table_name: str) -> bool:
        return table_name in self._trees

    def tables_with_semantics(self) -> tuple[str, ...]:
        return tuple(
            name for name in self.schema.table_names() if name in self._trees
        )

    # ------------------------------------------------------------------
    # LAV views
    # ------------------------------------------------------------------
    def views(self) -> tuple[LAVView, ...]:
        """Key-merged LAV views for every table with semantics."""
        if self._views is None:
            self._views = {
                name: self._build_view(name)
                for name in self.tables_with_semantics()
            }
        return tuple(self._views[name] for name in self.tables_with_semantics())

    def view(self, table_name: str) -> LAVView:
        self.views()
        assert self._views is not None
        try:
            return self._views[table_name]
        except KeyError:
            raise SemanticsError(
                f"no semantics recorded for table {table_name!r}"
            ) from None

    def _build_view(self, table_name: str) -> LAVView:
        table = self.schema.table(table_name)
        tree = self._trees[table_name]
        encoded = encode_and_merge(tree, self.model)
        head = []
        for column in table.columns:
            if column in encoded.column_variables:
                head.append(encoded.column_variables[column])
            else:
                # Unmapped column: a free head variable with no semantics.
                head.append(Variable(column))
        return LAVView(table_name, head, encoded.atoms)

    # ------------------------------------------------------------------
    # Column → CM lookups (Section 3.1)
    # ------------------------------------------------------------------
    def column_class(self, column: Column) -> str:
        """The CM class node whose attribute realizes ``column``."""
        return self.tree(column.table).column_class(column.name)

    def column_attribute(self, column: Column) -> str:
        return self.tree(column.table).column_attribute(column.name)

    def column_tree_node(self, column: Column) -> STreeNode:
        return self.tree(column.table).column_node(column.name)

    def marked_nodes(self, columns: Iterable[Column]) -> frozenset[str]:
        """The set of marked class nodes induced by a set of columns."""
        return frozenset(self.column_class(column) for column in columns)

    def preselected_trees(
        self, columns: Iterable[Column]
    ) -> tuple[tuple[str, SemanticTree], ...]:
        """(table, s-tree) pairs pre-selected by the given columns."""
        tables: dict[str, None] = {}
        for column in columns:
            tables.setdefault(column.table)
        return tuple((name, self.tree(name)) for name in tables)

    def preselected_cm_edges(self, columns: Iterable[Column]):
        """All CM edges used by the pre-selected s-trees (cost-0 edges)."""
        edges = []
        seen = set()
        for _, tree in self.preselected_trees(columns):
            for cm_edge in tree.cm_edges():
                key = (cm_edge.source, cm_edge.label, cm_edge.target)
                if key not in seen:
                    seen.add(key)
                    edges.append(cm_edge)
                reverse = cm_edge.reversed()
                reverse_key = (reverse.source, reverse.label, reverse.target)
                if reverse_key not in seen:
                    seen.add(reverse_key)
                    edges.append(reverse)
        return tuple(edges)

    def describe(self) -> str:
        lines = [f"semantics of schema {self.schema.name}:"]
        for name in self.tables_with_semantics():
            lines.append(f"  {name}: {self._trees[name]!r}")
        return "\n".join(lines)
