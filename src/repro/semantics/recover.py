"""Recovering table semantics from a legacy schema and a CM.

The paper assumes table semantics exist, citing a companion tool
("we have recently developed a tool [1,2,3] to recover the semantics of
a legacy database schema in terms of an existing CM"). This module is a
heuristic reimplementation of that substrate: given a relational schema
(names, keys, RICs) and a conceptual model, it infers an s-tree per
table —

* an **anchor** class, by normalized name match against the table, by
  key-attribute match, or by attribute coverage;
* attribute columns mapped to the anchor's (or its ancestors')
  attributes by normalized name;
* foreign-key columns resolved to relationship edges toward the
  referenced table's anchor (prefix-named columns like ``worksin_dno``
  disambiguate among parallel relationships);
* ISA chains climbed when the key is inherited, and reified-relationship
  tables rebuilt from their role constraints.

The recovery is *heuristic*: tables it cannot interpret are reported,
not guessed. Its fidelity is measured by round-tripping er2rel outputs
(`tests/semantics/test_recover.py`): designing a schema from a CM and
recovering it again must reproduce the designed semantics.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Mapping

from repro.cm.graph import CMGraph
from repro.cm.model import ConceptualModel
from repro.exceptions import SemanticsError
from repro.relational.schema import RelationalSchema, Table
from repro.semantics.encoder import effective_key
from repro.semantics.er2rel import _TreeBuilder
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import SemanticTree

_NORM_RE = re.compile(r"[^a-z0-9]+")
_ID_SUFFIX_RE = re.compile(r"(.+?)id$")


def _norm(name: str) -> str:
    return _NORM_RE.sub("", name.lower())


def _singular_norms(normalized: str) -> tuple[str, ...]:
    """Singular candidates for a plural normalized name.

    Real-world tables are often pluralized (``employees``,
    ``categories``, ``addresses``) while CM classes are singular; the
    anchor search tries these reduced forms when the exact form finds
    nothing.
    """
    candidates = []
    if normalized.endswith("ies") and len(normalized) > 3:
        candidates.append(normalized[:-3] + "y")
    if normalized.endswith("es") and len(normalized) > 2:
        candidates.append(normalized[:-2])
    if normalized.endswith("s") and len(normalized) > 1:
        candidates.append(normalized[:-1])
    return tuple(candidates)


@dataclass
class RecoveryReport:
    """What the recoverer produced and what it had to leave out."""

    semantics: SchemaSemantics
    skipped_tables: list[str] = field(default_factory=list)
    unmapped_columns: list[str] = field(default_factory=list)
    #: Tables whose s-tree was adopted from a previous recovery instead
    #: of re-derived (incremental re-ingestion; see
    #: :mod:`repro.ingest.reingest`).
    reused_tables: list[str] = field(default_factory=list)

    def coverage(self) -> float:
        """Fraction of tables that received semantics."""
        total = len(self.semantics.schema)
        if total == 0:
            return 1.0
        return len(self.semantics.tables_with_semantics()) / total


class SemanticsRecoverer:
    """Infers an s-tree per table of ``schema`` against ``model``."""

    def __init__(
        self,
        schema: RelationalSchema,
        model: ConceptualModel,
        reuse: Mapping[str, SemanticTree] | None = None,
    ) -> None:
        self.schema = schema
        self.model = model
        self.graph = CMGraph(model)
        self.reuse = dict(reuse or {})
        self._anchors: dict[str, str] = {}

    def _reusable_tree(self, table: Table) -> SemanticTree | None:
        """The previous s-tree for ``table`` when it still fits.

        A reused tree must only map columns the current table still has
        — the caller (incremental re-ingestion) only offers trees for
        tables whose catalog fingerprint is unchanged, but the check
        keeps a stale offer from corrupting the semantics.
        """
        tree = self.reuse.get(table.name)
        if tree is None:
            return None
        if not set(tree.columns) <= set(table.columns):
            return None
        return tree

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryReport:
        trees: dict[str, SemanticTree] = {}
        skipped: list[str] = []
        unmapped: list[str] = []
        reused: list[str] = []
        # Pass 1: anchor every table we can. Reused trees pin their
        # root class so FK resolution from rebuilt tables still works.
        for table in self.schema:
            reusable = self._reusable_tree(table)
            if reusable is not None:
                self._anchors[table.name] = reusable.root.cm_node
                continue
            anchor = self._find_anchor(table)
            if anchor is not None:
                self._anchors[table.name] = anchor
        # Pass 2: build trees using anchors for FK resolution.
        for table in self.schema:
            reusable = self._reusable_tree(table)
            if reusable is not None:
                trees[table.name] = reusable
                reused.append(table.name)
                unmapped.extend(
                    f"{table.name}.{column}"
                    for column in table.columns
                    if column not in reusable.columns
                )
                continue
            anchor = self._anchors.get(table.name)
            if anchor is None:
                skipped.append(f"{table.name}: no anchor class found")
                continue
            try:
                tree, missing = self._build_tree(table, anchor)
            except SemanticsError as error:
                skipped.append(f"{table.name}: {error}")
                continue
            trees[table.name] = tree
            unmapped.extend(f"{table.name}.{column}" for column in missing)
        return RecoveryReport(
            SchemaSemantics(self.schema, self.graph, trees),
            skipped,
            unmapped,
            reused,
        )

    # ------------------------------------------------------------------
    # Anchors
    # ------------------------------------------------------------------
    def _find_anchor(self, table: Table) -> str | None:
        normalized = _norm(table.name)
        name_forms = (normalized,) + _singular_norms(normalized)
        # (a) class name match — entity and reified tables. Exact form
        # first; singular fallbacks only when nothing matches exactly.
        for form in name_forms:
            for class_name in self.model.class_names():
                if _norm(class_name) == form:
                    return class_name
        # (b) relationship name match — relationship tables anchor at the
        # relationship's domain (the er2rel convention).
        for form in name_forms:
            for rel_name, relationship in self.model.relationships.items():
                if relationship.is_role:
                    continue
                if _norm(rel_name) == form:
                    return relationship.domain
        # (c) key-attribute match.
        pk = {_norm(column) for column in table.primary_key}
        if pk:
            for class_name in self.model.class_names():
                key = effective_key(self.model, class_name)
                if key and {_norm(attribute) for attribute in key} == pk:
                    return class_name
        # (d) best attribute coverage.
        best: tuple[int, str] | None = None
        columns = {_norm(column) for column in table.columns}
        for class_name in self.model.class_names():
            attributes = {
                _norm(a) for a in self.model.cm_class(class_name).attributes
            }
            overlap = len(columns & attributes)
            if overlap and (best is None or overlap > best[0]):
                best = (overlap, class_name)
        return best[1] if best else None

    # ------------------------------------------------------------------
    # Trees
    # ------------------------------------------------------------------
    def _build_tree(
        self, table: Table, anchor: str
    ) -> tuple[SemanticTree, list[str]]:
        normalized_table = _norm(table.name)
        relationship = next(
            (
                rel
                for name, rel in self.model.relationships.items()
                if not rel.is_role and _norm(name) == normalized_table
            ),
            None,
        )
        if self.model.has_class(anchor) and self.model.is_reified(anchor):
            return self._reified_tree(table, anchor)
        if relationship is not None:
            return self._relationship_tree(table, relationship)
        return self._entity_tree(table, anchor)

    def _entity_tree(
        self, table: Table, anchor: str
    ) -> tuple[SemanticTree, list[str]]:
        builder = _TreeBuilder(self.graph, anchor)
        node_of_class = {anchor: builder.root}
        # Climb ISA toward inherited key/attribute owners lazily.
        missing: list[str] = []
        fk_columns = self._foreign_key_targets(table)
        for column in table.columns:
            if column in fk_columns:
                continue
            owner = self._attribute_owner(anchor, column, _norm(table.name))
            if owner is None:
                missing.append(column)
                continue
            owner_class, attribute = owner
            node = self._ensure_isa_node(builder, node_of_class, anchor, owner_class)
            builder.map_column(column, node, attribute)
        for column, parent_table in fk_columns.items():
            placed = self._place_foreign_key(
                builder, table, anchor, column, parent_table
            )
            if not placed:
                missing.append(column)
        return builder.build(), missing

    def _relationship_tree(self, table: Table, relationship):
        builder = _TreeBuilder(self.graph, relationship.domain)
        child = builder.add_edge(
            builder.root, relationship.name, relationship.range
        )
        missing: list[str] = []
        domain_key = effective_key(self.model, relationship.domain)
        range_key = effective_key(self.model, relationship.range)
        remaining = list(table.columns)
        for attribute in domain_key:
            column = self._pop_matching(
                remaining, attribute, relationship.domain
            )
            if column is None:
                missing.append(attribute)
                continue
            node = self._key_node(builder, builder.root, relationship.domain)
            builder.map_column(column, node, attribute)
        for attribute in range_key:
            column = self._pop_matching(
                remaining, attribute, relationship.range
            )
            if column is None:
                missing.append(attribute)
                continue
            node = self._key_node(builder, child, relationship.range)
            builder.map_column(column, node, attribute)
        missing.extend(remaining)
        return builder.build(), missing

    def _reified_tree(self, table: Table, anchor: str):
        builder = _TreeBuilder(self.graph, anchor)
        remaining = list(table.columns)
        missing: list[str] = []
        for role in self.model.roles_of(anchor):
            participant_key = effective_key(self.model, role.range)
            child = builder.add_edge(builder.root, role.name, role.range)
            for attribute in participant_key:
                column = self._pop_matching(remaining, attribute, role.range)
                if column is None:
                    missing.append(attribute)
                    continue
                node = self._key_node(builder, child, role.range)
                builder.map_column(column, node, attribute)
        for attribute in self.model.cm_class(anchor).attributes:
            column = self._pop_matching(remaining, attribute)
            if column is not None:
                builder.map_column(column, builder.root, attribute)
        missing.extend(remaining)
        return builder.build(), missing

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _foreign_key_targets(self, table: Table) -> dict[str, str]:
        """Single-column FK columns → referenced table (non-key FKs)."""
        result: dict[str, str] = {}
        for ric in self.schema.rics_from(table.name):
            if len(ric.child_columns) != 1:
                continue
            (column,) = ric.child_columns
            if (column,) == table.primary_key:
                continue  # inherited key: handled by ISA climbing
            result[column] = ric.parent_table
        return result

    def _attribute_owner(
        self, anchor: str, column: str, table_norm: str = ""
    ) -> tuple[str, str] | None:
        """The class (anchor or ancestor) owning an attribute ≈ ``column``.

        Exact normalized matches win over everything; only when the
        whole ISA chain has no exact match does the search retry with
        entity prefixes stripped, so ``employee_name`` (or camelCase
        ``employeeName``) on an ``Employee``-anchored table still finds
        the ``name`` attribute.
        """
        normalized = _norm(column)
        chain = self._isa_chain(anchor)
        for class_name in chain:
            for attribute in self.model.cm_class(class_name).attributes:
                if _norm(attribute) == normalized:
                    return class_name, attribute
        # Prefix fallback: real-world schemas qualify columns with the
        # entity (class or table) name.
        prefixes = {table_norm, _norm(anchor)} | {
            _norm(class_name) for class_name in chain
        }
        for prefix in sorted(prefixes, key=len, reverse=True):
            if not prefix or not normalized.startswith(prefix):
                continue
            stripped = normalized[len(prefix):]
            if not stripped:
                continue
            for class_name in chain:
                attributes = self.model.cm_class(class_name).attributes
                for attribute in attributes:
                    if _norm(attribute) == stripped:
                        return class_name, attribute
        return None

    def _isa_chain(self, anchor: str) -> list[str]:
        """``anchor`` plus its ancestors, breadth-first, deduplicated."""
        chain: list[str] = []
        frontier = [anchor]
        seen: set[str] = set()
        while frontier:
            class_name = frontier.pop(0)
            if class_name in seen:
                continue
            seen.add(class_name)
            chain.append(class_name)
            frontier.extend(self.model.direct_superclasses(class_name))
        return chain

    def _ensure_isa_node(self, builder, node_of_class, anchor, owner):
        if owner in node_of_class:
            return node_of_class[owner]
        # Climb the ISA chain from the deepest already-present ancestor.
        path = self._isa_path(anchor, owner)
        current_class = anchor
        node = node_of_class[anchor]
        for next_class in path:
            if next_class in node_of_class:
                node = node_of_class[next_class]
            else:
                node = builder.add_edge(node, "isa", next_class)
                node_of_class[next_class] = node
            current_class = next_class
        return node_of_class[owner]

    def _isa_path(self, start: str, goal: str) -> list[str]:
        """Chain of classes from ``start`` (exclusive) up to ``goal``."""
        if start == goal:
            return []
        frontier = [(start, [])]
        seen = set()
        while frontier:
            current, path = frontier.pop(0)
            for parent in self.model.direct_superclasses(current):
                if parent in seen:
                    continue
                seen.add(parent)
                if parent == goal:
                    return path + [parent]
                frontier.append((parent, path + [parent]))
        raise SemanticsError(f"no ISA path from {start!r} to {goal!r}")

    def _key_node(self, builder, node, class_name):
        """The node owning ``class_name``'s key, climbing ISA if needed."""
        key = effective_key(self.model, class_name)
        if not key:
            raise SemanticsError(f"class {class_name!r} has no key")
        if key[0] in self.model.cm_class(class_name).attributes:
            return node
        owner_chain = self._isa_path_to_key_owner(class_name, key)
        current = node
        for parent in owner_chain:
            current = builder.add_edge(current, "isa", parent)
        return current

    def _isa_path_to_key_owner(self, class_name: str, key) -> list[str]:
        path: list[str] = []
        current = class_name
        while key[0] not in self.model.cm_class(current).attributes:
            parents = [
                parent
                for parent in self.model.direct_superclasses(current)
                if effective_key(self.model, parent) == tuple(key)
            ]
            if not parents:
                raise SemanticsError(
                    f"cannot locate key owner for {class_name!r}"
                )
            path.append(parents[0])
            current = parents[0]
        return path

    @staticmethod
    def _pop_matching(
        columns: list[str], attribute: str, class_name: str | None = None
    ) -> str | None:
        normalized = _norm(attribute)
        for column in columns:
            column_norm = _norm(column)
            if column_norm == normalized or column_norm.endswith(normalized):
                columns.remove(column)
                return column
        if class_name is not None:
            # ``employee_id`` names the participant class, not its key
            # attribute — accept when the stem identifies the class.
            class_norm = _norm(class_name)
            for column in columns:
                id_match = _ID_SUFFIX_RE.match(_norm(column))
                if id_match and class_norm.startswith(id_match.group(1)):
                    columns.remove(column)
                    return column
        return None

    def _place_foreign_key(
        self, builder, table: Table, anchor: str, column: str, parent_table: str
    ) -> bool:
        target_class = self._anchors.get(parent_table)
        if target_class is None:
            return False
        candidates = sorted(
            (
                rel
                for rel in self.model.relationships.values()
                if not rel.is_role
                and rel.is_functional
                and rel.range == target_class
                and self._class_or_ancestor(anchor, rel.domain)
            ),
            key=lambda rel: rel.name,
        )
        if not candidates:
            return False
        normalized_column = _norm(column)
        chosen = None
        for rel in candidates:
            if normalized_column.startswith(_norm(rel.name)):
                chosen = rel
                break
        if chosen is None:
            # Unprefixed column: er2rel gives the bare key name to the
            # first relationship in sorted order.
            target_key = effective_key(self.model, target_class)
            if target_key and normalized_column.endswith(_norm(target_key[0])):
                chosen = candidates[0]
        if chosen is None:
            # Real-world ``_id``-suffix style: ``dept_id`` / ``deptId``
            # names the *referenced entity* (often abbreviated), not its
            # key attribute. The RIC already pins the referenced table,
            # so the suffix alone decides when only one relationship
            # leads there; the stem disambiguates parallel ones.
            id_match = _ID_SUFFIX_RE.match(normalized_column)
            if id_match:
                stem = id_match.group(1)
                for rel in candidates:
                    if _norm(rel.name).startswith(stem):
                        chosen = rel
                        break
                if chosen is None and len(candidates) == 1:
                    chosen = candidates[0]
        if chosen is None:
            return False
        child = builder.add_edge(builder.root, chosen.name, chosen.range)
        target_key = effective_key(self.model, target_class)
        if not target_key:
            return False
        node = self._key_node(builder, child, target_class)
        builder.map_column(column, node, target_key[0])
        return True

    def _class_or_ancestor(self, class_name: str, candidate: str) -> bool:
        return candidate == class_name or candidate in self.model.superclasses(
            class_name
        )


def recover_semantics(
    schema: RelationalSchema,
    model: ConceptualModel,
    reuse: Mapping[str, SemanticTree] | None = None,
) -> RecoveryReport:
    """One-shot convenience wrapper around :class:`SemanticsRecoverer`.

    ``reuse`` offers previously recovered s-trees by table name; a table
    whose offered tree still fits the schema adopts it verbatim instead
    of re-deriving (and is listed in ``reused_tables``).
    """
    return SemanticsRecoverer(schema, model, reuse).recover()
