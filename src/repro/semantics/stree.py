"""Semantic trees (s-trees): the semantics of one table in a CM graph.

Per Section 2, the semantics of a table is a subtree of the CM graph
whose nodes may be *copies* of CM classes (to handle multiple or
recursive relationships between the same entities), together with a
bijective association between the table's columns and attribute nodes of
the tree, an *anchor* (the tree root — the central object the table was
derived from), and identifier information carried by the CM classes' keys.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from repro.exceptions import SemanticsError
from repro.cm.graph import CMEdge, CMGraph

#: Separator between a class name and a copy index in node ids.
COPY_MARK = "~"


@dataclass(frozen=True, order=True)
class STreeNode:
    """A (possibly copied) class node inside an s-tree.

    ``STreeNode("Person", 1)`` renders as ``Person~1`` — the paper's
    ``Person_copy1`` for e.g. the spouse in ``pers(pid, spousePid)``.
    """

    cm_node: str
    copy: int = 0

    def __post_init__(self) -> None:
        if self.copy < 0:
            raise SemanticsError("copy index must be non-negative")

    @property
    def node_id(self) -> str:
        if self.copy == 0:
            return self.cm_node
        return f"{self.cm_node}{COPY_MARK}{self.copy}"

    @classmethod
    def parse(cls, node_id: str) -> "STreeNode":
        """Parse ``"Person"`` or ``"Person~1"``."""
        if COPY_MARK in node_id:
            name, _, index = node_id.rpartition(COPY_MARK)
            try:
                return cls(name, int(index))
            except ValueError:
                raise SemanticsError(f"bad copy index in {node_id!r}") from None
        return cls(node_id)

    def __str__(self) -> str:
        return self.node_id


@dataclass(frozen=True)
class STreeEdge:
    """A directed tree edge: ``parent --cm_edge--> child``."""

    parent: STreeNode
    child: STreeNode
    cm_edge: CMEdge

    def __post_init__(self) -> None:
        if self.cm_edge.source != self.parent.cm_node:
            raise SemanticsError(
                f"edge {self.cm_edge.label!r} leaves {self.cm_edge.source!r}, "
                f"not {self.parent.cm_node!r}"
            )
        if self.cm_edge.target != self.child.cm_node:
            raise SemanticsError(
                f"edge {self.cm_edge.label!r} enters {self.cm_edge.target!r}, "
                f"not {self.child.cm_node!r}"
            )

    def __str__(self) -> str:
        arrow = "->-" if self.cm_edge.is_functional else "---"
        return f"{self.parent} ---{self.cm_edge.label}{arrow} {self.child}"


class SemanticTree:
    """An anchored s-tree plus the column ↔ attribute-node association.

    Parameters
    ----------
    root:
        The anchor node.
    edges:
        Tree edges; every edge's parent must already be reachable from the
        root, and every node except the root has exactly one incoming edge.
    columns:
        ``column name → (node, attribute name)``; each attribute must
        belong to the node's CM class, and no two columns may share the
        same attribute node (the association is bijective).
    """

    def __init__(
        self,
        root: STreeNode,
        edges: Sequence[STreeEdge] = (),
        columns: Mapping[str, tuple[STreeNode, str]] | None = None,
    ) -> None:
        self.root = root
        self.edges: tuple[STreeEdge, ...] = tuple(edges)
        self.columns: dict[str, tuple[STreeNode, str]] = dict(columns or {})
        self._validate_tree()
        self._validate_columns()

    def _validate_tree(self) -> None:
        reachable = {self.root}
        parents: dict[STreeNode, STreeNode] = {}
        remaining = list(self.edges)
        progress = True
        while remaining and progress:
            progress = False
            for edge in list(remaining):
                if edge.parent in reachable:
                    if edge.child in reachable:
                        raise SemanticsError(
                            f"node {edge.child} has two incoming edges or a "
                            f"cycle in the s-tree"
                        )
                    reachable.add(edge.child)
                    parents[edge.child] = edge.parent
                    remaining.remove(edge)
                    progress = True
        if remaining:
            raise SemanticsError(
                f"s-tree edges not connected to root {self.root}: "
                f"{[str(e) for e in remaining]}"
            )

    def _validate_columns(self) -> None:
        nodes = set(self.nodes())
        seen_attributes: set[tuple[STreeNode, str]] = set()
        for column, (node, attribute) in self.columns.items():
            if node not in nodes:
                raise SemanticsError(
                    f"column {column!r} maps to node {node} outside the tree"
                )
            if (node, attribute) in seen_attributes:
                raise SemanticsError(
                    f"attribute node {node}.{attribute} used by two columns"
                )
            seen_attributes.add((node, attribute))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def anchor(self) -> STreeNode:
        """The central object of the tree (Section 2)."""
        return self.root

    def nodes(self) -> tuple[STreeNode, ...]:
        """All tree nodes, root first, in edge order."""
        result: dict[STreeNode, None] = {self.root: None}
        for edge in self.edges:
            result.setdefault(edge.parent)
            result.setdefault(edge.child)
        return tuple(result)

    def cm_nodes(self) -> frozenset[str]:
        """The set of underlying CM class nodes (copies collapse)."""
        return frozenset(node.cm_node for node in self.nodes())

    def cm_edges(self) -> tuple[CMEdge, ...]:
        return tuple(edge.cm_edge for edge in self.edges)

    def children(self, node: STreeNode) -> tuple[STreeEdge, ...]:
        return tuple(e for e in self.edges if e.parent == node)

    def parent_edge(self, node: STreeNode) -> STreeEdge | None:
        for edge in self.edges:
            if edge.child == node:
                return edge
        return None

    def path_from_root(self, node: STreeNode) -> tuple[STreeEdge, ...]:
        """The unique root→node edge path."""
        if node == self.root:
            return ()
        path: list[STreeEdge] = []
        current = node
        while current != self.root:
            edge = self.parent_edge(current)
            if edge is None:
                raise SemanticsError(f"node {node} not in s-tree")
            path.append(edge)
            current = edge.parent
        return tuple(reversed(path))

    def is_anchored_functional(self) -> bool:
        """True when every root-to-node path is functional.

        This is the shape the paper calls an *anchored s-tree* (Example
        3.1) and, equivalently, a functional tree rooted at the anchor.
        """
        return all(edge.cm_edge.is_functional for edge in self.edges)

    def columns_of_node(self, node: STreeNode) -> tuple[str, ...]:
        """Columns whose attribute nodes hang off ``node``."""
        return tuple(
            sorted(
                column
                for column, (owner, _) in self.columns.items()
                if owner == node
            )
        )

    def column_class(self, column: str) -> str:
        """The CM class carrying the attribute behind ``column``."""
        try:
            node, _ = self.columns[column]
        except KeyError:
            raise SemanticsError(
                f"s-tree has no column {column!r}"
            ) from None
        return node.cm_node

    def column_node(self, column: str) -> STreeNode:
        try:
            return self.columns[column][0]
        except KeyError:
            raise SemanticsError(f"s-tree has no column {column!r}") from None

    def column_attribute(self, column: str) -> str:
        try:
            return self.columns[column][1]
        except KeyError:
            raise SemanticsError(f"s-tree has no column {column!r}") from None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        graph: CMGraph,
        root: str,
        edges: Iterable[tuple[str, str, str]] = (),
        columns: Mapping[str, str] | None = None,
    ) -> "SemanticTree":
        """Build an s-tree from compact textual specifications.

        ``edges`` are ``(parent_id, edge_label, child_id)`` triples where
        node ids may carry copy marks (``"Person~1"``); ``columns`` maps a
        column name to ``"node_id.attribute"``.

        >>> # writes(pname, bid) from Figure 1 (doctest setup elided)
        """
        root_node = STreeNode.parse(root)
        if not graph.is_class_node(root_node.cm_node):
            raise SemanticsError(
                f"root {root!r} is not a class node of the CM graph"
            )
        tree_edges = []
        for parent_id, label, child_id in edges:
            parent = STreeNode.parse(parent_id)
            child = STreeNode.parse(child_id)
            try:
                cm_edge = graph.edge(parent.cm_node, label, child.cm_node)
            except Exception as exc:
                raise SemanticsError(
                    f"edge {label!r} from {parent.cm_node!r} to "
                    f"{child.cm_node!r}: {exc}"
                ) from exc
            tree_edges.append(STreeEdge(parent, child, cm_edge))
        column_map: dict[str, tuple[STreeNode, str]] = {}
        for column, target in (columns or {}).items():
            node_id, _, attribute = target.rpartition(".")
            if not node_id:
                raise SemanticsError(
                    f"column target must be 'node.attribute', got {target!r}"
                )
            node = STreeNode.parse(node_id)
            owner_class = graph.model.cm_class(node.cm_node)
            if attribute not in owner_class.attributes:
                raise SemanticsError(
                    f"class {node.cm_node!r} has no attribute {attribute!r}"
                )
            column_map[column] = (node, attribute)
        return cls(root_node, tree_edges, column_map)

    def describe(self) -> str:
        lines = [f"s-tree anchored at {self.root}:"]
        for edge in self.edges:
            lines.append(f"  {edge}")
        for column, (node, attribute) in sorted(self.columns.items()):
            lines.append(f"  column {column} ↦ {node}.{attribute}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"SemanticTree(root={self.root}, edges={len(self.edges)}, "
            f"columns={sorted(self.columns)})"
        )
