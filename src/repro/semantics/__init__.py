"""Table semantics: s-trees, the encoding algorithm, LAV views, er2rel."""

from repro.semantics.stree import (
    COPY_MARK,
    STreeEdge,
    STreeNode,
    SemanticTree,
)
from repro.semantics.encoder import (
    EncodedTree,
    apply_key_merge,
    column_variable,
    effective_key,
    encode_and_merge,
    encode_tree,
    identity_skolem,
    object_variable,
)
from repro.semantics.lav import SchemaSemantics
from repro.semantics.recover import (
    RecoveryReport,
    SemanticsRecoverer,
    recover_semantics,
)
from repro.semantics.er2rel import (
    Er2RelDesigner,
    Er2RelResult,
    design_schema,
    table_name_for,
)

__all__ = [
    "COPY_MARK",
    "STreeEdge",
    "STreeNode",
    "SemanticTree",
    "EncodedTree",
    "apply_key_merge",
    "column_variable",
    "effective_key",
    "encode_and_merge",
    "encode_tree",
    "identity_skolem",
    "object_variable",
    "SchemaSemantics",
    "RecoveryReport",
    "SemanticsRecoverer",
    "recover_semantics",
    "Er2RelDesigner",
    "Er2RelResult",
    "design_schema",
    "table_name_for",
]
