"""er2rel: forward-engineering a relational schema from a conceptual model.

Implements the standard EER→relational design methodology the paper calls
*er2rel* (Markowitz–Shoshani style, Section 2):

* each class with an (effective) key becomes an *entity table*: key
  columns first, then local non-key attributes;
* each functional binary relationship is *merged* into its domain's
  entity table as foreign-key columns (reducing joins, possibly
  introducing nulls) — or kept as its own table when merging is disabled;
* each many-to-many relationship becomes a *relationship table* keyed by
  both participants' keys;
* each reified relationship class becomes a table keyed by the union of
  its roles' keys, carrying its descriptive attributes;
* each ISA link yields a subclass table keyed by the inherited key, with
  a RIC to the superclass table.

Crucially, the designer emits the **semantics** of every table it creates
— the s-tree and column associations of Section 2 — so downstream mapping
discovery has ground-truth table semantics "for free", exactly as the
paper assumes for schemas developed from a conceptual model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SemanticsError
from repro.cm.graph import CMGraph
from repro.cm.model import ConceptualModel, Relationship
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import RelationalSchema, Table
from repro.semantics.encoder import effective_key
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import STreeEdge, STreeNode, SemanticTree


@dataclass
class Er2RelResult:
    """The output of a design run."""

    schema: RelationalSchema
    semantics: SchemaSemantics
    skipped: tuple[str, ...] = ()


class _TreeBuilder:
    """Accumulates s-tree edges/columns with automatic node copies."""

    def __init__(self, graph: CMGraph, root_class: str) -> None:
        self.graph = graph
        self.root = STreeNode(root_class)
        self.edges: list[STreeEdge] = []
        self.columns: dict[str, tuple[STreeNode, str]] = {}
        self._copies: dict[str, int] = {root_class: 0}

    def fresh_node(self, class_name: str) -> STreeNode:
        """A node for ``class_name``, copied if the class already appears."""
        if class_name not in self._copies:
            self._copies[class_name] = 0
            return STreeNode(class_name)
        self._copies[class_name] += 1
        return STreeNode(class_name, self._copies[class_name])

    def add_edge(
        self, parent: STreeNode, label: str, target: str | None = None
    ) -> STreeNode:
        cm_edge = self.graph.edge(parent.cm_node, label, target)
        child = self.fresh_node(cm_edge.target)
        self.edges.append(STreeEdge(parent, child, cm_edge))
        return child

    def map_column(self, column: str, node: STreeNode, attribute: str) -> None:
        self.columns[column] = (node, attribute)

    def build(self) -> SemanticTree:
        return SemanticTree(self.root, self.edges, self.columns)


class Er2RelDesigner:
    """Forward-engineers a :class:`ConceptualModel` into tables + semantics.

    Parameters
    ----------
    model:
        The conceptual model to design from.
    merge_functional:
        When true (the default, and the paper's er2rel), functional
        relationships fold into their domain's entity table as foreign-key
        columns; when false every relationship gets its own table.

    >>> cm = ConceptualModel("m")
    >>> _ = cm.add_class("Dept", attributes=["dno", "dname"], key=["dno"])
    >>> _ = cm.add_class("Emp", attributes=["eno"], key=["eno"])
    >>> _ = cm.add_relationship("worksIn", "Emp", "Dept", "1..1", "0..*")
    >>> result = Er2RelDesigner(cm).design("hr")
    >>> str(result.schema.table("emp"))
    'emp(_eno_, dno)'
    """

    def __init__(
        self,
        model: ConceptualModel,
        merge_functional: bool = True,
        inherit_attributes: bool = False,
    ) -> None:
        self.model = model
        self.graph = CMGraph(model)
        self.merge_functional = merge_functional
        self.inherit_attributes = inherit_attributes

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def design(self, schema_name: str) -> Er2RelResult:
        schema = RelationalSchema(schema_name)
        trees: dict[str, SemanticTree] = {}
        skipped: list[str] = []
        pending_rics: list[ReferentialConstraint] = []

        for class_name in self.model.class_names():
            cm_class = self.model.cm_class(class_name)
            if cm_class.reified:
                continue  # handled with relationships below
            key = effective_key(self.model, class_name)
            if not key:
                skipped.append(f"class {class_name}: no (inherited) key")
                continue
            table, tree, rics = self._entity_table(class_name, key)
            schema.add_table(table)
            trees[table.name] = tree
            pending_rics.extend(rics)

        for rel_name in sorted(self.model.relationships):
            relationship = self.model.relationship(rel_name)
            if relationship.is_role:
                continue
            if self.merge_functional and relationship.is_functional:
                continue  # already merged into the domain entity table
            outcome = self._relationship_table(relationship)
            if outcome is None:
                skipped.append(f"relationship {rel_name}: keyless participant")
                continue
            table, tree, rics = outcome
            schema.add_table(table)
            trees[table.name] = tree
            pending_rics.extend(rics)

        for class_name in self.model.class_names():
            if not self.model.is_reified(class_name):
                continue
            outcome = self._reified_table(class_name)
            if outcome is None:
                skipped.append(f"reified {class_name}: keyless participant")
                continue
            table, tree, rics = outcome
            schema.add_table(table)
            trees[table.name] = tree
            pending_rics.extend(rics)

        for ric in pending_rics:
            if schema.has_table(ric.child_table) and schema.has_table(
                ric.parent_table
            ):
                schema.add_ric(ric)
        return Er2RelResult(
            schema,
            SchemaSemantics(schema, self.graph, trees),
            tuple(skipped),
        )

    # ------------------------------------------------------------------
    # Entity tables
    # ------------------------------------------------------------------
    def _entity_table(
        self, class_name: str, key: tuple[str, ...]
    ) -> tuple[Table, SemanticTree, list[ReferentialConstraint]]:
        cm_class = self.model.cm_class(class_name)
        builder = _TreeBuilder(self.graph, class_name)
        columns: list[str] = []
        rics: list[ReferentialConstraint] = []

        key_owner = self._key_owner_node(builder, class_name, key)
        for attribute in key:
            columns.append(attribute)
            builder.map_column(attribute, key_owner, attribute)
        if self.inherit_attributes:
            # Denormalized subclass tables (Example 1.2's programmer(ssn,
            # name, acnt)): carry non-key attributes of every ancestor on
            # the already-built ISA chain to the key owner.
            chain_nodes = {builder.root.cm_node: builder.root}
            for edge in builder.edges:
                if edge.cm_edge.is_isa:
                    chain_nodes[edge.child.cm_node] = edge.child
            for ancestor, node in chain_nodes.items():
                if ancestor == class_name:
                    continue
                for attribute in self.model.cm_class(ancestor).attributes:
                    if attribute in key or attribute in columns:
                        continue
                    columns.append(attribute)
                    builder.map_column(attribute, node, attribute)
        for attribute in cm_class.attributes:
            if attribute in key:
                continue
            columns.append(attribute)
            builder.map_column(attribute, builder.root, attribute)

        if self.merge_functional:
            for relationship in self._merged_relationships(class_name):
                target_key = effective_key(self.model, relationship.range)
                if not target_key:
                    continue
                child = builder.add_edge(builder.root, relationship.name)
                target_owner = self._key_owner_node(
                    builder, relationship.range, target_key, start=child
                )
                fk_columns = []
                for attribute in target_key:
                    column = self._allocate_column(
                        columns, attribute, relationship.name
                    )
                    columns.append(column)
                    fk_columns.append(column)
                    builder.map_column(column, target_owner, attribute)
                parent_table = table_name_for(relationship.range)
                rics.append(
                    ReferentialConstraint(
                        table_name_for(class_name),
                        fk_columns,
                        parent_table,
                        list(target_key),
                    )
                )

        if key_owner != builder.root:
            # Subclass table: key references the superclass table.
            super_name = self._keyed_ancestor(class_name)
            if super_name is not None:
                rics.append(
                    ReferentialConstraint(
                        table_name_for(class_name),
                        list(key),
                        table_name_for(super_name),
                        list(key),
                    )
                )
        table = Table(table_name_for(class_name), columns, list(key))
        return table, builder.build(), rics

    def _merged_relationships(self, class_name: str) -> list[Relationship]:
        """Functional, non-role relationships leaving ``class_name``."""
        result = []
        for relationship in self.model.relationships.values():
            if relationship.is_role:
                continue
            if relationship.domain == class_name and relationship.is_functional:
                result.append(relationship)
        return sorted(result, key=lambda r: r.name)

    def _keyed_ancestor(self, class_name: str) -> str | None:
        """Closest ancestor declaring its own key, or ``None``."""
        if self.model.cm_class(class_name).key:
            return None
        current_level = list(self.model.direct_superclasses(class_name))
        while current_level:
            for candidate in current_level:
                if self.model.cm_class(candidate).key:
                    return candidate
            next_level = []
            for candidate in current_level:
                next_level.extend(self.model.direct_superclasses(candidate))
            current_level = next_level
        return None

    def _key_owner_node(
        self,
        builder: _TreeBuilder,
        class_name: str,
        key: tuple[str, ...],
        start: STreeNode | None = None,
    ) -> STreeNode:
        """The tree node owning the key attributes of ``class_name``.

        When the key is inherited, ISA edges are added from ``start`` up
        to the ancestor that declares it.
        """
        node = start if start is not None else builder.root
        current_class = class_name
        while key[0] not in self.model.cm_class(current_class).attributes:
            ancestors = self.model.direct_superclasses(current_class)
            next_class = None
            for ancestor in ancestors:
                ancestor_key = effective_key(self.model, ancestor)
                if ancestor_key == key:
                    next_class = ancestor
                    break
            if next_class is None:
                raise SemanticsError(
                    f"cannot locate owner of key {key} for {class_name!r}"
                )
            node = builder.add_edge(node, "isa", next_class)
            current_class = next_class
        return node

    # ------------------------------------------------------------------
    # Relationship tables
    # ------------------------------------------------------------------
    def _relationship_table(
        self, relationship: Relationship
    ) -> tuple[Table, SemanticTree, list[ReferentialConstraint]] | None:
        domain_key = effective_key(self.model, relationship.domain)
        range_key = effective_key(self.model, relationship.range)
        if not domain_key or not range_key:
            return None
        builder = _TreeBuilder(self.graph, relationship.domain)
        child = builder.add_edge(builder.root, relationship.name)
        domain_owner = self._key_owner_node(
            builder, relationship.domain, domain_key
        )
        range_owner = self._key_owner_node(
            builder, relationship.range, range_key, start=child
        )
        columns: list[str] = []
        domain_columns = []
        for attribute in domain_key:
            column = self._allocate_column(columns, attribute, "from")
            columns.append(column)
            domain_columns.append(column)
            builder.map_column(column, domain_owner, attribute)
        range_columns = []
        for attribute in range_key:
            column = self._allocate_column(columns, attribute, "to")
            columns.append(column)
            range_columns.append(column)
            builder.map_column(column, range_owner, attribute)
        if relationship.is_functional:
            primary_key = domain_columns
        else:
            primary_key = domain_columns + range_columns
        name = table_name_for(relationship.name)
        table = Table(name, columns, primary_key)
        rics = [
            ReferentialConstraint(
                name,
                domain_columns,
                table_name_for(relationship.domain),
                list(domain_key),
            ),
            ReferentialConstraint(
                name,
                range_columns,
                table_name_for(relationship.range),
                list(range_key),
            ),
        ]
        return table, builder.build(), rics

    # ------------------------------------------------------------------
    # Reified-relationship tables
    # ------------------------------------------------------------------
    def _reified_table(
        self, class_name: str
    ) -> tuple[Table, SemanticTree, list[ReferentialConstraint]] | None:
        cm_class = self.model.cm_class(class_name)
        roles = self.model.roles_of(class_name)
        role_keys = {}
        for role in roles:
            participant_key = effective_key(self.model, role.range)
            if not participant_key:
                return None
            role_keys[role.name] = participant_key
        builder = _TreeBuilder(self.graph, class_name)
        columns: list[str] = []
        rics: list[ReferentialConstraint] = []
        name = table_name_for(class_name)
        key_columns: list[str] = []
        for role in roles:
            child = builder.add_edge(builder.root, role.name)
            owner = self._key_owner_node(
                builder, role.range, role_keys[role.name], start=child
            )
            fk_columns = []
            for attribute in role_keys[role.name]:
                column = self._allocate_column(columns, attribute, role.name)
                columns.append(column)
                fk_columns.append(column)
                builder.map_column(column, owner, attribute)
            key_columns.extend(fk_columns)
            rics.append(
                ReferentialConstraint(
                    name,
                    fk_columns,
                    table_name_for(role.range),
                    list(role_keys[role.name]),
                )
            )
        for attribute in cm_class.attributes:
            column = self._allocate_column(columns, attribute, class_name)
            columns.append(column)
            builder.map_column(column, builder.root, attribute)
        table = Table(name, columns, key_columns)
        return table, builder.build(), rics

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _allocate_column(existing: list[str], base: str, prefix: str) -> str:
        """``base`` when free, otherwise ``prefix_base`` (made unique)."""
        if base not in existing:
            return base
        candidate = f"{_sanitize(prefix)}_{base}"
        counter = 2
        unique = candidate
        while unique in existing:
            unique = f"{candidate}{counter}"
            counter += 1
        return unique


def _sanitize(name: str) -> str:
    return "".join(ch for ch in name if ch.isalnum() or ch == "_").lower()


def table_name_for(cm_name: str) -> str:
    """The relational table name for a CM class/relationship name."""
    return _sanitize(cm_name)


def design_schema(
    model: ConceptualModel,
    schema_name: str,
    merge_functional: bool = True,
    inherit_attributes: bool = False,
) -> Er2RelResult:
    """One-shot convenience wrapper around :class:`Er2RelDesigner`."""
    return Er2RelDesigner(model, merge_functional, inherit_attributes).design(
        schema_name
    )
