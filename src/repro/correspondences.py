"""Inter-schema correspondences and their lifting to CM class nodes.

A correspondence is the simplest matcher output: a pair of column names,
``source_table.column ↔ target_table.column``, signifying that source data
from the former contributes to the latter (Section 1). Lifting a
correspondence through the table semantics marks the class nodes carrying
the corresponding attributes in both CM graphs (Section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.exceptions import CorrespondenceError
from repro.relational.schema import Column, RelationalSchema
from repro.semantics.lav import SchemaSemantics


@dataclass(frozen=True, order=True)
class Correspondence:
    """``source ↔ target`` between one source and one target column."""

    source: Column
    target: Column

    @classmethod
    def parse(cls, text: str) -> "Correspondence":
        """Parse ``"person.pname <-> hasBookSoldAt.aname"``.

        Both ``<->`` and the paper's ``↔`` separate the two sides.
        """
        for separator in ("<->", "↔"):
            if separator in text:
                left, right = (part.strip() for part in text.split(separator, 1))
                return cls(Column.parse(left), Column.parse(right))
        raise CorrespondenceError(
            f"correspondence text needs '<->' or '↔': {text!r}"
        )

    def __str__(self) -> str:
        return f"{self.source} ↔ {self.target}"


@dataclass(frozen=True)
class LiftedCorrespondence:
    """A correspondence lifted to class nodes in the two CM graphs."""

    correspondence: Correspondence
    source_class: str
    target_class: str
    source_attribute: str
    target_attribute: str

    def __str__(self) -> str:
        return (
            f"{self.correspondence} [{self.source_class}.{self.source_attribute}"
            f" ↔ {self.target_class}.{self.target_attribute}]"
        )


class CorrespondenceSet:
    """An ordered, duplicate-free collection of correspondences."""

    def __init__(self, correspondences: Iterable[Correspondence] = ()) -> None:
        self._items: list[Correspondence] = []
        seen: set[Correspondence] = set()
        for correspondence in correspondences:
            if correspondence not in seen:
                seen.add(correspondence)
                self._items.append(correspondence)

    @classmethod
    def parse(cls, texts: Sequence[str]) -> "CorrespondenceSet":
        return cls(Correspondence.parse(text) for text in texts)

    def __iter__(self) -> Iterator[Correspondence]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: object) -> bool:
        return item in self._items

    def __getitem__(self, index: int) -> Correspondence:
        return self._items[index]

    def source_columns(self) -> tuple[Column, ...]:
        return tuple(c.source for c in self._items)

    def target_columns(self) -> tuple[Column, ...]:
        return tuple(c.target for c in self._items)

    def source_tables(self) -> tuple[str, ...]:
        result: dict[str, None] = {}
        for correspondence in self._items:
            result.setdefault(correspondence.source.table)
        return tuple(result)

    def target_tables(self) -> tuple[str, ...]:
        result: dict[str, None] = {}
        for correspondence in self._items:
            result.setdefault(correspondence.target.table)
        return tuple(result)

    def validate(
        self,
        source_schema: RelationalSchema,
        target_schema: RelationalSchema,
    ) -> None:
        """Raise :class:`CorrespondenceError` on dangling column references."""
        for correspondence in self._items:
            if not source_schema.has_column(correspondence.source):
                raise CorrespondenceError(
                    f"{correspondence}: source column not in schema "
                    f"{source_schema.name!r}"
                )
            if not target_schema.has_column(correspondence.target):
                raise CorrespondenceError(
                    f"{correspondence}: target column not in schema "
                    f"{target_schema.name!r}"
                )

    def lift(
        self,
        source_semantics: SchemaSemantics,
        target_semantics: SchemaSemantics,
    ) -> tuple[LiftedCorrespondence, ...]:
        """Lift every correspondence to class nodes via the table semantics."""
        lifted = []
        for correspondence in self._items:
            lifted.append(
                LiftedCorrespondence(
                    correspondence,
                    source_class=source_semantics.column_class(
                        correspondence.source
                    ),
                    target_class=target_semantics.column_class(
                        correspondence.target
                    ),
                    source_attribute=source_semantics.column_attribute(
                        correspondence.source
                    ),
                    target_attribute=target_semantics.column_attribute(
                        correspondence.target
                    ),
                )
            )
        return tuple(lifted)

    def restrict(
        self, subset: Iterable[Correspondence]
    ) -> "CorrespondenceSet":
        """The sub-collection containing only ``subset``, original order."""
        wanted = set(subset)
        return CorrespondenceSet(c for c in self._items if c in wanted)

    def __str__(self) -> str:
        return "{" + ", ".join(str(c) for c in self._items) + "}"

    def __repr__(self) -> str:
        return f"CorrespondenceSet({len(self._items)} correspondences)"
