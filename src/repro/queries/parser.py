"""A small textual parser for conjunctive queries.

Used by the benchmark datasets (hand-written "gold" mappings) and by
tests. Grammar::

    query  := name "(" terms? ")" ":-" atom ("," atom)*
    atom   := predicate "(" terms? ")"
    term   := variable | "'" text "'" | number
    terms  := term ("," term)*

Variables are bare identifiers; single-quoted text and bare numbers are
constants. Predicates default to the ``T:`` (table) namespace unless they
already carry a ``T:`` or ``O:`` prefix.

>>> q = parse_query("ans(v1, v2) :- writes(v1, y), soldAt(y, v2)")
>>> str(q)
'ans(v1, v2) :- T:soldAt(y, v2), T:writes(v1, y)'
"""

from __future__ import annotations

import re

from repro.exceptions import QueryError
from repro.queries.conjunctive import (
    Atom,
    CM_PREFIX,
    ConjunctiveQuery,
    Constant,
    DB_PREFIX,
    Term,
    Variable,
)

_ATOM_RE = re.compile(r"\s*([\w⁻#~:]+)\s*\(([^()]*)\)\s*")


def _parse_term(text: str) -> Term:
    text = text.strip()
    if not text:
        raise QueryError("empty term")
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return Constant(text[1:-1])
    if re.fullmatch(r"-?\d+", text):
        return Constant(int(text))
    if re.fullmatch(r"-?\d+\.\d+", text):
        return Constant(float(text))
    if re.fullmatch(r"[\w⁻#~]+", text):
        return Variable(text)
    raise QueryError(f"cannot parse term {text!r}")


def _parse_terms(text: str) -> list[Term]:
    text = text.strip()
    if not text:
        return []
    return [_parse_term(part) for part in text.split(",")]


def parse_atom(text: str, default_namespace: str = DB_PREFIX) -> Atom:
    """Parse one atom, defaulting to the table (``T:``) namespace."""
    match = _ATOM_RE.fullmatch(text)
    if not match:
        raise QueryError(f"cannot parse atom {text!r}")
    predicate, body = match.groups()
    if not predicate.startswith((CM_PREFIX, DB_PREFIX)):
        predicate = default_namespace + predicate
    return Atom(predicate, _parse_terms(body))


def parse_query(
    text: str,
    name: str | None = None,
    default_namespace: str = DB_PREFIX,
) -> ConjunctiveQuery:
    """Parse ``"ans(x) :- r(x, y), s(y)"`` into a :class:`ConjunctiveQuery`."""
    if ":-" not in text:
        raise QueryError(f"query text needs ':-': {text!r}")
    head_text, body_text = text.split(":-", 1)
    head_match = _ATOM_RE.fullmatch(head_text)
    if not head_match:
        raise QueryError(f"cannot parse query head {head_text!r}")
    head_name, head_terms_text = head_match.groups()
    body_atoms = []
    # Split body on commas at depth 0 (commas also occur inside atoms).
    depth = 0
    current = []
    for char in body_text:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            body_atoms.append("".join(current))
            current = []
        else:
            current.append(char)
    if "".join(current).strip():
        body_atoms.append("".join(current))
    atoms = [parse_atom(part, default_namespace) for part in body_atoms]
    return ConjunctiveQuery(
        _parse_terms(head_terms_text),
        atoms,
        name if name is not None else head_name,
    )
