"""Conjunctive queries, terms, and unification.

The library manipulates two vocabularies, distinguished by a predicate
prefix exactly as the paper does:

* ``O:`` — conceptual-model predicates: unary class predicates, binary
  attribute predicates, binary relationship predicates;
* ``T:`` — relational table predicates.

Terms are variables, constants, or Skolem terms (uninterpreted function
applications, used by the inverse-rule rewriting of Section 3.4).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterator, Mapping, Sequence

from repro.exceptions import QueryError

#: Namespace prefixes, following the paper's notation.
CM_PREFIX = "O:"
DB_PREFIX = "T:"


# ---------------------------------------------------------------------------
# Terms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable."""

    name: str

    def __post_init__(self) -> None:
        # Same value the generated __hash__ would compute, but paid once
        # at construction instead of on every dictionary operation.
        object.__setattr__(self, "_hash", hash((self.name,)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Constant:
    """A constant value embedded in a query."""

    value: object

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((self.value,)))

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True, order=True)
class SkolemTerm:
    """An uninterpreted function application ``f(t1, ..., tn)``."""

    function: str
    arguments: tuple["Term", ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "_hash", hash((self.function, self.arguments))
        )

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        args = ", ".join(str(a) for a in self.arguments)
        return f"{self.function}({args})"


Term = Variable | Constant | SkolemTerm


def variables_of(term: Term) -> Iterator[Variable]:
    """Yield every variable occurring in (possibly nested) ``term``."""
    if isinstance(term, Variable):
        yield term
    elif isinstance(term, SkolemTerm):
        for argument in term.arguments:
            yield from variables_of(argument)


def contains_skolem(term: Term) -> bool:
    return isinstance(term, SkolemTerm)


# ---------------------------------------------------------------------------
# Atoms
# ---------------------------------------------------------------------------


@dataclass(frozen=True, order=True)
class Atom:
    """A predicate applied to terms."""

    predicate: str
    terms: tuple[Term, ...]

    def __init__(self, predicate: str, terms: Sequence[Term]) -> None:
        if not predicate:
            raise QueryError("atom predicate must be non-empty")
        terms_tuple = tuple(terms)
        object.__setattr__(self, "predicate", predicate)
        object.__setattr__(self, "terms", terms_tuple)
        object.__setattr__(self, "_hash", hash((predicate, terms_tuple)))

    def __hash__(self) -> int:
        return self._hash

    @property
    def arity(self) -> int:
        return len(self.terms)

    @property
    def is_cm_atom(self) -> bool:
        return self.predicate.startswith(CM_PREFIX)

    @property
    def is_db_atom(self) -> bool:
        return self.predicate.startswith(DB_PREFIX)

    @property
    def bare_predicate(self) -> str:
        """Predicate name without the namespace prefix (cached)."""
        cached = self.__dict__.get("_bare")
        if cached is None:
            cached = self.predicate
            for prefix in (CM_PREFIX, DB_PREFIX):
                if cached.startswith(prefix):
                    cached = cached[len(prefix):]
                    break
            object.__setattr__(self, "_bare", cached)
        return cached

    def variables(self) -> tuple[Variable, ...]:
        """Every variable occurrence in term order (with repeats).

        The tuple is computed once and cached on the (frozen) atom —
        variable scans are pervasive on the rewriting hot path.
        """
        cached = self.__dict__.get("_variables")
        if cached is None:
            cached = tuple(
                var for term in self.terms for var in variables_of(term)
            )
            object.__setattr__(self, "_variables", cached)
        return cached

    def __str__(self) -> str:
        args = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate}({args})"


def cm_atom(name: str, *terms: Term) -> Atom:
    """An ``O:``-namespaced (conceptual-model) atom."""
    return Atom(CM_PREFIX + name, terms)


def db_atom(name: str, *terms: Term) -> Atom:
    """A ``T:``-namespaced (relational table) atom."""
    return Atom(DB_PREFIX + name, terms)


# ---------------------------------------------------------------------------
# Substitutions and unification
# ---------------------------------------------------------------------------

Substitution = Mapping[Variable, Term]


def substitute_term(term: Term, subst: Substitution) -> Term:
    """Apply a substitution to a term, recursing through Skolem arguments.

    Variable chains like ``{x: y, y: z}`` are chased iteratively (this
    is the hottest function of the rewriting path), and a Skolem term
    none of whose arguments change is returned as-is instead of being
    rebuilt.
    """
    if not subst:
        return term
    while type(term) is Variable:
        replacement = subst.get(term, term)
        if replacement is term or replacement == term:
            return term if replacement is term else replacement
        if type(replacement) is Variable:
            term = replacement
            continue
        term = replacement
        break
    if type(term) is SkolemTerm:
        arguments = tuple(
            substitute_term(a, subst) for a in term.arguments
        )
        if all(a is b for a, b in zip(arguments, term.arguments)):
            return term
        return SkolemTerm(term.function, arguments)
    return term


def substitute_atom(atom: Atom, subst: Substitution) -> Atom:
    return Atom(atom.predicate, [substitute_term(t, subst) for t in atom.terms])


def _occurs(variable: Variable, term: Term, subst: dict[Variable, Term]) -> bool:
    term = substitute_term(term, subst)
    if term == variable:
        return True
    if isinstance(term, SkolemTerm):
        return any(_occurs(variable, a, subst) for a in term.arguments)
    return False


def unify_terms(
    left: Term, right: Term, subst: dict[Variable, Term] | None = None
) -> dict[Variable, Term] | None:
    """Most-general unifier of two terms, extending ``subst``.

    Returns the extended substitution or ``None`` when unification fails.
    The input substitution is never mutated.
    """
    result = dict(subst or {})
    if not _unify_into(left, right, result):
        return None
    return result


def _unify_into(
    left: Term,
    right: Term,
    subst: dict[Variable, Term],
    trail: list[Variable] | None = None,
) -> bool:
    left = substitute_term(left, subst)
    right = substitute_term(right, subst)
    if left == right:
        return True
    if isinstance(left, Variable):
        if _occurs(left, right, subst):
            return False
        subst[left] = right
        if trail is not None:
            trail.append(left)
        return True
    if isinstance(right, Variable):
        return _unify_into(right, left, subst, trail)
    if isinstance(left, SkolemTerm) and isinstance(right, SkolemTerm):
        if left.function != right.function or len(left.arguments) != len(
            right.arguments
        ):
            return False
        return all(
            _unify_into(a, b, subst, trail)
            for a, b in zip(left.arguments, right.arguments)
        )
    return False


def unify_atoms(
    left: Atom, right: Atom, subst: dict[Variable, Term] | None = None
) -> dict[Variable, Term] | None:
    """Most-general unifier of two atoms, or ``None``."""
    if left.predicate != right.predicate or left.arity != right.arity:
        return None
    result = dict(subst or {})
    for a, b in zip(left.terms, right.terms):
        if not _unify_into(a, b, result):
            return None
    return result


def unify_atoms_inplace(
    left: Atom,
    right: Atom,
    subst: dict[Variable, Term],
    trail: list[Variable],
) -> bool:
    """Unify two atoms by extending ``subst`` in place.

    New bindings are appended to ``trail``; on failure ``subst`` may hold
    partial bindings, so the caller must roll back to its trail mark.
    Produces exactly the bindings :func:`unify_atoms` would, without the
    per-step dictionary copy.
    """
    if left.predicate != right.predicate or left.arity != right.arity:
        return False
    for a, b in zip(left.terms, right.terms):
        if not _unify_into(a, b, subst, trail):
            return False
    return True


# ---------------------------------------------------------------------------
# Conjunctive queries
# ---------------------------------------------------------------------------


class ConjunctiveQuery:
    """``name(head) :- body`` with set semantics.

    Head terms are usually variables but constants are permitted (useful
    when rendering partially instantiated queries). Safety is enforced:
    every head variable must occur in the body.
    """

    def __init__(
        self,
        head_terms: Sequence[Term],
        body: Sequence[Atom],
        name: str = "ans",
        *,
        check_safety: bool = True,
    ) -> None:
        """``check_safety=False`` skips the head-variable scan.

        Only for callers that guarantee safety structurally (e.g. the
        rewriting engine, whose transformations preserve it); public
        construction should keep the check on.
        """
        self.name = name
        self.head_terms: tuple[Term, ...] = tuple(head_terms)
        # Dedup body atoms while preserving first-seen order.
        seen: dict[Atom, None] = {}
        for atom in body:
            seen.setdefault(atom)
        self.body: tuple[Atom, ...] = tuple(seen)
        if check_safety:
            body_vars = set(self.body_variables())
            for term in self.head_terms:
                for var in variables_of(term):
                    if var not in body_vars:
                        raise QueryError(
                            f"unsafe query: head variable {var} not in body"
                        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def head_variables(self) -> tuple[Variable, ...]:
        result: dict[Variable, None] = {}
        for term in self.head_terms:
            for var in variables_of(term):
                result.setdefault(var)
        return tuple(result)

    def body_variables(self) -> tuple[Variable, ...]:
        result: dict[Variable, None] = {}
        for atom in self.body:
            for var in atom.variables():
                result.setdefault(var)
        return tuple(result)

    def variables(self) -> tuple[Variable, ...]:
        result: dict[Variable, None] = {}
        for var in itertools.chain(self.head_variables(), self.body_variables()):
            result.setdefault(var)
        return tuple(result)

    def existential_variables(self) -> tuple[Variable, ...]:
        head = set(self.head_variables())
        return tuple(v for v in self.body_variables() if v not in head)

    def predicates(self) -> frozenset[str]:
        return frozenset(atom.predicate for atom in self.body)

    def atoms_with(self, predicate: str) -> tuple[Atom, ...]:
        return tuple(a for a in self.body if a.predicate == predicate)

    def has_skolems(self) -> bool:
        return any(
            contains_skolem(term)
            for atom in self.body
            for term in atom.terms
        ) or any(contains_skolem(term) for term in self.head_terms)

    # ------------------------------------------------------------------
    # Transformation
    # ------------------------------------------------------------------
    def substitute(self, subst: Substitution) -> "ConjunctiveQuery":
        return ConjunctiveQuery(
            [substitute_term(t, subst) for t in self.head_terms],
            [substitute_atom(a, subst) for a in self.body],
            self.name,
        )

    def rename_apart(self, suffix: str) -> "ConjunctiveQuery":
        """Rename every variable by appending ``suffix`` (freshening)."""
        mapping = {v: Variable(v.name + suffix) for v in self.variables()}
        return self.substitute(mapping)

    def with_name(self, name: str) -> "ConjunctiveQuery":
        return ConjunctiveQuery(self.head_terms, self.body, name)

    # ------------------------------------------------------------------
    # Equality and rendering
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        """Syntactic equality modulo body-atom order (not renaming)."""
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (
            self.head_terms == other.head_terms
            and frozenset(self.body) == frozenset(other.body)
        )

    def __hash__(self) -> int:
        return hash((self.head_terms, frozenset(self.body)))

    def __str__(self) -> str:
        head = ", ".join(str(t) for t in self.head_terms)
        body = ", ".join(str(a) for a in sorted(self.body))
        return f"{self.name}({head}) :- {body}"

    def __repr__(self) -> str:
        return f"<CQ {self}>"


def fresh_variables(prefix: str, count: int) -> list[Variable]:
    """``[prefix1, prefix2, ...]`` as variables."""
    return [Variable(f"{prefix}{i}") for i in range(1, count + 1)]


class _VariableFactory:
    """Generates globally fresh variables (for chase steps etc.)."""

    def __init__(self, prefix: str = "_v") -> None:
        self._prefix = prefix
        self._counter = itertools.count(1)

    def __call__(self, hint: str = "") -> Variable:
        return Variable(f"{self._prefix}{hint}{next(self._counter)}")


VariableFactory = _VariableFactory
