"""Homomorphisms, containment, and equivalence of conjunctive queries.

Classical theory (Chandra–Merkurjev): ``q1 ⊆ q2`` iff there is a
*containment mapping* from ``q2`` into ``q1`` — a substitution of ``q2``'s
variables that sends every body atom of ``q2`` onto a body atom of ``q1``
and the head onto the head. The search is exponential in the worst case
but the queries this library produces are tiny (a handful of atoms).

Used for: eliminating redundant rewritings (Example 3.4's ``q'₂ ⊆ q'₃``),
deduplicating candidate mappings, and comparing generated mappings against
benchmark mappings in the evaluation harness.
"""

from __future__ import annotations

from typing import Iterator

from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    SkolemTerm,
    Term,
    Variable,
)


def _match_term(
    pattern: Term, target: Term, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    """One-way matching: bind pattern variables to target terms."""
    if isinstance(pattern, Variable):
        bound = mapping.get(pattern)
        if bound is None:
            extended = dict(mapping)
            extended[pattern] = target
            return extended
        return mapping if bound == target else None
    if isinstance(pattern, Constant):
        return mapping if pattern == target else None
    if isinstance(pattern, SkolemTerm):
        if (
            not isinstance(target, SkolemTerm)
            or pattern.function != target.function
            or len(pattern.arguments) != len(target.arguments)
        ):
            return None
        current: dict[Variable, Term] | None = mapping
        for p_arg, t_arg in zip(pattern.arguments, target.arguments):
            current = _match_term(p_arg, t_arg, current)
            if current is None:
                return None
        return current
    return None


def _match_atom(
    pattern: Atom, target: Atom, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    current: dict[Variable, Term] | None = mapping
    for p_term, t_term in zip(pattern.terms, target.terms):
        current = _match_term(p_term, t_term, current)
        if current is None:
            return None
    return current


def _homomorphisms(
    atoms: tuple[Atom, ...],
    target_atoms: tuple[Atom, ...],
    mapping: dict[Variable, Term],
) -> Iterator[dict[Variable, Term]]:
    if not atoms:
        yield mapping
        return
    first, rest = atoms[0], atoms[1:]
    for target in target_atoms:
        extended = _match_atom(first, target, mapping)
        if extended is not None:
            yield from _homomorphisms(rest, target_atoms, extended)


def containment_mapping(
    outer: ConjunctiveQuery, inner: ConjunctiveQuery
) -> dict[Variable, Term] | None:
    """A containment mapping from ``outer`` into ``inner``, if any.

    Its existence proves ``inner ⊆ outer``: the mapping sends ``outer``'s
    head terms onto ``inner``'s head terms (positionally) and every body
    atom of ``outer`` onto some body atom of ``inner``.
    """
    if len(outer.head_terms) != len(inner.head_terms):
        return None
    mapping: dict[Variable, Term] | None = {}
    for o_term, i_term in zip(outer.head_terms, inner.head_terms):
        mapping = _match_term(o_term, i_term, mapping)
        if mapping is None:
            return None
    # Order atoms most-constrained-first for a cheaper search.
    ordered = tuple(
        sorted(outer.body, key=lambda a: -sum(1 for _ in a.variables()))
    )
    for result in _homomorphisms(ordered, inner.body, mapping):
        return result
    return None


def is_contained_in(inner: ConjunctiveQuery, outer: ConjunctiveQuery) -> bool:
    """``inner ⊆ outer`` under set semantics."""
    return containment_mapping(outer, inner) is not None


def are_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Semantic equivalence: containment in both directions."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of ``query``: remove body atoms while staying equivalent.

    Computes a minimal equivalent subquery by greedy deletion; the result
    is unique up to isomorphism (the classical *core*). Only atoms whose
    predicate occurs more than once can possibly be folded onto another
    atom, so queries over distinct tables minimize in O(1).
    """
    body = list(query.body)
    changed = True
    while changed:
        changed = False
        predicate_counts: dict[str, int] = {}
        for atom in body:
            predicate_counts[atom.predicate] = (
                predicate_counts.get(atom.predicate, 0) + 1
            )
        for index in range(len(body)):
            if predicate_counts[body[index].predicate] < 2:
                continue  # nowhere for this atom to map: never droppable
            candidate_body = body[:index] + body[index + 1:]
            if not candidate_body:
                continue
            try:
                candidate = ConjunctiveQuery(
                    query.head_terms, candidate_body, query.name
                )
            except Exception:
                continue
            if are_equivalent(candidate, query):
                body = candidate_body
                changed = True
                break
    return ConjunctiveQuery(query.head_terms, body, query.name)


def keep_maximal(
    queries: list[ConjunctiveQuery],
) -> list[ConjunctiveQuery]:
    """Drop queries strictly contained in another of the list.

    This is the pruning step of Example 3.4: ``q'₂ ⊆ q'₃`` eliminates
    ``q'₂``. Among equivalent queries, the first (in list order) is kept.
    """
    survivors: list[ConjunctiveQuery] = []
    for index, query in enumerate(queries):
        dominated = False
        for other_index, other in enumerate(queries):
            if index == other_index:
                continue
            if is_contained_in(query, other):
                if is_contained_in(other, query):
                    # Equivalent: keep only the earliest occurrence.
                    if other_index < index:
                        dominated = True
                        break
                else:
                    dominated = True
                    break
        if not dominated:
            survivors.append(query)
    return survivors
