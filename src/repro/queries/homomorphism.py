"""Homomorphisms, containment, and equivalence of conjunctive queries.

Classical theory (Chandra–Merkurjev): ``q1 ⊆ q2`` iff there is a
*containment mapping* from ``q2`` into ``q1`` — a substitution of ``q2``'s
variables that sends every body atom of ``q2`` onto a body atom of ``q1``
and the head onto the head. The search is exponential in the worst case
but the queries this library produces are tiny (a handful of atoms).

Used for: eliminating redundant rewritings (Example 3.4's ``q'₂ ⊆ q'₃``),
deduplicating candidate mappings, and comparing generated mappings against
benchmark mappings in the evaluation harness.

Containment checks sit on discovery's hottest path (every candidate
rewriting is minimized and then compared pairwise in
:func:`keep_maximal`), so the search here is engineered for speed while
staying *extensionally identical* to the naive formulation:

* each query lazily carries a :class:`_QueryProfile` — its body atoms
  pre-sorted most-constrained-first, a predicate index, and signature
  sets (predicates, constants, Skolem functions) used to reject
  impossible mappings without any search;
* the backtracking search binds variables in one mutable dict with a
  trail (undo log) instead of copying the substitution at every step,
  and only consults target atoms of the matching predicate;
* both changes preserve the exact search order of the original
  atom-by-atom formulation, so the *first* mapping found — and therefore
  the value :func:`containment_mapping` returns — is unchanged.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    SkolemTerm,
    Term,
    Variable,
    variables_of,
)


def _match_term(
    pattern: Term, target: Term, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    """One-way matching: bind pattern variables to target terms."""
    if isinstance(pattern, Variable):
        bound = mapping.get(pattern)
        if bound is None:
            extended = dict(mapping)
            extended[pattern] = target
            return extended
        return mapping if bound == target else None
    if isinstance(pattern, Constant):
        return mapping if pattern == target else None
    if isinstance(pattern, SkolemTerm):
        if (
            not isinstance(target, SkolemTerm)
            or pattern.function != target.function
            or len(pattern.arguments) != len(target.arguments)
        ):
            return None
        current: dict[Variable, Term] | None = mapping
        for p_arg, t_arg in zip(pattern.arguments, target.arguments):
            current = _match_term(p_arg, t_arg, current)
            if current is None:
                return None
        return current
    return None


def _match_atom(
    pattern: Atom, target: Atom, mapping: dict[Variable, Term]
) -> dict[Variable, Term] | None:
    if pattern.predicate != target.predicate or pattern.arity != target.arity:
        return None
    current: dict[Variable, Term] | None = mapping
    for p_term, t_term in zip(pattern.terms, target.terms):
        current = _match_term(p_term, t_term, current)
        if current is None:
            return None
    return current


# ---------------------------------------------------------------------------
# Destructive matching with a trail (no per-step dict copies)
# ---------------------------------------------------------------------------


def _match_term_mut(
    pattern: Term,
    target: Term,
    mapping: dict[Variable, Term],
    trail: list[Variable],
) -> bool:
    """Like :func:`_match_term` but extends ``mapping`` in place.

    Every new binding is pushed onto ``trail`` so the caller can undo a
    failed branch with :func:`_undo_to`.
    """
    if isinstance(pattern, Variable):
        bound = mapping.get(pattern)
        if bound is None:
            mapping[pattern] = target
            trail.append(pattern)
            return True
        return bound == target
    if isinstance(pattern, Constant):
        return pattern == target
    if isinstance(pattern, SkolemTerm):
        if (
            not isinstance(target, SkolemTerm)
            or pattern.function != target.function
            or len(pattern.arguments) != len(target.arguments)
        ):
            return False
        for p_arg, t_arg in zip(pattern.arguments, target.arguments):
            if not _match_term_mut(p_arg, t_arg, mapping, trail):
                return False
        return True
    return False


def _undo_to(
    mapping: dict[Variable, Term], trail: list[Variable], mark: int
) -> None:
    while len(trail) > mark:
        del mapping[trail.pop()]


# ---------------------------------------------------------------------------
# Per-query search profile (lazily cached on the query object)
# ---------------------------------------------------------------------------


def _term_signature(
    term: Term, constants: set[object], functions: set[str]
) -> int:
    """Collect constants/Skolem functions; return the variable count."""
    if isinstance(term, Variable):
        return 1
    if isinstance(term, Constant):
        constants.add(term.value)
        return 0
    count = 0
    functions.add(term.function)
    for argument in term.arguments:
        count += _term_signature(argument, constants, functions)
    return count


class _QueryProfile:
    """Precomputed search structure of one query's body."""

    __slots__ = ("ordered", "by_predicate", "predicates", "constants", "functions")

    def __init__(self, query: ConjunctiveQuery) -> None:
        constants: set[object] = set()
        functions: set[str] = set()
        variable_counts: dict[Atom, int] = {}
        by_predicate: dict[str, list[Atom]] = {}
        for atom in query.body:
            count = 0
            for term in atom.terms:
                count += _term_signature(term, constants, functions)
            variable_counts[atom] = count
            by_predicate.setdefault(atom.predicate, []).append(atom)
        # Most-constrained-first, stable over body order — identical to
        # ``sorted(body, key=lambda a: -sum(1 for _ in a.variables()))``.
        self.ordered: tuple[Atom, ...] = tuple(
            sorted(query.body, key=lambda atom: -variable_counts[atom])
        )
        self.by_predicate: dict[str, tuple[Atom, ...]] = {
            predicate: tuple(atoms)
            for predicate, atoms in by_predicate.items()
        }
        self.predicates: frozenset[tuple[str, int]] = frozenset(
            (atom.predicate, atom.arity) for atom in query.body
        )
        self.constants: frozenset = frozenset(constants)
        self.functions: frozenset[str] = frozenset(functions)


def _profile(query: ConjunctiveQuery) -> _QueryProfile:
    profile = getattr(query, "_hom_profile", None)
    if profile is None:
        profile = _QueryProfile(query)
        query._hom_profile = profile  # lazily cached; queries are immutable
    return profile


def _cannot_map(outer: _QueryProfile, inner: _QueryProfile) -> bool:
    """Sound fast rejection of a hom ``outer`` → ``inner``.

    Every outer body atom must land on an inner atom of the same
    predicate and arity; constants map to themselves and Skolem terms to
    same-function Skolem terms, so outer's constants/functions must all
    occur in inner. Necessary conditions only — a ``False`` answer just
    means the full search runs.
    """
    return not (
        outer.predicates <= inner.predicates
        and outer.constants <= inner.constants
        and outer.functions <= inner.functions
    )


def _homomorphisms(
    atoms: tuple[Atom, ...],
    target_atoms: tuple[Atom, ...],
    mapping: dict[Variable, Term],
) -> Iterator[dict[Variable, Term]]:
    if not atoms:
        yield mapping
        return
    first, rest = atoms[0], atoms[1:]
    for target in target_atoms:
        extended = _match_atom(first, target, mapping)
        if extended is not None:
            yield from _homomorphisms(rest, target_atoms, extended)


def _bucket_atoms(body: Sequence[Atom]) -> dict[str, tuple[Atom, ...]]:
    buckets: dict[str, list[Atom]] = {}
    for atom in body:
        buckets.setdefault(atom.predicate, []).append(atom)
    return {predicate: tuple(atoms) for predicate, atoms in buckets.items()}


def _find_homomorphism(
    ordered: tuple[Atom, ...],
    target_buckets: dict[str, tuple[Atom, ...]],
    mapping: dict[Variable, Term],
) -> dict[Variable, Term] | None:
    """First homomorphism extending ``mapping``, by depth-first search.

    Candidate target atoms per pattern atom are read from the target's
    predicate index in body order — the same sequence of *successful*
    matches as scanning the full body, so the first solution found is
    identical to the naive search. Recursion depth is bounded by the
    (small) outer body size.
    """
    trail: list[Variable] = []
    count = len(ordered)

    def search(depth: int) -> bool:
        if depth == count:
            return True
        pattern = ordered[depth]
        for atom in target_buckets.get(pattern.predicate, ()):
            if pattern.arity != atom.arity:
                continue
            mark = len(trail)
            matched = True
            for p_term, t_term in zip(pattern.terms, atom.terms):
                if not _match_term_mut(p_term, t_term, mapping, trail):
                    matched = False
                    break
            if matched and search(depth + 1):
                return True
            _undo_to(mapping, trail, mark)
        return False

    return mapping if search(0) else None


def containment_mapping(
    outer: ConjunctiveQuery, inner: ConjunctiveQuery
) -> dict[Variable, Term] | None:
    """A containment mapping from ``outer`` into ``inner``, if any.

    Its existence proves ``inner ⊆ outer``: the mapping sends ``outer``'s
    head terms onto ``inner``'s head terms (positionally) and every body
    atom of ``outer`` onto some body atom of ``inner``.
    """
    if len(outer.head_terms) != len(inner.head_terms):
        return None
    outer_profile = _profile(outer)
    inner_profile = _profile(inner)
    if _cannot_map(outer_profile, inner_profile):
        return None
    mapping: dict[Variable, Term] = {}
    trail: list[Variable] = []
    for o_term, i_term in zip(outer.head_terms, inner.head_terms):
        if not _match_term_mut(o_term, i_term, mapping, trail):
            return None
    ordered = outer_profile.ordered
    if not ordered:
        return mapping
    return _find_homomorphism(ordered, inner_profile.by_predicate, mapping)


def is_contained_in(inner: ConjunctiveQuery, outer: ConjunctiveQuery) -> bool:
    """``inner ⊆ outer`` under set semantics."""
    return containment_mapping(outer, inner) is not None


def are_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Semantic equivalence: containment in both directions."""
    return is_contained_in(first, second) and is_contained_in(second, first)


def minimize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The core of ``query``: remove body atoms while staying equivalent.

    Computes a minimal equivalent subquery by greedy deletion; the result
    is unique up to isomorphism (the classical *core*). Only atoms whose
    predicate occurs more than once can possibly be folded onto another
    atom, so queries over distinct tables minimize in O(1). Dropping an
    atom always yields a superset query (fewer constraints), so only the
    ``candidate ⊆ query`` direction needs checking.
    """
    body = list(query.body)
    # The pattern side of every containment check is the *original* query,
    # so its ordered atoms are computed once.
    ordered = _profile(query).ordered
    head_variables: set[Variable] = set()
    for term in query.head_terms:
        head_variables.update(variables_of(term))
    changed = True
    while changed:
        changed = False
        predicate_counts: dict[str, int] = {}
        for atom in body:
            predicate_counts[atom.predicate] = (
                predicate_counts.get(atom.predicate, 0) + 1
            )
        if all(count < 2 for count in predicate_counts.values()):
            break  # no atom has anywhere to map: already minimal
        atom_variables = [set(atom.variables()) for atom in body]
        variable_counts: dict[Variable, int] = {}
        for variables in atom_variables:
            for variable in variables:
                variable_counts[variable] = (
                    variable_counts.get(variable, 0) + 1
                )
        base_buckets = _bucket_atoms(body)
        for index in range(len(body)):
            atom = body[index]
            if predicate_counts[atom.predicate] < 2:
                continue  # nowhere for this atom to map: never droppable
            if any(
                variable_counts[variable] == 1
                for variable in head_variables & atom_variables[index]
            ):
                continue  # dropping would leave a head variable unbound
            candidate_body = body[:index] + body[index + 1:]
            # query ⊆ candidate holds by the identity mapping (candidate's
            # atoms are a subset of query's), so equivalence reduces to
            # candidate ⊆ query — a homomorphism from the full query into
            # the candidate body that fixes the head. No intermediate
            # ConjunctiveQuery needs to be built to test that.
            buckets = dict(base_buckets)
            buckets[atom.predicate] = tuple(
                other for other in base_buckets[atom.predicate]
                if other != atom
            )
            mapping: dict[Variable, Term] = {
                variable: variable
                for term in query.head_terms
                for variable in variables_of(term)
            }
            if _find_homomorphism(ordered, buckets, mapping) is not None:
                body = candidate_body
                changed = True
                break
    # Safety is preserved: atoms are only dropped when no head variable
    # loses its last body occurrence (guard above).
    return ConjunctiveQuery(
        query.head_terms, body, query.name, check_safety=False
    )


def keep_maximal(
    queries: list[ConjunctiveQuery],
) -> list[ConjunctiveQuery]:
    """Drop queries strictly contained in another of the list.

    This is the pruning step of Example 3.4: ``q'₂ ⊆ q'₃`` eliminates
    ``q'₂``. Among equivalent queries, the first (in list order) is kept.
    """
    # Memoize the pairwise checks: ``index ⊆ other`` may be consulted
    # from both sides of the outer loop.
    contained: dict[tuple[int, int], bool] = {}

    def check(first: int, second: int) -> bool:
        key = (first, second)
        cached = contained.get(key)
        if cached is None:
            cached = is_contained_in(queries[first], queries[second])
            contained[key] = cached
        return cached

    survivors: list[ConjunctiveQuery] = []
    for index, query in enumerate(queries):
        dominated = False
        for other_index in range(len(queries)):
            if index == other_index:
                continue
            if check(index, other_index):
                if check(other_index, index):
                    # Equivalent: keep only the earliest occurrence.
                    if other_index < index:
                        dominated = True
                        break
                else:
                    dominated = True
                    break
        if not dominated:
            survivors.append(query)
    return survivors
