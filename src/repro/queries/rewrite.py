"""Rewriting CM-level queries into table-level queries (Section 3.4).

Table semantics are LAV views: ``T(X) → ∃Y.Φ(X,Y)`` with ``Φ`` a
conjunction of CM atoms. Following the paper (and Duschka–Genesereth
inverse rules), each CM atom of ``Φ`` yields an *inverse rule* whose head
is that atom with every existential variable replaced by a Skolem term
over the view's head variables, and whose body is the single table atom
``T(X)``.

Key information has already been folded in by the LAV construction
(:mod:`repro.semantics.lav`): an object variable identified by a key
column is *replaced* by that column variable, so most object positions
carry plain variables and only genuinely unidentified objects Skolemize.

:func:`rewrite_query` unfolds a conjunctive query atom-by-atom over the
inverse rules, keeps combinations whose unifier leaves the answer
Skolem-free, and prunes the result per Example 3.4: rewritings must
mention every *required* table (those linked by correspondences) and
rewritings contained in another are dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import RewritingError
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    DB_PREFIX,
    SkolemTerm,
    Term,
    Variable,
    contains_skolem,
    db_atom,
    substitute_atom,
    substitute_term,
    unify_atoms,
    variables_of,
)
from repro.queries.homomorphism import keep_maximal, minimize
from repro.queries.normalize import chase_with_keys


@dataclass(frozen=True)
class LAVView:
    """One table's semantics: ``name(head) → ∃(body vars ∖ head). body``."""

    name: str
    head: tuple[Variable, ...]
    body: tuple[Atom, ...]

    def __init__(
        self, name: str, head: Sequence[Variable], body: Sequence[Atom]
    ) -> None:
        if not name:
            raise RewritingError("LAV view needs a table name")
        head_tuple = tuple(head)
        if len(set(head_tuple)) != len(head_tuple):
            raise RewritingError(
                f"LAV view {name!r} repeats head variables: {head_tuple}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", head_tuple)
        object.__setattr__(self, "body", tuple(body))

    def existential_variables(self) -> tuple[Variable, ...]:
        head = set(self.head)
        result: dict[Variable, None] = {}
        for atom in self.body:
            for var in atom.variables():
                if var not in head:
                    result.setdefault(var)
        return tuple(result)

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(str(a) for a in self.body)
        return f"{DB_PREFIX}{self.name}({head}) → {body}"


@dataclass(frozen=True)
class InverseRule:
    """``head :- body`` with ``head`` a CM atom and ``body`` a table atom."""

    head: Atom
    body: Atom

    def __str__(self) -> str:
        return f"{self.head} :- {self.body}"


def skolem_function_name(view_name: str, variable: Variable) -> str:
    """Deterministic Skolem function name for a view's existential var."""
    return f"f_{view_name}_{variable.name}"


def inverse_rules(view: LAVView) -> tuple[InverseRule, ...]:
    """The inverse rules of one LAV view (Example 3.4).

    >>> from repro.queries.conjunctive import cm_atom, Variable
    >>> x, pname = Variable("x"), Variable("pname")
    >>> view = LAVView("person", [pname],
    ...                [cm_atom("Person", x), cm_atom("hasName", x, pname)])
    >>> for rule in inverse_rules(view):
    ...     print(rule)
    O:Person(f_person_x(pname)) :- T:person(pname)
    O:hasName(f_person_x(pname), pname) :- T:person(pname)
    """
    skolems = {
        var: SkolemTerm(skolem_function_name(view.name, var), view.head)
        for var in view.existential_variables()
    }
    body_atom = db_atom(view.name, *view.head)
    return tuple(
        InverseRule(substitute_atom(atom, skolems), body_atom)
        for atom in view.body
    )


def _rules_by_predicate(
    views: Iterable[LAVView],
) -> dict[str, list[InverseRule]]:
    index: dict[str, list[InverseRule]] = {}
    for view in views:
        for rule in inverse_rules(view):
            index.setdefault(rule.head.predicate, []).append(rule)
    return index


def _rename_rule(rule: InverseRule, suffix: str) -> InverseRule:
    mapping: dict[Variable, Term] = {}
    for atom in (rule.head, rule.body):
        for var in atom.variables():
            mapping.setdefault(var, Variable(var.name + suffix))
    return InverseRule(
        substitute_atom(rule.head, mapping),
        substitute_atom(rule.body, mapping),
    )


def _candidate_rewritings(
    query: ConjunctiveQuery,
    rule_index: dict[str, list[InverseRule]],
    limit: int,
) -> Iterator[ConjunctiveQuery]:
    per_atom_rules: list[list[InverseRule]] = []
    for atom in query.body:
        matches = rule_index.get(atom.predicate, [])
        if not matches:
            return  # Some atom has no view covering it: no rewriting.
        per_atom_rules.append(matches)
    produced = 0
    for combination in itertools.product(*per_atom_rules):
        renamed = [
            _rename_rule(rule, f"_{occurrence}")
            for occurrence, rule in enumerate(combination)
        ]
        substitution: dict[Variable, Term] | None = {}
        for atom, rule in zip(query.body, renamed):
            substitution = unify_atoms(atom, rule.head, substitution)
            if substitution is None:
                break
        if substitution is None:
            continue
        head_terms = [
            substitute_term(term, substitution) for term in query.head_terms
        ]
        if any(contains_skolem(term) for term in head_terms):
            continue
        body_atoms = [
            substitute_atom(rule.body, substitution) for rule in renamed
        ]
        if any(
            contains_skolem(term) for atom in body_atoms for term in atom.terms
        ):
            continue
        # Prefer the query's own variable names over the renamed-apart view
        # variables they unified with, for readable output.
        rename: dict[Variable, Term] = {}
        query_vars = set(query.variables())
        for query_var in query.variables():
            image = substitute_term(query_var, substitution)
            if (
                isinstance(image, Variable)
                and image != query_var
                and image not in query_vars
                and image not in rename
            ):
                rename[image] = query_var
        head_terms = [substitute_term(term, rename) for term in head_terms]
        body_atoms = [substitute_atom(atom, rename) for atom in body_atoms]
        yield ConjunctiveQuery(head_terms, body_atoms, query.name)
        produced += 1
        if produced >= limit:
            return


def rewrite_query(
    query: ConjunctiveQuery,
    views: Sequence[LAVView],
    required_tables: Iterable[str] = (),
    limit: int = 256,
    key_positions: Mapping[str, tuple[int, ...]] | None = None,
) -> list[ConjunctiveQuery]:
    """All maximal table-level rewritings of a CM-level query.

    Parameters
    ----------
    query:
        A conjunctive query over ``O:`` predicates.
    views:
        The LAV table semantics of one schema.
    required_tables:
        Table names that every surviving rewriting must mention —
        the paper requires rewritings to "mention tables that have
        columns linked by the correspondences".
    limit:
        Safety cap on the number of candidate combinations expanded.

    Returns the surviving rewritings, deterministically ordered with the
    most specific (largest-body) queries first — matching the paper's
    preference for the most faithful expression (``q'₃`` over ``q'₁``).
    """
    for atom in query.body:
        if not atom.is_cm_atom:
            raise RewritingError(
                f"rewrite_query expects O: atoms, got {atom.predicate!r}"
            )
    rule_index = _rules_by_predicate(views)
    candidates = []
    for candidate in _candidate_rewritings(query, rule_index, limit):
        if key_positions:
            # Collapse same-key atoms (egd chase), dropping rewritings
            # that become unsatisfiable.
            chased = chase_with_keys(candidate, key_positions)
            if chased is None:
                continue
            candidate = chased
        candidates.append(minimize(candidate))
    required = set(required_tables)
    if required:
        candidates = [
            candidate
            for candidate in candidates
            if required
            <= {atom.bare_predicate for atom in candidate.body}
        ]
    # Deterministic order: larger bodies (more faithful) first, then text.
    candidates.sort(key=lambda cq: (-len(cq.body), str(cq)))
    return keep_maximal(candidates)
