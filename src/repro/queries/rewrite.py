"""Rewriting CM-level queries into table-level queries (Section 3.4).

Table semantics are LAV views: ``T(X) → ∃Y.Φ(X,Y)`` with ``Φ`` a
conjunction of CM atoms. Following the paper (and Duschka–Genesereth
inverse rules), each CM atom of ``Φ`` yields an *inverse rule* whose head
is that atom with every existential variable replaced by a Skolem term
over the view's head variables, and whose body is the single table atom
``T(X)``.

Key information has already been folded in by the LAV construction
(:mod:`repro.semantics.lav`): an object variable identified by a key
column is *replaced* by that column variable, so most object positions
carry plain variables and only genuinely unidentified objects Skolemize.

:func:`rewrite_query` unfolds a conjunctive query atom-by-atom over the
inverse rules, keeps combinations whose unifier leaves the answer
Skolem-free, and prunes the result per Example 3.4: rewritings must
mention every *required* table (those linked by correspondences) and
rewritings contained in another are dropped.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Iterable, Iterator, Mapping, Sequence

from repro.exceptions import RewritingError
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    DB_PREFIX,
    SkolemTerm,
    Term,
    Variable,
    contains_skolem,
    db_atom,
    substitute_atom,
    substitute_term,
    unify_atoms_inplace,
    variables_of,
)
from repro.perf import config as perf_config
from repro.perf import counters as perf_counters
from repro.queries.homomorphism import keep_maximal, minimize
from repro.queries.normalize import chase_with_keys


@dataclass(frozen=True)
class LAVView:
    """One table's semantics: ``name(head) → ∃(body vars ∖ head). body``."""

    name: str
    head: tuple[Variable, ...]
    body: tuple[Atom, ...]

    def __init__(
        self, name: str, head: Sequence[Variable], body: Sequence[Atom]
    ) -> None:
        if not name:
            raise RewritingError("LAV view needs a table name")
        head_tuple = tuple(head)
        if len(set(head_tuple)) != len(head_tuple):
            raise RewritingError(
                f"LAV view {name!r} repeats head variables: {head_tuple}"
            )
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "head", head_tuple)
        object.__setattr__(self, "body", tuple(body))

    def existential_variables(self) -> tuple[Variable, ...]:
        head = set(self.head)
        result: dict[Variable, None] = {}
        for atom in self.body:
            for var in atom.variables():
                if var not in head:
                    result.setdefault(var)
        return tuple(result)

    def __str__(self) -> str:
        head = ", ".join(v.name for v in self.head)
        body = ", ".join(str(a) for a in self.body)
        return f"{DB_PREFIX}{self.name}({head}) → {body}"


@dataclass(frozen=True)
class InverseRule:
    """``head :- body`` with ``head`` a CM atom and ``body`` a table atom."""

    head: Atom
    body: Atom

    def __str__(self) -> str:
        return f"{self.head} :- {self.body}"


def skolem_function_name(view_name: str, variable: Variable) -> str:
    """Deterministic Skolem function name for a view's existential var."""
    return f"f_{view_name}_{variable.name}"


def inverse_rules(view: LAVView) -> tuple[InverseRule, ...]:
    """The inverse rules of one LAV view (Example 3.4).

    >>> from repro.queries.conjunctive import cm_atom, Variable
    >>> x, pname = Variable("x"), Variable("pname")
    >>> view = LAVView("person", [pname],
    ...                [cm_atom("Person", x), cm_atom("hasName", x, pname)])
    >>> for rule in inverse_rules(view):
    ...     print(rule)
    O:Person(f_person_x(pname)) :- T:person(pname)
    O:hasName(f_person_x(pname), pname) :- T:person(pname)
    """
    skolems = {
        var: SkolemTerm(skolem_function_name(view.name, var), view.head)
        for var in view.existential_variables()
    }
    body_atom = db_atom(view.name, *view.head)
    return tuple(
        InverseRule(substitute_atom(atom, skolems), body_atom)
        for atom in view.body
    )


def _rules_by_predicate(
    views: Iterable[LAVView],
) -> dict[str, list[InverseRule]]:
    index: dict[str, list[InverseRule]] = {}
    for view in views:
        for rule in inverse_rules(view):
            index.setdefault(rule.head.predicate, []).append(rule)
    return index


def _rename_rule(rule: InverseRule, suffix: str) -> InverseRule:
    mapping: dict[Variable, Term] = {}
    for atom in (rule.head, rule.body):
        for var in atom.variables():
            mapping.setdefault(var, Variable(var.name + suffix))
    return InverseRule(
        substitute_atom(rule.head, mapping),
        substitute_atom(rule.body, mapping),
    )


class _RewritePlan:
    """Precomputed unfolding state for one set of LAV views.

    Building inverse rules and renaming them apart per atom occurrence is
    pure string/tuple churn that repeats identically for every query over
    the same schema, so the plan caches the predicate→rules index and the
    renamed-apart candidate lists per (predicate, occurrence).

    ``prefix_states`` is the *subtree-translation memo*: for a body
    prefix (a tuple of CM atoms, matched by content), the complete list
    of surviving partial unifications at that depth, in DFS discovery
    order. Two queries sharing a body prefix — e.g. translations of CSGs
    sharing a root fragment across targets — unify the shared prefix
    once; the second query resumes from the recorded states. States are
    a pure function of (views, prefix): rule candidates are renamed per
    *position*, so equal prefixes see identical rules and bindings.
    """

    __slots__ = ("rule_index", "_renamed", "prefix_states")

    def __init__(self, views: tuple[LAVView, ...]) -> None:
        self.rule_index = _rules_by_predicate(views)
        self._renamed: dict[tuple[str, int], tuple[InverseRule, ...]] = {}
        self.prefix_states: dict[
            tuple[Atom, ...],
            tuple[
                tuple[
                    tuple[InverseRule, ...],
                    tuple[tuple[Variable, Term], ...],
                ],
                ...,
            ],
        ] = {}

    def renamed_candidates(
        self, predicate: str, occurrence: int
    ) -> tuple[InverseRule, ...]:
        key = (predicate, occurrence)
        cached = self._renamed.get(key)
        if cached is None:
            cached = tuple(
                _rename_rule(rule, f"_{occurrence}")
                for rule in self.rule_index.get(predicate, [])
            )
            self._renamed[key] = cached
        return cached


@lru_cache(maxsize=128)
def _plan_for(views: tuple[LAVView, ...]) -> _RewritePlan:
    # Views are frozen value objects, so the cache can never go stale:
    # equal keys always denote identical rule sets.
    return _RewritePlan(views)


def clear_rewrite_caches() -> None:
    """Drop every cached rewrite plan (and with it every subtree memo).

    ``repro.perf.clear_caches`` calls this so a forced-cold run rebuilds
    plans and prefix states from scratch.
    """
    _plan_for.cache_clear()


#: Sentinel for candidates that count toward the enumeration limit but
#: are dropped early (missing a required table). Keeping them in the
#: count preserves the exact enumeration window of the unfiltered search.
_FILTERED = object()

#: Subtree-memo capture window. Shared prefixes between translations sit
#: at the top of the DFS tree (a CSG fragment shared across targets maps
#: to the leading body atoms), and the tree fans out with depth — so
#: capture is limited to shallow depths and small state lists, keeping
#: the bookkeeping off the hot combinatorial tail.
_SUBTREE_MAX_DEPTH = 4
_SUBTREE_MAX_STATES = 256


def _candidate_rewritings(
    query: ConjunctiveQuery,
    plan: _RewritePlan,
    limit: int,
    required_bare: frozenset[str] = frozenset(),
) -> Iterator[ConjunctiveQuery]:
    body = query.body
    per_atom_rules: list[tuple[InverseRule, ...]] = []
    for occurrence, atom in enumerate(body):
        matches = plan.renamed_candidates(atom.predicate, occurrence)
        if not matches:
            return  # Some atom has no view covering it: no rewriting.
        per_atom_rules.append(matches)

    query_variables = query.variables()
    query_var_set = set(query_variables)
    count = len(body)

    # Required-table subtree pruning. A subtree whose chosen rules plus
    # every rule still choosable downstream cannot mention some required
    # table only produces candidates ``finish`` would mark ``_FILTERED``.
    # Skipping them is only exact when the ``limit`` window provably
    # cannot bind — filtered candidates count toward ``produced`` — so
    # the mode is enabled iff the total number of rule combinations is
    # at most ``limit``: then enumeration always runs to completion and
    # the count is irrelevant.
    suffix_tables: tuple[frozenset[str], ...] | None = None
    if required_bare:
        product = 1
        for matches in per_atom_rules:
            product *= len(matches)
            if product > limit:
                break
        if product <= limit:
            accumulated: frozenset[str] = frozenset()
            suffixes = [accumulated]
            for matches in reversed(per_atom_rules):
                accumulated = accumulated | frozenset(
                    rule.body.bare_predicate for rule in matches
                )
                suffixes.append(accumulated)
            suffixes.reverse()  # suffixes[d]: tables reachable from depth d
            suffix_tables = tuple(suffixes)
    table_counts: dict[str, int] = {}

    def finish(
        chosen: list[InverseRule], substitution: dict[Variable, Term]
    ) -> ConjunctiveQuery | object | None:
        # The substitution is fixed for the whole combination and join
        # variables recur across atoms, so chase each distinct term's
        # binding chain once.
        resolved: dict[Term, Term] = {}

        def lookup(term: Term) -> Term:
            image = resolved.get(term)
            if image is None:
                image = substitute_term(term, substitution)
                resolved[term] = image
            return image

        head_terms = [lookup(term) for term in query.head_terms]
        if any(contains_skolem(term) for term in head_terms):
            return None
        body_atoms = [
            Atom(rule.body.predicate, [lookup(t) for t in rule.body.terms])
            for rule in chosen
        ]
        if any(
            contains_skolem(term) for atom in body_atoms for term in atom.terms
        ):
            return None
        # From here the candidate is countable. Candidates missing a
        # required table are dropped without paying for renaming and
        # query construction — chase and minimization only remove atoms,
        # so they could never regain the table downstream.
        if required_bare and not required_bare <= {
            rule.body.bare_predicate for rule in chosen
        }:
            return _FILTERED
        # Prefer the query's own variable names over the renamed-apart view
        # variables they unified with, for readable output.
        rename: dict[Variable, Term] = {}
        for query_var in query_variables:
            image = lookup(query_var)
            if (
                isinstance(image, Variable)
                and image != query_var
                and image not in query_var_set
                and image not in rename
            ):
                rename[image] = query_var
        if rename:
            head_terms = [
                substitute_term(term, rename) for term in head_terms
            ]
            body_atoms = [
                substitute_atom(atom, rename) for atom in body_atoms
            ]
        # Safe by construction: every non-Skolem head image also occurs
        # in the image of the view body it unified with.
        return ConjunctiveQuery(
            head_terms, body_atoms, query.name, check_safety=False
        )

    # Depth-first over rule choices, in exactly ``itertools.product``'s
    # enumeration order, but sharing the unification work of common
    # prefixes: a prefix that fails to unify prunes its whole subtree
    # (those combinations would each have failed at the same atom).
    # The substitution lives in a single dict with a trail (undo log)
    # instead of being copied at every extension.
    #
    # The plan's subtree memo sits on top: surviving partial
    # unifications are recorded per body prefix (in DFS order), and a
    # later query sharing a prefix resumes from those states instead of
    # re-unifying it. States are only stored when the walk ran to
    # completion — aborting at ``limit`` leaves the per-depth lists
    # partial — so a resumed enumeration replays the exact scratch
    # order, limit window included.
    produced = 0
    chosen: list[InverseRule] = []
    substitution: dict[Variable, Term] = {}
    trail: list[Variable] = []
    # Shallowest depth at which required-table pruning fired: captured
    # state lists deeper than this are incomplete and must not be
    # stored in the subtree memo (states are required-set independent).
    shallowest_prune = count + 1

    memo = plan.prefix_states if perf_config.enabled() else None
    bound: int | None = None
    if memo is not None:
        bound = perf_config.cache_size("subtree")
        if bound == 0:
            memo = None

    start_depth = 0
    resume_states = None
    if memo is not None and count > 1:
        for depth in range(min(count - 1, _SUBTREE_MAX_DEPTH), 0, -1):
            entry = memo.get(body[:depth])
            if entry is not None:
                start_depth = depth
                resume_states = entry
                perf_counters.record("subtree_cache_hits")
                break
        else:
            perf_counters.record("subtree_cache_misses")

    captured: dict[int, list] | None = None
    if memo is not None and count > 1:
        captured = {
            depth: []
            for depth in range(
                start_depth + 1, min(count, _SUBTREE_MAX_DEPTH + 1)
            )
        }
        if not captured:
            captured = None

    def walk(depth: int) -> Iterator[ConjunctiveQuery]:
        nonlocal produced, shallowest_prune
        if depth == count:
            result = finish(chosen, substitution)
            if result is not None:
                produced += 1
                if result is not _FILTERED:
                    yield result
            return
        if captured is not None:
            states = captured.get(depth)
            if states is not None:
                if len(states) >= _SUBTREE_MAX_STATES:
                    # Too bushy to be worth replaying: stop capturing
                    # this depth (the entry will simply not be stored).
                    del captured[depth]
                else:
                    states.append(
                        (
                            tuple(chosen),
                            tuple(
                                (var, substitution[var]) for var in trail
                            ),
                        )
                    )
        # The capture above must precede this check: memo states are
        # required-set independent, and a pruned subtree skips the
        # deeper captures (hence ``shallowest_prune`` gates the store).
        if suffix_tables is not None:
            reachable = suffix_tables[depth]
            for table in required_bare:
                if table not in reachable and not table_counts.get(table):
                    shallowest_prune = min(shallowest_prune, depth)
                    perf_counters.record("required_subtree_prunes")
                    return
        pattern = body[depth]
        for rule in per_atom_rules[depth]:
            mark = len(trail)
            if unify_atoms_inplace(pattern, rule.head, substitution, trail):
                chosen.append(rule)
                if suffix_tables is not None:
                    bare = rule.body.bare_predicate
                    table_counts[bare] = table_counts.get(bare, 0) + 1
                yield from walk(depth + 1)
                chosen.pop()
                if suffix_tables is not None:
                    table_counts[bare] -= 1
            while len(trail) > mark:
                del substitution[trail.pop()]
            if produced >= limit:
                return

    if resume_states is None:
        yield from walk(0)
    else:
        for state_rules, state_bindings in resume_states:
            if produced >= limit:
                break
            chosen[:] = state_rules
            substitution.clear()
            substitution.update(state_bindings)
            trail[:] = [var for var, _ in state_bindings]
            if suffix_tables is not None:
                table_counts.clear()
                for rule in state_rules:
                    bare = rule.body.bare_predicate
                    table_counts[bare] = table_counts.get(bare, 0) + 1
            yield from walk(start_depth)
    if captured is not None and produced < limit:
        for depth, states in captured.items():
            if depth > shallowest_prune:
                continue  # Incomplete: a pruned subtree skipped captures.
            key = body[:depth]
            if key not in memo:
                if bound is not None and len(memo) >= bound:
                    memo.clear()
                memo[key] = tuple(states)


def rewrite_query(
    query: ConjunctiveQuery,
    views: Sequence[LAVView],
    required_tables: Iterable[str] = (),
    limit: int = 256,
    key_positions: Mapping[str, tuple[int, ...]] | None = None,
) -> list[ConjunctiveQuery]:
    """All maximal table-level rewritings of a CM-level query.

    Parameters
    ----------
    query:
        A conjunctive query over ``O:`` predicates.
    views:
        The LAV table semantics of one schema.
    required_tables:
        Table names that every surviving rewriting must mention —
        the paper requires rewritings to "mention tables that have
        columns linked by the correspondences".
    limit:
        Safety cap on the number of candidate combinations expanded.

    Returns the surviving rewritings, deterministically ordered with the
    most specific (largest-body) queries first — matching the paper's
    preference for the most faithful expression (``q'₃`` over ``q'₁``).
    """
    for atom in query.body:
        if not atom.is_cm_atom:
            raise RewritingError(
                f"rewrite_query expects O: atoms, got {atom.predicate!r}"
            )
    plan = _plan_for(tuple(views))
    required = frozenset(required_tables)
    candidates = []
    for candidate in _candidate_rewritings(query, plan, limit, required):
        if key_positions:
            # Collapse same-key atoms (egd chase), dropping rewritings
            # that become unsatisfiable.
            chased = chase_with_keys(candidate, key_positions)
            if chased is None:
                continue
            candidate = chased
        candidates.append(minimize(candidate))
    if required:
        candidates = [
            candidate
            for candidate in candidates
            if required
            <= {atom.bare_predicate for atom in candidate.body}
        ]
    # Deterministic order: larger bodies (more faithful) first, then text.
    candidates.sort(key=lambda cq: (-len(cq.body), str(cq)))
    # Drop exact duplicates (equal head and body set) before the O(n²)
    # containment sweep: duplicates are mutually equivalent, so
    # keep_maximal would keep only the earliest anyway.
    candidates = list(dict.fromkeys(candidates))
    return keep_maximal(candidates)
