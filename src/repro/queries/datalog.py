"""Evaluation of conjunctive queries over relational instances.

A non-recursive, backtracking join evaluator: body atoms must be ``T:``
(table) atoms whose predicates name tables of the instance's schema.
Used to *execute* discovered mapping expressions and to cross-check the
algebra evaluator in tests.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from repro.exceptions import QueryError
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    SkolemTerm,
    Term,
    Variable,
)
from repro.relational.instance import Instance

Binding = dict[Variable, Hashable]


def _match_row(
    atom: Atom, row: tuple, binding: Binding
) -> Binding | None:
    """Extend ``binding`` so ``atom`` matches ``row``, or return ``None``."""
    extended = dict(binding)
    for term, value in zip(atom.terms, row):
        if isinstance(term, Variable):
            if term in extended:
                if extended[term] != value:
                    return None
            else:
                extended[term] = value
        elif isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            raise QueryError(
                f"cannot evaluate atom with Skolem term: {atom}"
            )
    return extended


def _join(
    atoms: tuple[Atom, ...], instance: Instance, binding: Binding
) -> Iterator[Binding]:
    if not atoms:
        yield binding
        return
    first, rest = atoms[0], atoms[1:]
    if not first.is_db_atom:
        raise QueryError(
            f"evaluation requires T: atoms, got {first.predicate!r}"
        )
    table_name = first.bare_predicate
    table = instance.schema.table(table_name)
    if table.arity != first.arity:
        raise QueryError(
            f"atom {first} has arity {first.arity} but table "
            f"{table_name!r} has {table.arity} columns"
        )
    for row in instance.rows(table_name):
        extended = _match_row(first, row, binding)
        if extended is not None:
            yield from _join(rest, instance, extended)


def _evaluate_head(term: Term, binding: Binding) -> Hashable:
    if isinstance(term, Variable):
        return binding[term]
    if isinstance(term, Constant):
        return term.value
    raise QueryError(f"cannot evaluate head term {term}")


def evaluate_query(
    query: ConjunctiveQuery, instance: Instance
) -> frozenset[tuple]:
    """All answer tuples of ``query`` over ``instance`` (set semantics).

    >>> from repro.relational import Instance, RelationalSchema, Table
    >>> from repro.queries.conjunctive import db_atom, Variable
    >>> schema = RelationalSchema("s", [Table("r", ["a", "b"])])
    >>> inst = Instance.from_dict(schema, {"r": [(1, 2), (1, 3)]})
    >>> x, y = Variable("x"), Variable("y")
    >>> q = ConjunctiveQuery([x], [db_atom("r", x, y)])
    >>> sorted(evaluate_query(q, inst))
    [(1,)]
    """
    # Order atoms so highly shared variables bind early (cheap heuristic).
    ordered = tuple(
        sorted(query.body, key=lambda a: (-a.arity, a.predicate))
    )
    answers = set()
    for binding in _join(ordered, instance, {}):
        answers.add(
            tuple(_evaluate_head(term, binding) for term in query.head_terms)
        )
    return frozenset(answers)


def evaluate_bindings(
    query: ConjunctiveQuery, instance: Instance
) -> tuple[Binding, ...]:
    """All satisfying bindings (full variable assignments), deterministic.

    Used by data exchange, which needs bindings for *all* body variables —
    including existential ones — to build Skolem values.
    """
    ordered = tuple(
        sorted(query.body, key=lambda a: (-a.arity, a.predicate))
    )
    results = []
    seen = set()
    for binding in _join(ordered, instance, {}):
        frozen = tuple(sorted((v.name, repr(val)) for v, val in binding.items()))
        if frozen not in seen:
            seen.add(frozen)
            results.append(binding)
    return tuple(results)
