"""Key-aware normalization of table-level queries (egd chase).

The LAV rewriting joins view occurrences on shared variables; when a
table has a primary key, two atoms of that table agreeing on the key
positions denote the *same row*, so their remaining positions can be
unified and the atoms collapsed. This is the classical chase with the
key's functional dependencies, and is what turns the three-way
``employee`` self-join produced for Example 1.2's target into the single
atom a human would write.
"""

from __future__ import annotations

from typing import Mapping

from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Constant,
    Term,
    Variable,
    substitute_atom,
    substitute_term,
    unify_terms,
)
from repro.relational.schema import RelationalSchema


def key_positions_of_schema(
    schema: RelationalSchema,
) -> dict[str, tuple[int, ...]]:
    """``table name → primary-key column positions`` for a schema."""
    positions: dict[str, tuple[int, ...]] = {}
    for table in schema:
        if table.primary_key:
            positions[table.name] = tuple(
                table.columns.index(column) for column in table.primary_key
            )
    return positions


def chase_with_keys(
    query: ConjunctiveQuery,
    key_positions: Mapping[str, tuple[int, ...]],
) -> ConjunctiveQuery | None:
    """Chase ``query`` with key dependencies; ``None`` when unsatisfiable.

    Repeatedly: find two body atoms over the same keyed table whose key
    terms are syntactically equal, unify their remaining terms, and
    substitute throughout. Conflicting constants make the query
    unsatisfiable (it can be dropped by the caller).
    """
    atoms = list(query.body)
    head = list(query.head_terms)
    changed = True
    while changed:
        changed = False
        # A chase step needs two atoms over the same keyed table, so only
        # keyed predicates occurring at least twice can possibly fire;
        # scanning same-predicate position pairs in ascending order visits
        # exactly the candidate pairs the full O(n²) sweep would match.
        by_predicate: dict[str, list[int]] = {}
        for position, atom in enumerate(atoms):
            if key_positions.get(atom.bare_predicate):
                by_predicate.setdefault(atom.predicate, []).append(position)
        if not any(len(group) >= 2 for group in by_predicate.values()):
            break
        for i in range(len(atoms)):
            first = atoms[i]
            group = by_predicate.get(first.predicate)
            if not group or len(group) < 2:
                continue
            positions = key_positions[first.bare_predicate]
            for j in group:
                if j <= i:
                    continue
                second = atoms[j]
                if first.arity != second.arity:
                    continue
                if any(
                    first.terms[p] != second.terms[p] for p in positions
                ):
                    continue
                preferred = {
                    term
                    for term in head
                    if isinstance(term, Variable)
                }
                substitution = _unify_rows(first, second, preferred)
                if substitution is None:
                    return None  # key violation: equal keys, clashing rows
                if substitution:
                    # Only atoms mentioning a substituted variable change.
                    atoms = [
                        substitute_atom(a, substitution)
                        if any(v in substitution for v in a.variables())
                        else a
                        for a in atoms
                    ]
                    head = [substitute_term(t, substitution) for t in head]
                # The two atoms are now identical: drop the duplicate so the
                # fixpoint loop terminates.
                deduped_pass: dict[Atom, None] = {}
                for atom in atoms:
                    deduped_pass.setdefault(atom)
                atoms = list(deduped_pass)
                changed = True
                break
            if changed:
                break
    deduped: dict[Atom, None] = {}
    for atom in atoms:
        deduped.setdefault(atom)
    # Chasing a safe query yields a safe query: head and body receive the
    # same substitutions and dedup keeps one copy of every atom.
    return ConjunctiveQuery(
        head, tuple(deduped), query.name, check_safety=False
    )


def _unify_rows(
    first: Atom, second: Atom, preferred: set[Variable]
) -> dict[Variable, Term] | None:
    """Row unifier that keeps head (correspondence) variables alive."""
    substitution: dict[Variable, Term] = {}
    for raw_left, raw_right in zip(first.terms, second.terms):
        left = substitute_term(raw_left, substitution)
        right = substitute_term(raw_right, substitution)
        if left == right:
            continue
        if isinstance(left, Variable) and isinstance(right, Variable):
            if left in preferred and right not in preferred:
                substitution[right] = left
            elif right in preferred and left not in preferred:
                substitution[left] = right
            else:
                keep, drop = sorted((left, right))
                substitution[drop] = keep
        elif isinstance(left, Variable):
            substitution[left] = right
        elif isinstance(right, Variable):
            substitution[right] = left
        else:
            extended = unify_terms(left, right, substitution)
            if extended is None:
                return None
            substitution = extended
    return substitution
