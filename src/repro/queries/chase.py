"""The symbolic chase with inclusion dependencies.

The RIC-based baseline (Section 1, "Current Solution") assembles *logical
relations* by chasing a table atom with the schema's referential integrity
constraints: whenever a child atom's foreign-key terms have no matching
parent atom, the parent atom is added with fresh variables in its other
positions. The fixpoint is the join expression of "logically connected
elements".

Cyclic RICs (e.g. an employee's manager referencing employees) would make
the naive chase run forever; a configurable depth bound cuts such loops,
mirroring how practical systems bound the chase tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.exceptions import QueryError
from repro.queries.conjunctive import (
    Atom,
    Term,
    Variable,
    VariableFactory,
)
from repro.relational.constraints import ReferentialConstraint
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class InclusionDependency:
    """A positional inclusion dependency between two predicates.

    ``child_predicate[child_positions] ⊆ parent_predicate[parent_positions]``
    """

    child_predicate: str
    child_positions: tuple[int, ...]
    parent_predicate: str
    parent_positions: tuple[int, ...]
    parent_arity: int

    def __post_init__(self) -> None:
        if len(self.child_positions) != len(self.parent_positions):
            raise QueryError(
                "inclusion dependency position lists differ in length"
            )
        if not self.child_positions:
            raise QueryError("inclusion dependency needs at least one position")
        if any(p >= self.parent_arity for p in self.parent_positions):
            raise QueryError(
                "parent position exceeds parent arity in inclusion dependency"
            )

    @classmethod
    def from_ric(
        cls,
        ric: ReferentialConstraint,
        schema: RelationalSchema,
        predicate_prefix: str = "",
    ) -> "InclusionDependency":
        """Compile a schema RIC into a positional dependency."""
        child = schema.table(ric.child_table)
        parent = schema.table(ric.parent_table)
        return cls(
            child_predicate=predicate_prefix + child.name,
            child_positions=tuple(
                child.columns.index(c) for c in ric.child_columns
            ),
            parent_predicate=predicate_prefix + parent.name,
            parent_positions=tuple(
                parent.columns.index(c) for c in ric.parent_columns
            ),
            parent_arity=parent.arity,
        )

    def __str__(self) -> str:
        return (
            f"{self.child_predicate}{list(self.child_positions)} ⊆ "
            f"{self.parent_predicate}{list(self.parent_positions)}"
        )


def _satisfied(
    atoms: Iterable[Atom], dependency: InclusionDependency, key: tuple[Term, ...]
) -> bool:
    for atom in atoms:
        if atom.predicate != dependency.parent_predicate:
            continue
        if tuple(atom.terms[p] for p in dependency.parent_positions) == key:
            return True
    return False


class ChaseEngine:
    """Chases atom sets with inclusion dependencies to a (bounded) fixpoint.

    ``max_depth`` bounds how many dependency applications may stack on one
    chain of generated atoms; depth 0 atoms are the user-provided seeds.
    The default depth comfortably covers real schemas (whose RIC chains
    are short) while guaranteeing termination on cyclic schemas.
    """

    def __init__(
        self,
        dependencies: Sequence[InclusionDependency],
        max_depth: int = 8,
    ) -> None:
        if max_depth < 1:
            raise QueryError("chase max_depth must be at least 1")
        self.dependencies = tuple(dependencies)
        self.max_depth = max_depth

    def chase(
        self,
        seed_atoms: Sequence[Atom],
        fresh: VariableFactory | None = None,
    ) -> tuple[Atom, ...]:
        """Return the chased atom set (seeds first, in generation order)."""
        fresh = fresh or VariableFactory()
        atoms: list[Atom] = list(seed_atoms)
        depth: dict[Atom, int] = {atom: 0 for atom in atoms}
        queue: list[Atom] = list(atoms)
        while queue:
            atom = queue.pop(0)
            if depth[atom] >= self.max_depth:
                continue
            for dependency in self.dependencies:
                if atom.predicate != dependency.child_predicate:
                    continue
                if atom.arity <= max(dependency.child_positions):
                    raise QueryError(
                        f"atom {atom} too short for dependency {dependency}"
                    )
                key = tuple(atom.terms[p] for p in dependency.child_positions)
                if _satisfied(atoms, dependency, key):
                    continue
                terms: list[Term] = [
                    fresh() for _ in range(dependency.parent_arity)
                ]
                for position, term in zip(dependency.parent_positions, key):
                    terms[position] = term
                new_atom = Atom(dependency.parent_predicate, terms)
                atoms.append(new_atom)
                depth[new_atom] = depth[atom] + 1
                queue.append(new_atom)
        return tuple(atoms)

    def chase_closure_size(self, seed_atoms: Sequence[Atom]) -> int:
        """Number of atoms in the chased set (diagnostic helper)."""
        return len(self.chase(seed_atoms))


def table_seed_atom(
    schema: RelationalSchema,
    table_name: str,
    predicate_prefix: str = "",
    variable_prefix: str | None = None,
) -> Atom:
    """The canonical seed atom of a table: one variable per column.

    Variables are named after the columns (``x_<table>_<column>``), which
    keeps chase output and logical relations readable.
    """
    table = schema.table(table_name)
    prefix = variable_prefix if variable_prefix is not None else f"x_{table_name}"
    return Atom(
        predicate_prefix + table.name,
        [Variable(f"{prefix}_{column}") for column in table.columns],
    )
