"""Query machinery: conjunctive queries, containment, chase, rewriting."""

from repro.queries.conjunctive import (
    Atom,
    CM_PREFIX,
    ConjunctiveQuery,
    Constant,
    DB_PREFIX,
    SkolemTerm,
    Term,
    Variable,
    VariableFactory,
    cm_atom,
    db_atom,
    substitute_atom,
    substitute_term,
    unify_atoms,
    unify_terms,
)
from repro.queries.homomorphism import (
    are_equivalent,
    containment_mapping,
    is_contained_in,
    keep_maximal,
    minimize,
)
from repro.queries.chase import (
    ChaseEngine,
    InclusionDependency,
    table_seed_atom,
)
from repro.queries.datalog import evaluate_bindings, evaluate_query
from repro.queries.rewrite import (
    InverseRule,
    LAVView,
    inverse_rules,
    rewrite_query,
    skolem_function_name,
)

__all__ = [
    "Atom",
    "CM_PREFIX",
    "ConjunctiveQuery",
    "Constant",
    "DB_PREFIX",
    "SkolemTerm",
    "Term",
    "Variable",
    "VariableFactory",
    "cm_atom",
    "db_atom",
    "substitute_atom",
    "substitute_term",
    "unify_atoms",
    "unify_terms",
    "are_equivalent",
    "containment_mapping",
    "is_contained_in",
    "keep_maximal",
    "minimize",
    "ChaseEngine",
    "InclusionDependency",
    "table_seed_atom",
    "evaluate_bindings",
    "evaluate_query",
    "InverseRule",
    "LAVView",
    "inverse_rules",
    "rewrite_query",
    "skolem_function_name",
]
