"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``evaluate``            rerun the paper's evaluation (Table 1, Figs 6–7)
``datasets``            list the reconstructed dataset pairs
``describe NAME``       print a pair's schemas and benchmark cases
``map NAME CASE``       run one benchmark case and print the candidates
``explain NAME CASE``   run one case with tracing: span tree, prune log,
                        rank provenance (``--json`` for the raw trace)
``ddl NAME``            emit SQL DDL for a pair's schemas
``dot NAME``            emit GraphViz DOT for a pair's CM graphs
``bench``               run the discovery benchmarks (BENCH_discovery.json)
``validate [NAME ...]`` pre-flight-check dataset pairs and their cases
``serve``               run the HTTP mapping-discovery service
``introspect S T``      ingest two databases (live SQLite, or SQL dumps
                        via ``--backend pgdump/auto``) against a CM:
                        introspect, recover semantics, seed or load
                        correspondences, optionally discover and verify
``compose A B``         compose two mapping-set documents (S→T ∘ T→U)
                        into a direct S→U mapping set
``evolve``              run a synthetic schema-evolution chain: per-hop
                        discovery, composition, equivalence against the
                        direct mapping, and a churn report
"""

from __future__ import annotations

import argparse
import sys

from repro.baseline.clio import RICBasedMapper
from repro.cm.dot import cm_graph_to_dot
from repro.datasets.registry import dataset_names, load_dataset
from repro.discovery.mapper import SemanticMapper
from repro.discovery.options import DiscoveryOptions
from repro.relational.ddl import emit_ddl


def _add_option_flags(parser: argparse.ArgumentParser) -> None:
    """The shared :class:`DiscoveryOptions` flags (``map``/``explain``)."""
    parser.add_argument(
        "--max-path-edges",
        type=int,
        default=6,
        metavar="N",
        help="length cap for the lossy-path search (Section 3.3)",
    )
    parser.add_argument(
        "--no-partof-filter",
        dest="use_partof_filter",
        action="store_false",
        help="disable the partOf compatibility filter (ablation)",
    )
    parser.add_argument(
        "--no-disjointness-filter",
        dest="use_disjointness_filter",
        action="store_false",
        help="disable the ISA-disjointness consistency filter (ablation)",
    )
    parser.add_argument(
        "--no-cardinality-filter",
        dest="use_cardinality_filter",
        action="store_false",
        help="disable the cardinality-category filter (ablation)",
    )


def _options_from_args(
    args: argparse.Namespace,
    explain: bool = False,
    trace: bool = False,
) -> DiscoveryOptions:
    return DiscoveryOptions(
        max_path_edges=args.max_path_edges,
        use_partof_filter=args.use_partof_filter,
        use_disjointness_filter=args.use_disjointness_filter,
        use_cardinality_filter=args.use_cardinality_filter,
        explain=explain,
        trace=trace,
        engine=getattr(args, "engine", "semantic"),
    )


def _find_case(pair, case_id: str):
    matching = [c for c in pair.cases if c.case_id == case_id]
    if not matching:
        print(
            f"unknown case {case_id!r}; have "
            f"{[c.case_id for c in pair.cases]}",
            file=sys.stderr,
        )
        return None
    return matching[0]


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.evaluation.harness import main as harness_main

    argv = ["--workers", str(args.workers)]
    if args.details:
        argv.append("--details")
    if not args.fail_fast:
        argv.append("--keep-going")
    if args.timeout is not None:
        argv.extend(["--timeout", str(args.timeout)])
    return harness_main(argv)


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validation import (
        validate_correspondences,
        validate_semantics,
    )

    names = args.names or list(dataset_names())
    unknown = [name for name in names if name not in dataset_names()]
    if unknown:
        print(
            f"unknown dataset(s) {unknown}; have {sorted(dataset_names())}",
            file=sys.stderr,
        )
        return 2
    errors = 0
    warnings = 0
    for name in names:
        pair = load_dataset(name)
        report = validate_semantics(pair.source)
        report.extend(validate_semantics(pair.target))
        for mapping_case in pair.cases:
            case_report = validate_correspondences(
                mapping_case.correspondences, pair.source, pair.target
            )
            for diagnostic in case_report:
                report.add(
                    diagnostic.severity,
                    diagnostic.code,
                    diagnostic.message,
                    f"{mapping_case.case_id}: {diagnostic.location}"
                    if diagnostic.location
                    else mapping_case.case_id,
                )
        errors += len(report.errors)
        warnings += len(report.warnings)
        if report.ok and not report.warnings:
            print(f"{name}: ok ({len(pair.cases)} case(s))")
        else:
            status = "FAILED" if not report.ok else "ok with warnings"
            print(f"{name}: {status}")
            for diagnostic in report:
                print(f"  {diagnostic}")
    print(
        f"validated {len(names)} pair(s): "
        f"{errors} error(s), {warnings} warning(s)"
    )
    return 1 if errors else 0


def _cmd_datasets(_: argparse.Namespace) -> int:
    header = f"{'name':<10} {'source':<10} {'target':<10} {'tables':<9} {'CM nodes':<10} cases"
    print(header)
    print("-" * len(header))
    for name in dataset_names():
        pair = load_dataset(name)
        print(
            f"{pair.name:<10} {pair.source_label:<10} {pair.target_label:<10} "
            f"{pair.source_table_count()}/{pair.target_table_count():<7} "
            f"{pair.source_cm_node_count()}/{pair.target_cm_node_count():<8} "
            f"{pair.mapping_count()}"
        )
    return 0


def _cmd_describe(args: argparse.Namespace) -> int:
    pair = load_dataset(args.name)
    print(pair.source.schema.describe())
    print()
    print(pair.target.schema.describe())
    print("\nBenchmark cases:")
    for mapping_case in pair.cases:
        print(f"  {mapping_case.case_id}: {mapping_case.description}")
        for correspondence in mapping_case.correspondences:
            print(f"      {correspondence}")
    return 0


def _cmd_map(args: argparse.Namespace) -> int:
    pair = load_dataset(args.name)
    mapping_case = _find_case(pair, args.case)
    if mapping_case is None:
        return 2
    rediscovery = None
    if args.method == "semantic":
        options = _options_from_args(args)
        if args.cache_dir:
            options = options.replace(cache_dir=args.cache_dir)
        if args.reuse_from:
            from repro.discovery import Scenario, rediscover

            previous_case = _find_case(pair, args.reuse_from)
            if previous_case is None:
                return 2
            previous = Scenario.create(
                f"{args.name}/{args.reuse_from}",
                pair.source,
                pair.target,
                previous_case.correspondences,
                options=options,
            ).run()
            rediscovery = rediscover(
                previous,
                Scenario.create(
                    f"{args.name}/{args.case}",
                    pair.source,
                    pair.target,
                    mapping_case.correspondences,
                    options=options,
                ),
            )
            result = rediscovery.result
        else:
            result = SemanticMapper(
                pair.source,
                pair.target,
                mapping_case.correspondences,
                options=options,
            ).discover()
    else:
        result = RICBasedMapper(
            pair.source.schema,
            pair.target.schema,
            mapping_case.correspondences,
        ).discover()
    print(
        f"{len(result)} candidate(s) in {result.elapsed_seconds * 1000:.1f} ms"
    )
    for index, candidate in enumerate(result, start=1):
        print(f"  {candidate.to_tgd(f'M{index}')}")
    if rediscovery is not None:
        report = rediscovery.report()
        print(
            f"reuse from {args.reuse_from!r}: "
            f"{report['stage_cache_hits']} stage-cache hit(s) "
            f"({report['unit_cache_hits']} per-target unit(s)); "
            f"unchanged stages: "
            f"{', '.join(report['unchanged_stages']) or 'none'}; "
            f"invalidated: "
            f"{', '.join(report['invalidated_stages']) or 'none'}"
        )
    if args.stats:
        stats = getattr(result, "stats", None) or {}
        print("stats:")
        for name, value in sorted(stats.items()):
            print(f"  {name}: {value}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    import json

    from repro.trace.render import render_trace

    pair = load_dataset(args.name)
    mapping_case = _find_case(pair, args.case)
    if mapping_case is None:
        return 2
    result = SemanticMapper(
        pair.source,
        pair.target,
        mapping_case.correspondences,
        options=_options_from_args(args, explain=True),
    ).discover()
    if args.json:
        print(json.dumps(result.trace, indent=2, sort_keys=True))
        return 0
    print(
        f"{args.name}/{args.case}: {len(result)} candidate(s) in "
        f"{result.elapsed_seconds * 1000:.1f} ms"
    )
    for index, candidate in enumerate(result, start=1):
        print(f"  {candidate.to_tgd(f'M{index}')}")
    print()
    print(render_trace(result.trace))
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.perf.bench import main as bench_main

    return bench_main(
        output=args.output, workers=args.workers, trace=args.trace
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import ReproServer, ServiceConfig

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_capacity=args.queue_size,
        cache_entries=args.cache_size,
        cache_ttl_seconds=args.cache_ttl,
        request_timeout_seconds=args.request_timeout,
        job_timeout_seconds=args.job_timeout,
        quiet=not args.verbose,
        cache_dir=args.cache_dir,
    )
    extra = (
        f", cache dir {config.cache_dir}" if config.cache_dir else ""
    )
    if args.processes > 1:
        from repro.service.pool import PreForkSupervisor

        supervisor = PreForkSupervisor(config, processes=args.processes)
        supervisor.start()
        print(
            f"repro service listening on {supervisor.url} "
            f"({args.processes} process(es) x {config.workers} worker(s), "
            f"queue {config.queue_capacity}, "
            f"cache {config.cache_entries} entries{extra}); "
            f"Ctrl-C to stop",
            flush=True,
        )
        supervisor.serve_forever()
        return 0
    server = ReproServer(config)
    print(
        f"repro service listening on {server.url} "
        f"({config.workers} worker(s), queue {config.queue_capacity}, "
        f"cache {config.cache_entries} entries{extra}); Ctrl-C to stop",
        flush=True,
    )
    server.serve_forever()
    return 0


def _cmd_ddl(args: argparse.Namespace) -> int:
    pair = load_dataset(args.name)
    semantics = pair.source if args.side == "source" else pair.target
    print(emit_ddl(semantics.schema), end="")
    return 0


def _cmd_dot(args: argparse.Namespace) -> int:
    pair = load_dataset(args.name)
    semantics = pair.source if args.side == "source" else pair.target
    print(cm_graph_to_dot(semantics.graph, semantics.model.name))
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    from repro.matching import suggest_correspondences

    pair = load_dataset(args.name)
    suggestions = suggest_correspondences(
        pair.source, pair.target, threshold=args.threshold
    )
    print(f"{len(suggestions)} suggestion(s):")
    for suggestion in suggestions:
        print(f"  {suggestion}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from repro.semantics.recover import recover_semantics

    pair = load_dataset(args.name)
    semantics = pair.source if args.side == "source" else pair.target
    report = recover_semantics(semantics.schema, semantics.model)
    print(
        f"coverage: {report.coverage():.0%} "
        f"({len(report.semantics.tables_with_semantics())}/"
        f"{len(semantics.schema)} tables)"
    )
    for text in report.skipped_tables:
        print(f"  skipped: {text}")
    for text in report.unmapped_columns:
        print(f"  unmapped column: {text}")
    if args.table:
        print()
        print(report.semantics.tree(args.table).describe())
    return 0


def _cmd_introspect(args: argparse.Namespace) -> int:
    import json

    from repro.exceptions import IngestError, ReproError
    from repro.ingest import (
        ingest_pair,
        parse_correspondence_lines,
        resolve_cm_argument,
    )
    from repro.mappings.serialize import dump_mapping_set

    try:
        source_model, target_model = resolve_cm_argument(args.cm)
    except IngestError as error:
        print(str(error), file=sys.stderr)
        return 2
    correspondences = None
    if args.correspondences:
        try:
            with open(args.correspondences, "r", encoding="utf-8") as handle:
                correspondences = parse_correspondence_lines(handle)
        except (OSError, IngestError) as error:
            print(
                f"cannot read correspondences {args.correspondences!r}: "
                f"{error}",
                file=sys.stderr,
            )
            return 2
    sample_rows = args.sample
    if args.verify and sample_rows == 0:
        sample_rows = 100  # --verify needs live rows to check against
    try:
        ingested = ingest_pair(
            args.source_db,
            args.target_db,
            source_model,
            target_model,
            scenario_id=args.id,
            correspondences=correspondences,
            threshold=args.threshold,
            options=_options_from_args(args),
            sample_rows=sample_rows,
            strict=args.strict,
            backend=args.backend,
        )
    except ReproError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(ingested.describe())
    report = ingested.validation()
    rendered = report.render()
    if rendered:
        print(rendered)
    if args.emit_scenario:
        document = ingested.to_wire()
        with open(args.emit_scenario, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"scenario spec written to {args.emit_scenario}")
    if not report.ok:
        print("ingestion left errors; not discovering", file=sys.stderr)
        return 1
    if not (args.discover or args.verify):
        return 0
    if len(ingested.correspondences) == 0:
        print(
            "no correspondences; nothing to discover", file=sys.stderr
        )
        return 1
    result = ingested.scenario.run()
    print(
        f"\n{len(result)} candidate(s) in "
        f"{result.elapsed_seconds * 1000:.1f} ms"
    )
    for index, candidate in enumerate(result, start=1):
        print(f"  {candidate.to_tgd(f'M{index}')}")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dump_mapping_set(result.candidates))
        print(f"mappings written to {args.output}")
    if args.verify:
        from repro.mappings.verify import verify_mappings

        tgds = [
            candidate.to_tgd(f"M{index}")
            for index, candidate in enumerate(result, start=1)
        ]
        verification = verify_mappings(
            tgds, ingested.source_instance, ingested.target_instance
        )
        print(f"\nverification against sampled rows:\n{verification}")
        if not verification.ok:
            return 1
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    from repro.exceptions import ReproError
    from repro.mappings import compose, invert
    from repro.mappings.serialize import dump_mapping_set, load_mapping_set

    sets = []
    for path in (args.first, args.second):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sets.append(load_mapping_set(handle.read()))
        except (OSError, ReproError) as error:
            print(f"cannot load {path!r}: {error}", file=sys.stderr)
            return 2
    first, second = sets
    composed = compose(
        first,
        second,
        max_solutions_per_candidate=args.max_solutions,
        prune=not args.no_prune,
    )
    print(
        f"composed {len(first)} ∘ {len(second)} candidate(s) → "
        f"{len(composed)}"
    )
    for index, candidate in enumerate(composed, start=1):
        print(f"  {candidate.to_tgd(f'C{index}')}")
        if candidate.notes:
            print(f"    [{candidate.notes}]")
    if args.invert:
        inversion = invert(composed)
        print("\ninversion:")
        print(inversion.render())
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dump_mapping_set(composed))
        print(f"composed mapping set written to {args.output}")
    return 0


def _cmd_evolve(args: argparse.Namespace) -> int:
    from repro.datasets.instances import generate_instance
    from repro.datasets.synthetic import evolution_chain
    from repro.discovery import Scenario, rediscover
    from repro.mappings import certain_rows, compose, equivalent, exchange
    from repro.mappings.diff import diff_candidates
    from repro.mappings.serialize import dump_mapping_set

    try:
        chain = evolution_chain(
            args.family, args.length, hops=args.hops, span=args.span
        )
    except ValueError as error:
        print(str(error), file=sys.stderr)
        return 2
    print(f"evolution chain {chain.chain_id}: {chain.hops} hop(s)")
    previous = None
    hop_results = []
    for index in range(chain.hops):
        source, target, correspondences = chain.hop(index)
        scenario = Scenario.create(
            f"{chain.chain_id}/hop{index}",
            source,
            target,
            correspondences,
        )
        outcome = rediscover(previous, scenario)
        result = outcome.result
        hop_results.append(result)
        reused = outcome.report()["stage_cache_hits"]
        print(
            f"  hop {index} (v{index}→v{index + 1}): "
            f"{len(result)} candidate(s) in "
            f"{result.elapsed_seconds * 1000:.1f} ms, "
            f"{reused} stage-cache hit(s)"
        )
        if previous is not None:
            churn = diff_candidates(previous.candidates, result.candidates)
            print(f"    churn vs previous hop: {churn.summary()}")
        previous = result
    composed = hop_results[0].mappings
    for result in hop_results[1:]:
        composed = compose(composed, result.mappings)
    print(f"composed: {len(composed)} candidate(s)")
    for index, candidate in enumerate(composed, start=1):
        print(f"  {candidate.to_tgd(f'C{index}')}")
    source, target, correspondences = chain.direct()
    direct = Scenario.create(
        f"{chain.chain_id}/direct", source, target, correspondences
    ).run()
    print(
        f"direct v0→v{chain.hops}: {len(direct)} candidate(s) in "
        f"{direct.elapsed_seconds * 1000:.1f} ms"
    )
    ok = equivalent(composed, direct.candidates)
    print(f"composed ≡ direct: {'yes' if ok else 'NO'}")
    instance = generate_instance(
        chain.versions[0].schema, rows_per_table=args.rows
    )
    via_composed = exchange(
        composed.to_tgds("C"), instance, chain.versions[-1].schema
    )
    via_direct = exchange(
        direct.mappings.to_tgds("D"), instance, chain.versions[-1].schema
    )
    certain_ok = all(
        certain_rows(via_composed, table) == certain_rows(via_direct, table)
        for table in chain.versions[-1].schema.tables
    )
    print(
        f"certain answers over {args.rows} row(s)/table: "
        f"{'equal' if certain_ok else 'DIFFER'}"
    )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(dump_mapping_set(composed))
        print(f"composed mapping set written to {args.output}")
    return 0 if ok and certain_ok else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    evaluate = commands.add_parser("evaluate", help="rerun the evaluation")
    evaluate.add_argument("--details", action="store_true")
    evaluate.add_argument(
        "--workers",
        type=int,
        default=1,
        help="fan dataset pairs out over N worker processes",
    )
    mode = evaluate.add_mutually_exclusive_group()
    mode.add_argument(
        "--fail-fast",
        dest="fail_fast",
        action="store_true",
        default=True,
        help="abort on the first failing case (default)",
    )
    mode.add_argument(
        "--keep-going",
        dest="fail_fast",
        action="store_false",
        help="record failing cases, keep evaluating, exit 1 at the end",
    )
    evaluate.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-case wall-clock limit for the semantic method",
    )
    evaluate.set_defaults(handler=_cmd_evaluate)

    validate = commands.add_parser(
        "validate",
        help="pre-flight-check dataset pairs: semantics, RICs, "
        "correspondences",
    )
    validate.add_argument(
        "names",
        nargs="*",
        help="dataset names to validate (default: all registered pairs)",
    )
    validate.set_defaults(handler=_cmd_validate)

    datasets = commands.add_parser("datasets", help="list dataset pairs")
    datasets.set_defaults(handler=_cmd_datasets)

    describe = commands.add_parser("describe", help="describe one pair")
    describe.add_argument("name")
    describe.set_defaults(handler=_cmd_describe)

    run_map = commands.add_parser("map", help="run one benchmark case")
    run_map.add_argument("name")
    run_map.add_argument("case")
    run_map.add_argument(
        "--method", choices=["semantic", "ric"], default="semantic"
    )
    run_map.add_argument(
        "--engine",
        choices=["semantic", "clio"],
        default="semantic",
        help="discovery engine for the unified pipeline (clio = the "
        "schema-only RIC baseline behind the same staged API; "
        "--method ric remains the legacy direct baseline path)",
    )
    run_map.add_argument(
        "--reuse-from",
        metavar="CASE",
        help="incremental re-discovery: run CASE first to warm the "
        "stage cache, then run the requested case reusing every "
        "unaffected stage artifact, and report what was reused",
    )
    run_map.add_argument(
        "--stats",
        action="store_true",
        help="also print perf counters and per-phase wall time",
    )
    run_map.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent stage-artifact cache directory (shared across "
        "runs and processes; see docs/performance.md)",
    )
    _add_option_flags(run_map)
    run_map.set_defaults(handler=_cmd_map)

    explain = commands.add_parser(
        "explain",
        help="run one case with explain tracing: span tree with "
        "per-phase wall time, prune log (which compatibility rule "
        "eliminated what), and rank provenance",
    )
    explain.add_argument("name")
    explain.add_argument("case")
    explain.add_argument(
        "--json",
        action="store_true",
        help="print the raw trace document instead of the report",
    )
    _add_option_flags(explain)
    explain.set_defaults(handler=_cmd_explain)

    bench = commands.add_parser(
        "bench",
        help="run the discovery benchmarks, write BENCH_discovery.json, "
        "and fail on candidate-count drift",
    )
    bench.add_argument(
        "--output",
        default="BENCH_discovery.json",
        help="where to write the JSON report",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=2,
        help="worker count for the parallel-equivalence check",
    )
    bench.add_argument(
        "--trace",
        action="store_true",
        help="also run the paper scenarios traced and report per-phase "
        "wall times plus the disabled-tracer overhead estimate",
    )
    bench.set_defaults(handler=_cmd_bench)

    serve = commands.add_parser(
        "serve",
        help="run the HTTP mapping-discovery service "
        "(POST /discover, POST /introspect, POST /compose, "
        "POST /validate, GET /jobs/<id>, /health, /metrics)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="listen port (0 picks a free port)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        help="discovery worker threads sharing the warm caches",
    )
    serve.add_argument(
        "--queue-size",
        type=int,
        default=64,
        help="bounded job-queue capacity (full queue returns 429)",
    )
    serve.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="result-cache entries (0 disables caching)",
    )
    serve.add_argument(
        "--cache-ttl",
        type=float,
        default=3600.0,
        metavar="SECONDS",
        help="result-cache time-to-live",
    )
    serve.add_argument(
        "--request-timeout",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="how long a synchronous POST /discover waits before "
        "handing back a pollable job (202)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-scenario wall-clock limit (degrades to a warning on "
        "worker threads; see docs/robustness.md)",
    )
    serve.add_argument(
        "--processes",
        type=int,
        default=1,
        help="pre-fork worker processes sharing the listening socket "
        "(1 = single-process; pair with --cache-dir so workers share "
        "computed artifacts)",
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="persistent cache directory for stage artifacts and "
        "results (the coherence point between pre-fork workers and "
        "across restarts)",
    )
    serve.add_argument(
        "--verbose",
        action="store_true",
        help="log every HTTP request to stderr",
    )
    serve.set_defaults(handler=_cmd_serve)

    ddl = commands.add_parser("ddl", help="emit SQL DDL")
    ddl.add_argument("name")
    ddl.add_argument("--side", choices=["source", "target"], default="source")
    ddl.set_defaults(handler=_cmd_ddl)

    dot = commands.add_parser("dot", help="emit GraphViz DOT")
    dot.add_argument("name")
    dot.add_argument("--side", choices=["source", "target"], default="source")
    dot.set_defaults(handler=_cmd_dot)

    match = commands.add_parser(
        "match", help="suggest correspondences with the name matcher"
    )
    match.add_argument("name")
    match.add_argument("--threshold", type=float, default=0.9)
    match.set_defaults(handler=_cmd_match)

    introspect = commands.add_parser(
        "introspect",
        help="ingest two databases (live SQLite or Postgres/MySQL SQL "
        "dumps): introspect schemas, recover semantics against a CM, "
        "seed correspondences, and optionally discover + verify "
        "mappings (docs/ingestion.md)",
    )
    introspect.add_argument(
        "source_db",
        help="path to the source database (SQLite file, or a "
        "pg_dump/mysqldump SQL file with --backend pgdump/auto)",
    )
    introspect.add_argument(
        "target_db",
        help="path to the target database (SQLite file or SQL dump)",
    )
    introspect.add_argument(
        "--backend",
        choices=("sqlite", "pgdump", "auto"),
        default="sqlite",
        help="catalog backend: 'sqlite' opens live databases, 'pgdump' "
        "parses Postgres/MySQL SQL dump files without executing them, "
        "'auto' sniffs each input (SQLite magic header vs dump text)",
    )
    introspect.add_argument(
        "--cm",
        required=True,
        metavar="NAME_OR_FILE",
        help="conceptual model: a registered dataset name (uses its "
        "source/target models) or a JSON model file (one model shared "
        "by both sides, or {'source': ..., 'target': ...})",
    )
    introspect.add_argument(
        "--id",
        default="ingested",
        help="scenario id for fingerprints, caches, and reports",
    )
    introspect.add_argument(
        "--correspondences",
        metavar="FILE",
        help="explicit correspondence file (one 'table.col <-> "
        "table.col' per line, '#' comments) replacing matcher output",
    )
    introspect.add_argument(
        "--threshold",
        type=float,
        default=0.75,
        help="matcher score threshold for seeded correspondences",
    )
    introspect.add_argument(
        "--emit-scenario",
        metavar="FILE",
        help="write the assembled scenario as an inline wire spec "
        "(replayable via POST /discover or stored as a fixture)",
    )
    introspect.add_argument(
        "--discover",
        action="store_true",
        help="also run discovery and print the candidate mappings",
    )
    introspect.add_argument(
        "--output",
        metavar="FILE",
        help="with --discover: write the candidate set as JSON "
        "(repro-mappings/1 format)",
    )
    introspect.add_argument(
        "--sample",
        type=int,
        default=0,
        metavar="N",
        help="sample up to N live rows per table into instances",
    )
    introspect.add_argument(
        "--verify",
        action="store_true",
        help="discover, then check every mapping against the sampled "
        "rows (implies --discover; samples 100 rows/table unless "
        "--sample is given); exits 1 on violations",
    )
    introspect.add_argument(
        "--strict",
        action="store_true",
        help="treat uninterpreted tables/columns as hard errors",
    )
    _add_option_flags(introspect)
    introspect.set_defaults(handler=_cmd_introspect)

    compose_cmd = commands.add_parser(
        "compose",
        help="compose two mapping-set documents (repro-mappings/1): "
        "an S→T set with a T→U set, yielding a direct S→U set "
        "(docs/lifecycle.md)",
    )
    compose_cmd.add_argument(
        "first", help="path to the S→T mapping-set JSON document"
    )
    compose_cmd.add_argument(
        "second", help="path to the T→U mapping-set JSON document"
    )
    compose_cmd.add_argument(
        "--output",
        metavar="FILE",
        help="write the composed set as JSON (repro-mappings/1 format)",
    )
    compose_cmd.add_argument(
        "--no-prune",
        action="store_true",
        help="keep redundant unfoldings (skip semantic dedup and "
        "logical minimization)",
    )
    compose_cmd.add_argument(
        "--max-solutions",
        type=int,
        default=32,
        metavar="N",
        help="cap on unfoldings per second-hop candidate",
    )
    compose_cmd.add_argument(
        "--invert",
        action="store_true",
        help="also print the (quasi-)inverse of the composed set with "
        "its loss report",
    )
    compose_cmd.set_defaults(handler=_cmd_compose)

    evolve = commands.add_parser(
        "evolve",
        help="run a synthetic schema-evolution chain end to end: "
        "discover each hop (incrementally, reporting churn), compose "
        "the hop mappings, and check the result against direct "
        "discovery — logically and on certain answers",
    )
    evolve.add_argument(
        "--family",
        choices=["chain", "isa_fan"],
        default="chain",
        help="synthetic CM family for every version",
    )
    evolve.add_argument(
        "--length", type=int, default=3, help="chain length per version"
    )
    evolve.add_argument(
        "--hops", type=int, default=2, help="number of evolution hops"
    )
    evolve.add_argument(
        "--span",
        type=int,
        default=None,
        help="marked-attribute span (default: min(length, 8))",
    )
    evolve.add_argument(
        "--rows",
        type=int,
        default=4,
        help="generated rows per table for the certain-answer check",
    )
    evolve.add_argument(
        "--output",
        metavar="FILE",
        help="write the composed set as JSON (repro-mappings/1 format)",
    )
    evolve.set_defaults(handler=_cmd_evolve)

    recover = commands.add_parser(
        "recover", help="recover table semantics from schema + CM"
    )
    recover.add_argument("name")
    recover.add_argument(
        "--side", choices=["source", "target"], default="source"
    )
    recover.add_argument("--table", help="also print this table's s-tree")
    recover.set_defaults(handler=_cmd_recover)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    raise SystemExit(main())
