"""Span-based tracing and explain provenance for the discovery pipeline.

A :class:`Tracer` records a tree of :class:`Span` records — one per
pipeline phase (correspondence lifting, per-anchor Steiner search, CSG
pair enumeration, compatibility checking, translation, ranking) — and,
in *explain* mode, structured :class:`PruneEvent` records for every
candidate a semantic filter rejected, plus per-candidate rank
provenance.

Activation is contextvar-scoped: :func:`activate` installs a tracer for
the current context (thread or task), and the module-level helpers
:func:`span` / :func:`prune` / :func:`event` find it there. When no
tracer is active they cost one ``ContextVar.get`` plus a ``None`` check
and reuse a shared no-op context manager, so instrumented hot paths stay
within noise of uninstrumented code (the bench suite pins this at < 5%,
see ``repro.perf.bench.run_trace_benchmark``).

Thread-safety: a tracer's span *stack* is thread-local (spans opened on
one thread nest under that thread's enclosing span only), while the
shared structures — the root span list, prune log, provenance list, and
call counters — are guarded by a per-tracer lock. One tracer may
therefore observe several worker threads at once without interleaving
their span trees.

Determinism: everything except wall times is a pure function of the
discovery inputs. :meth:`Tracer.to_dict` emits spans in creation order
and prune events in elimination order, so two runs over equal inputs
produce identical documents modulo the ``elapsed_s`` fields.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

#: Trace-document format version (bumped on breaking shape changes).
TRACE_FORMAT = "repro-trace/1"


@dataclass(frozen=True)
class PruneEvent:
    """One candidate (or candidate pair) rejected by a semantic filter.

    ``rule`` names the filter that fired — the vocabulary is
    ``"disjointness.tree"``, ``"disjointness.path"``, ``"cardinality"``,
    ``"partOf"``, and ``"anchor"`` — and ``detail`` carries the
    human-readable elimination text that also lands in
    ``DiscoveryResult.eliminations``.
    """

    phase: str
    rule: str
    source_csg: str = ""
    target_csg: str = ""
    detail: str = ""

    def to_dict(self) -> dict[str, str]:
        return {
            "phase": self.phase,
            "rule": self.rule,
            "source_csg": self.source_csg,
            "target_csg": self.target_csg,
            "detail": self.detail,
        }


class Span:
    """One timed, attributed region of the pipeline.

    Spans form a tree; ``attributes`` carry small deterministic facts
    (anchor names, candidate counts), never timings — wall time lives in
    ``elapsed_seconds`` so deterministic and timing data stay separable.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "events",
        "started_at",
        "elapsed_seconds",
    )

    def __init__(self, name: str, attributes: dict[str, Any] | None = None):
        self.name = name
        self.attributes: dict[str, Any] = attributes or {}
        self.children: list[Span] = []
        self.events: list[PruneEvent] = []
        self.started_at = time.perf_counter()
        self.elapsed_seconds = 0.0

    def close(self) -> None:
        self.elapsed_seconds = time.perf_counter() - self.started_at

    def set(self, name: str, value: Any) -> None:
        """Attach one deterministic attribute to the span."""
        self.attributes[name] = value

    def to_dict(self) -> dict[str, Any]:
        data: dict[str, Any] = {
            "name": self.name,
            "elapsed_s": round(self.elapsed_seconds, 6),
        }
        if self.attributes:
            data["attributes"] = {
                key: self.attributes[key] for key in sorted(self.attributes)
            }
        if self.events:
            data["prunes"] = [event.to_dict() for event in self.events]
        if self.children:
            data["children"] = [child.to_dict() for child in self.children]
        return data


class Tracer:
    """Collects a span tree plus, in explain mode, prune provenance.

    Parameters
    ----------
    explain:
        Record :class:`PruneEvent` records and per-candidate rank
        provenance in addition to spans. Plain tracing (``explain=False``)
        records only the span tree — enough for latency analysis.
    """

    enabled = True

    def __init__(self, explain: bool = False) -> None:
        self.explain = explain
        self.roots: list[Span] = []
        self.prunes: list[PruneEvent] = []
        self.provenance: list[dict[str, Any]] = []
        self.span_count = 0
        self._lock = threading.Lock()
        self._stacks = threading.local()

    # -- recording -------------------------------------------------------
    def _stack(self) -> list[Span]:
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = []
            self._stacks.stack = stack
        return stack

    @contextmanager
    def span(self, name: str, **attributes: Any) -> Iterator[Span]:
        """Open a child span of this thread's innermost open span."""
        record = Span(name, attributes or None)
        stack = self._stack()
        if stack:
            stack[-1].children.append(record)
        else:
            with self._lock:
                self.roots.append(record)
        with self._lock:
            self.span_count += 1
        stack.append(record)
        try:
            yield record
        finally:
            record.close()
            stack.pop()

    def prune(
        self,
        phase: str,
        rule: str,
        source_csg: str = "",
        target_csg: str = "",
        detail: str = "",
    ) -> None:
        """Record one filter rejection (explain mode only; no-op otherwise)."""
        if not self.explain:
            return
        event = PruneEvent(phase, rule, source_csg, target_csg, detail)
        stack = self._stack()
        if stack:
            stack[-1].events.append(event)
        with self._lock:
            self.prunes.append(event)

    def rank(self, entry: Mapping[str, Any]) -> None:
        """Record one candidate's rank provenance (explain mode only)."""
        if not self.explain:
            return
        with self._lock:
            self.provenance.append(dict(entry))

    # -- export ----------------------------------------------------------
    def prune_rules(self) -> dict[str, int]:
        """Prune-event counts by rule name (stable, sorted)."""
        counts: dict[str, int] = {}
        for event in self.prunes:
            counts[event.rule] = counts.get(event.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, Any]:
        """The full trace document (see the module doc for determinism)."""
        with self._lock:
            return {
                "format": TRACE_FORMAT,
                "explain": self.explain,
                "spans": [span.to_dict() for span in self.roots],
                "prunes": [event.to_dict() for event in self.prunes],
                "provenance": [dict(entry) for entry in self.provenance],
            }

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)


# ---------------------------------------------------------------------------
# Contextvar activation and no-op fast paths
# ---------------------------------------------------------------------------
_ACTIVE: ContextVar[Tracer | None] = ContextVar(
    "repro_trace_active", default=None
)


class _NullSpanContext:
    """Shared do-nothing context manager for the tracer-off fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False

    def set(self, name: str, value: Any) -> None:  # Span-compatible
        return None


_NULL_SPAN = _NullSpanContext()


class NoopTracer:
    """A disabled tracer: every recording call is a cheap no-op.

    ``SemanticMapper`` holds one of these when neither ``options.trace``
    nor an externally activated tracer asks for recording, so the
    pipeline can call ``self._tracer.span(...)`` unconditionally.
    """

    __slots__ = ()
    enabled = False
    explain = False

    def span(self, name: str, **attributes: Any) -> _NullSpanContext:
        return _NULL_SPAN

    def prune(self, *args: Any, **kwargs: Any) -> None:
        return None

    def rank(self, entry: Mapping[str, Any]) -> None:
        return None


#: Shared disabled tracer (stateless, safe to reuse everywhere).
NOOP = NoopTracer()


def current() -> Tracer | None:
    """The tracer active in this context, or ``None``."""
    return _ACTIVE.get()


@contextmanager
def activate(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` as this context's active tracer."""
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


def span(name: str, **attributes: Any):
    """A span on the active tracer, or a shared no-op when none is active."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def prune(
    phase: str,
    rule: str,
    source_csg: str = "",
    target_csg: str = "",
    detail: str = "",
) -> None:
    """Record a prune event iff an explain-mode tracer is active."""
    tracer = _ACTIVE.get()
    if tracer is not None and tracer.explain:
        tracer.prune(phase, rule, source_csg, target_csg, detail)


def active() -> bool:
    """True when any tracer is active in this context."""
    return _ACTIVE.get() is not None
