"""Pipeline tracing and explainability (see ``docs/observability.md``).

Quick use::

    from repro import DiscoveryOptions, Tracer, discover_mappings

    tracer = Tracer(explain=True)
    result = discover_mappings(source, target, correspondences, trace=tracer)
    print(tracer.to_json(indent=2))          # span tree + prune log
    print(result.trace["prunes"])            # same data on the result

or let the options object manage the tracer::

    result = discover_mappings(
        source, target, correspondences,
        options=DiscoveryOptions(explain=True),
    )
    for event in result.trace["prunes"]:
        print(event["rule"], event["detail"])
"""

from repro.trace.render import phase_seconds, render_span, render_trace
from repro.trace.tracer import (
    NOOP,
    TRACE_FORMAT,
    NoopTracer,
    PruneEvent,
    Span,
    Tracer,
    activate,
    active,
    current,
    prune,
    span,
)

__all__ = [
    "NOOP",
    "TRACE_FORMAT",
    "NoopTracer",
    "PruneEvent",
    "Span",
    "Tracer",
    "activate",
    "active",
    "current",
    "prune",
    "span",
    "phase_seconds",
    "render_span",
    "render_trace",
]
