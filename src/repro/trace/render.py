"""Text rendering of trace documents for ``python -m repro explain``.

Renders the span tree with per-phase wall time, the prune log (each
event naming the compatibility rule that fired), and per-candidate rank
provenance. Input is the plain-dict document of
:meth:`repro.trace.Tracer.to_dict` — the same shape the service returns
in its ``trace`` payload section — so server responses can be rendered
identically client-side.
"""

from __future__ import annotations

from typing import Any, Mapping


def _format_attributes(attributes: Mapping[str, Any]) -> str:
    parts = [f"{key}={attributes[key]}" for key in sorted(attributes)]
    return f" [{', '.join(parts)}]" if parts else ""


def render_span(span: Mapping[str, Any], indent: int = 0) -> list[str]:
    pad = "  " * indent
    elapsed = span.get("elapsed_s", 0.0)
    lines = [
        f"{pad}{span['name']}  {elapsed * 1000:.2f} ms"
        f"{_format_attributes(span.get('attributes', {}))}"
    ]
    for event in span.get("prunes", ()):
        lines.append(f"{pad}  ✗ pruned by {event['rule']}: {event['detail']}")
    for child in span.get("children", ()):
        lines.extend(render_span(child, indent + 1))
    return lines


def render_trace(trace: Mapping[str, Any]) -> str:
    """The full human-readable explain report for one trace document."""
    lines: list[str] = ["span tree (wall time per phase):"]
    for span in trace.get("spans", ()):
        lines.extend(render_span(span, indent=1))
    prunes = trace.get("prunes", ())
    lines.append("")
    if prunes:
        lines.append(f"prune log ({len(prunes)} elimination(s)):")
        for event in prunes:
            lines.append(
                f"  [{event['phase']}] rule={event['rule']}: "
                f"{event['detail'] or event['source_csg']}"
            )
    else:
        lines.append("prune log: no candidates eliminated")
    provenance = trace.get("provenance", ())
    if provenance:
        lines.append("")
        lines.append("rank provenance (best first):")
        for entry in provenance:
            facts = ", ".join(
                f"{key}={entry[key]}"
                for key in sorted(entry)
                if key not in ("rank", "candidate")
            )
            lines.append(
                f"  #{entry.get('rank', '?')} {entry.get('candidate', '')}"
                f"  ({facts})"
            )
    return "\n".join(lines)


def phase_seconds(trace: Mapping[str, Any]) -> dict[str, float]:
    """Flatten a trace into accumulated per-phase wall times.

    Span names repeat across the tree (one ``source_search`` per target
    CSG, many ``translate`` spans); times accumulate per name. Used by
    the bench report to expose per-phase timings from a traced run.
    """
    totals: dict[str, float] = {}

    def visit(span: Mapping[str, Any]) -> None:
        name = span["name"]
        totals[name] = totals.get(name, 0.0) + float(
            span.get("elapsed_s", 0.0)
        )
        for child in span.get("children", ()):
            visit(child)

    for span in trace.get("spans", ()):
        visit(span)
    return dict(sorted(totals.items()))
