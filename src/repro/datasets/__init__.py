"""Benchmark datasets: paper worked examples and the 7 evaluation pairs."""

from repro.datasets.instances import generate_instance, referential_order
from repro.datasets.registry import (
    DatasetPair,
    MappingCase,
    dataset_names,
    load_all_datasets,
    load_dataset,
)
from repro.datasets.paper_examples import (
    ExampleScenario,
    bookstore_example,
    employee_example,
    partof_example,
    project_example,
)

__all__ = [
    "generate_instance",
    "referential_order",
    "DatasetPair",
    "MappingCase",
    "dataset_names",
    "load_all_datasets",
    "load_dataset",
    "ExampleScenario",
    "bookstore_example",
    "employee_example",
    "partof_example",
    "project_example",
]
