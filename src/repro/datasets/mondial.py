"""The Mondial dataset pair (reconstruction of the paper's Mondial1/2).

Mondial is the classic geography database. Mondial1's semantics come
from a CIA-factbook-style ontology (52 nodes — the keyed geography core
plus keyless concept families for climate, government, and terrain);
Mondial2 is a reverse-engineered 26-class ER model. Both schemas carry
reified relationship tables with descriptive attributes (language
percentages, organization membership types).
"""

from __future__ import annotations

from repro.cm import ConceptualModel
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema

_FACTBOOK_FILLERS = (
    (
        "Climate",
        [
            "Tropical",
            "Arid",
            "Temperate",
            "Continental",
            "Polar",
            "Mediterranean",
        ],
        "Country",
        "hasClimate",
    ),
    (
        "GovernmentForm",
        [
            "Republic",
            "Monarchy",
            "Federation",
            "Theocracy",
            "Dictatorship",
            "ParliamentaryDemocracy",
        ],
        "Country",
        "governedAs",
    ),
    (
        "Terrain",
        ["Plain", "Plateau", "Highland", "Valley", "Steppe"],
        "Province",
        "dominantTerrain",
    ),
    (
        "Resource",
        ["Oil", "Gas", "Coal", "Iron", "Timber", "Fishery"],
        "Country",
        "richIn",
    ),
    ("Hazard", ["Earthquake", "Flood"], "Country", "proneTo"),
)


def _factbook_ontology() -> ConceptualModel:
    cm = ConceptualModel("factbook")
    cm.add_class(
        "Country",
        attributes=["ccode", "cntryname", "population", "capname"],
        key=["ccode"],
    )
    cm.add_class("Province", attributes=["provname", "parea"], key=["provname"])
    cm.add_class("City", attributes=["cityname", "citypop"], key=["cityname"])
    cm.add_class(
        "Organization", attributes=["orgabbr", "orgname"], key=["orgabbr"]
    )
    cm.add_class("River", attributes=["rivername", "length"], key=["rivername"])
    cm.add_class("Lake", attributes=["lakename", "larea"], key=["lakename"])
    cm.add_class("Mountain", attributes=["mtname", "height"], key=["mtname"])
    cm.add_class("Desert", attributes=["desertname"], key=["desertname"])
    cm.add_class("Island", attributes=["islname"], key=["islname"])
    cm.add_class("Sea", attributes=["seaname", "depth"], key=["seaname"])
    cm.add_class("Language", attributes=["langname"], key=["langname"])
    cm.add_class("Religion", attributes=["relname"], key=["relname"])
    cm.add_class("EthnicGroup", attributes=["egname"], key=["egname"])
    cm.add_class(
        "Continent", attributes=["contname", "carea"], key=["contname"]
    )
    cm.add_class("Airport", attributes=["iata"], key=["iata"])
    cm.add_class("Port", attributes=["portname"], key=["portname"])
    cm.add_class("Canal", attributes=["canalname"], key=["canalname"])
    cm.add_class("Volcano", attributes=["vname", "velevation"], key=["vname"])
    cm.add_class("Glacier", attributes=["gname"], key=["gname"])
    cm.add_class("NationalPark", attributes=["npname"], key=["npname"])

    cm.add_relationship("provinceOf", "Province", "Country", "1..1", "0..*")
    cm.add_relationship("inProvince", "City", "Province", "1..1", "0..*")
    cm.add_relationship("mtIn", "Mountain", "Country", "1..1", "0..*")
    cm.add_relationship("desertIn", "Desert", "Country", "0..1", "0..*")
    cm.add_relationship("islandIn", "Island", "Sea", "0..1", "0..*")
    cm.add_relationship("hqIn", "Organization", "City", "0..1", "0..*")
    cm.add_relationship("airportAt", "Airport", "City", "1..1", "0..*")
    cm.add_relationship("portIn", "Port", "Sea", "0..1", "0..*")
    cm.add_relationship("canalJoins", "Canal", "Sea", "0..1", "0..*")
    cm.add_relationship("volcanoIn", "Volcano", "Country", "0..1", "0..*")
    cm.add_relationship("glacierIn", "Glacier", "Country", "0..1", "0..*")
    cm.add_relationship("parkIn", "NationalPark", "Country", "0..1", "0..*")
    cm.add_relationship("riverMouth", "River", "Sea", "0..1", "0..*")

    cm.add_relationship("flowsThrough", "River", "Country", "0..*", "0..*")
    cm.add_relationship("lakeIn", "Lake", "Country", "0..*", "0..*")
    cm.add_relationship("ethnicIn", "EthnicGroup", "Country", "0..*", "0..*")
    cm.add_relationship("believes", "Country", "Religion", "0..*", "0..*")
    cm.add_relationship("encompasses", "Country", "Continent", "1..*", "1..*")
    cm.add_relationship("borders", "Country", "Country", "0..*", "0..*")
    cm.add_reified_relationship(
        "Membership",
        roles={"member": "Country", "org": "Organization"},
        attributes=["mtype"],
    )
    cm.add_reified_relationship(
        "SpokenIn",
        roles={"spCountry": "Country", "spLanguage": "Language"},
        attributes=["percent"],
    )

    for root, subclasses, anchor, link in _FACTBOOK_FILLERS:
        cm.add_class(root, attributes=["tag"])
        for sub in subclasses:
            cm.add_class(sub)
            cm.add_isa(sub, root)
        cm.add_relationship(link, anchor, root, "0..*", "0..*")
    return cm


def _mondial2_er() -> ConceptualModel:
    cm = ConceptualModel("mondial2_er")
    cm.add_class(
        "Nation", attributes=["ncode", "nname", "npop", "capname2"], key=["ncode"]
    )
    cm.add_class("State", attributes=["sname5", "sarea"], key=["sname5"])
    cm.add_class("Town", attributes=["tname5", "tpop"], key=["tname5"])
    cm.add_class("Org2", attributes=["abbr2", "oname2"], key=["abbr2"])
    cm.add_class("River2", attributes=["rname2", "rlen2"], key=["rname2"])
    cm.add_class("Lake2", attributes=["lname3", "larea2"], key=["lname3"])
    cm.add_class("Mountain2", attributes=["mname2", "melev2"], key=["mname2"])
    cm.add_class("Desert2", attributes=["dname2"], key=["dname2"])
    cm.add_class("Island2", attributes=["iname5"], key=["iname5"])
    cm.add_class("Sea2", attributes=["sname6", "sdepth2"], key=["sname6"])
    cm.add_class("Language2", attributes=["lname2"], key=["lname2"])
    cm.add_class("Religion2", attributes=["rname3"], key=["rname3"])
    cm.add_class("Ethnic2", attributes=["ename2"], key=["ename2"])
    cm.add_class("Continent2", attributes=["cname4", "carea2"], key=["cname4"])
    cm.add_class("Airport2", attributes=["code2"], key=["code2"])
    cm.add_class("Port2", attributes=["pname5"], key=["pname5"])
    cm.add_class("Canal2", attributes=["canname2"], key=["canname2"])
    cm.add_class("Volcano2", attributes=["vname2"], key=["vname2"])
    cm.add_class("Glacier2", attributes=["gname2"], key=["gname2"])
    cm.add_class("Park2", attributes=["pkname2"], key=["pkname2"])
    # Keyless auxiliary concepts.
    cm.add_class("GovForm2", attributes=["gdesc2"])
    cm.add_class("Climate2", attributes=["cdesc2"])
    cm.add_class("Terrain2", attributes=["tdesc2"])
    cm.add_class("Currency2", attributes=["curdesc"])

    cm.add_relationship("stateOf", "State", "Nation", "1..1", "0..*")
    cm.add_relationship("inState", "Town", "State", "1..1", "0..*")
    cm.add_relationship("mtIn2", "Mountain2", "Nation", "1..1", "0..*")
    cm.add_relationship("desertIn2", "Desert2", "Nation", "0..1", "0..*")
    cm.add_relationship("islandIn2", "Island2", "Sea2", "0..1", "0..*")
    cm.add_relationship("hqIn2", "Org2", "Town", "0..1", "0..*")
    cm.add_relationship("airportAt2", "Airport2", "Town", "1..1", "0..*")
    cm.add_relationship("portIn2", "Port2", "Sea2", "0..1", "0..*")
    cm.add_relationship("canalJoins2", "Canal2", "Sea2", "0..1", "0..*")
    cm.add_relationship("volcanoIn2", "Volcano2", "Nation", "0..1", "0..*")
    cm.add_relationship("glacierIn2", "Glacier2", "Nation", "0..1", "0..*")
    cm.add_relationship("parkIn2", "Park2", "Nation", "0..1", "0..*")
    cm.add_relationship("riverMouth2", "River2", "Sea2", "0..1", "0..*")
    cm.add_relationship("govAs2", "Nation", "GovForm2", "0..1", "0..*")
    cm.add_relationship("climateOf2", "Nation", "Climate2", "0..*", "0..*")
    cm.add_relationship("terrainOf2", "State", "Terrain2", "0..*", "0..*")
    cm.add_relationship("paysWith2", "Nation", "Currency2", "0..1", "0..*")

    cm.add_relationship("flows2", "River2", "Nation", "0..*", "0..*")
    cm.add_relationship("lakeIn2", "Lake2", "Nation", "0..*", "0..*")
    cm.add_relationship("believes2", "Nation", "Religion2", "0..*", "0..*")
    cm.add_relationship("encompasses2", "Nation", "Continent2", "1..*", "1..*")
    cm.add_reified_relationship(
        "Membership2",
        roles={"member2": "Nation", "org2r": "Org2"},
        attributes=["mtype2"],
    )
    cm.add_reified_relationship(
        "Spoken2",
        roles={"spNation": "Nation", "spLang": "Language2"},
        attributes=["percent3"],
    )
    return cm


@register("Mondial")
def build() -> DatasetPair:
    source = design_schema(_factbook_ontology(), "mondial1")
    target = design_schema(_mondial2_er(), "mondial2")
    cases = (
        case(
            "mondial-city-in-country",
            "Cities with their country through the province/state level "
            "(both methods succeed).",
            [
                "city.cityname <-> town.tname5",
                "country.cntryname <-> nation.nname",
            ],
            [
                (
                    "ans(v1, v2) :- city(v1, cp, pr), province(pr, pa, cc), "
                    "country(cc, v2, po, cap)",
                    "ans(v1, v2) :- town(v1, tp, st), state(st, sa, nc), "
                    "nation(nc, v2, np, cap2)",
                )
            ],
        ),
        case(
            "mondial-river-through-country",
            "Rivers with the countries they flow through (many-many on "
            "both sides; both methods succeed).",
            [
                "river.rivername <-> river2.rname2",
                "country.cntryname <-> nation.nname",
            ],
            [
                (
                    "ans(v1, v2) :- river(v1, le, se), flowsthrough(v1, cc), "
                    "country(cc, v2, po, cap)",
                    "ans(v1, v2) :- river2(v1, rl, se2), flows2(v1, nc), "
                    "nation(nc, v2, np, cap2)",
                )
            ],
        ),
        case(
            "mondial-language-spoken",
            "Languages spoken in countries with percentages: reified "
            "relationships with attributes (both methods succeed).",
            [
                "language.langname <-> language2.lname2",
                "country.cntryname <-> nation.nname",
                "spokenin.percent <-> spoken2.percent3",
            ],
            [
                (
                    "ans(v1, v2, v3) :- language(v1), "
                    "spokenin(cc, v1, v3), country(cc, v2, po, cap)",
                    "ans(v1, v2, v3) :- language2(v1), "
                    "spoken2(nc, v1, v3), nation(nc, v2, np, cap2)",
                )
            ],
        ),
        case(
            "mondial-org-hq-city",
            "Organizations with their headquarters city: a functional "
            "edge on both sides (both methods succeed).",
            [
                "organization.orgname <-> org2.oname2",
                "city.cityname <-> town.tname5",
            ],
            [
                (
                    "ans(v1, v2) :- organization(oa, v1, v2), "
                    "city(v2, cp, pr)",
                    "ans(v1, v2) :- org2(ab, v1, v2), town(v2, tp, st)",
                )
            ],
        ),
        case(
            "mondial-mountain-continent",
            "Mountains with the continents of their country: a functional "
            "edge composed with the many-many encompasses (semantic only).",
            [
                "mountain.mtname <-> mountain2.mname2",
                "continent.contname <-> continent2.cname4",
            ],
            [
                (
                    "ans(v1, v2) :- mountain(v1, he, cc), "
                    "encompasses(cc, v2), continent(v2, ca)",
                    "ans(v1, v2) :- mountain2(v1, me, nc), "
                    "encompasses2(nc, v2), continent2(v2, ca2)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="Mondial",
        source_label="Mondial1",
        target_label="Mondial2",
        source_cm_label="factbook",
        target_cm_label="mondial2 ER",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Reconstructed factbook ontology + reverse-engineered ER.",
    )
