"""Deterministic synthetic instances for any relational schema.

The paper's evaluation never touches data, but a reproduction should be
able to *run* the mappings it discovers. :func:`generate_instance`
produces a consistent instance for an arbitrary schema: tables are
filled in referential (parents-first) order, foreign-key columns draw
from the parent's existing key values, primary keys stay unique, and a
seeded PRNG makes every run reproducible.
"""

from __future__ import annotations

import random
from typing import Hashable

from repro.exceptions import DatasetError
from repro.relational.instance import Instance
from repro.relational.schema import RelationalSchema, Table


def referential_order(schema: RelationalSchema) -> list[str]:
    """Tables ordered so every RIC parent precedes its children.

    Cycles (self-references or mutual FKs) are broken arbitrarily after
    all acyclically placeable tables; their FK values are then drawn from
    whatever parent rows already exist.
    """
    remaining = list(schema.table_names())
    ordered: list[str] = []
    placed: set[str] = set()
    while remaining:
        progressed = False
        for name in list(remaining):
            parents = {
                ric.parent_table
                for ric in schema.rics_from(name)
                if ric.parent_table != name
            }
            if parents <= placed:
                ordered.append(name)
                placed.add(name)
                remaining.remove(name)
                progressed = True
        if not progressed:
            # Cycle: place the lexicographically first remaining table.
            name = sorted(remaining)[0]
            ordered.append(name)
            placed.add(name)
            remaining.remove(name)
    return ordered


def _fresh_value(table: Table, column: str, index: int) -> str:
    return f"{table.name}_{column}_{index}"


def generate_instance(
    schema: RelationalSchema,
    rows_per_table: int = 5,
    seed: int = 7,
) -> Instance:
    """A consistent sample instance (keys unique, RICs satisfied).

    >>> from repro.datasets.registry import load_dataset
    >>> pair = load_dataset("Hotel")
    >>> inst = generate_instance(pair.source.schema, rows_per_table=3)
    >>> inst.is_consistent()
    True
    """
    if rows_per_table < 1:
        raise DatasetError("rows_per_table must be positive")
    rng = random.Random(seed)
    instance = Instance(schema)
    for table_name in referential_order(schema):
        table = schema.table(table_name)
        rics = schema.rics_from(table_name)
        seen_keys: set[tuple] = set()
        attempts = 0
        produced = 0
        while produced < rows_per_table and attempts < rows_per_table * 10:
            attempts += 1
            row: dict[str, Hashable] = {}
            feasible = True
            for ric in rics:
                parent_rows = instance.rows(ric.parent_table)
                if not parent_rows:
                    feasible = False
                    break
                parent = schema.table(ric.parent_table)
                chosen = rng.choice(parent_rows)
                for child_col, parent_col in ric.column_pairs:
                    value = chosen[parent.columns.index(parent_col)]
                    if child_col in row and row[child_col] != value:
                        feasible = False
                        break
                    row[child_col] = value
                if not feasible:
                    break
            if not feasible:
                continue
            for column in table.columns:
                if column not in row:
                    row[column] = _fresh_value(
                        table, column, rng.randrange(rows_per_table * 3)
                    )
            if table.primary_key:
                key = tuple(row[c] for c in table.primary_key)
                if key in seen_keys:
                    continue
                seen_keys.add(key)
            instance.add(table_name, tuple(row[c] for c in table.columns))
            produced += 1
    return instance
