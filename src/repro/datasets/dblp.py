"""The DBLP dataset pair (reconstruction of the paper's DBLP1/DBLP2).

DBLP1 is a 22-table relational schema whose semantics live in a rich,
75-class *Bibliographic* ontology (publication-type hierarchy, person
roles, venues, plus many keyless ontology-only concepts: topics,
organizations, events). DBLP2 is a compact 9-table schema whose 7-class
ER model was reverse-engineered from it — functional relationships are
merged into wide tables, and the subclass hierarchy is flattened away.
"""

from __future__ import annotations

from repro.cm import ConceptualModel, SemanticType
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema

#: Keyless ontology-only concept families hung off the core classes.
#: Each tuple is (root, subclasses, anchor class, linking relationship).
_FILLER_FAMILIES = (
    (
        "Topic",
        [
            "ArtificialIntelligence",
            "Databases",
            "Theory",
            "Systems",
            "Networking",
            "Graphics",
            "HCI",
            "Security",
            "Bioinformatics",
            "SoftwareEngineering",
            "MachineLearning",
            "InformationRetrieval",
            "QuantumComputing",
            "Verification",
            "Compilers",
        ],
        "Publication",
        "hasTopic",
    ),
    (
        "Organization",
        [
            "University",
            "ResearchLab",
            "Company",
            "FundingAgency",
            "PublishingHouse",
            "ProfessionalSociety",
            "StandardsBody",
            "Consortium",
            "Library",
        ],
        "Conference",
        "sponsoredBy",
    ),
    (
        "Event",
        [
            "Workshop",
            "Symposium",
            "SummerSchool",
            "Tutorial",
            "PanelDiscussion",
            "KeynoteSession",
        ],
        "Conference",
        "colocatedWith",
    ),
    (
        "Artifact",
        [
            "Dataset",
            "SoftwareTool",
            "Benchmark",
            "ProofScript",
            "Slides",
            "Poster",
            "TechReportDraft",
            "Preprint",
        ],
        "Publication",
        "accompaniedBy",
    ),
    (
        "Agent",
        [
            "ProgramCommittee",
            "EditorialBoard",
            "SteeringCommittee",
            "ReviewPanel",
            "AwardCommittee",
        ],
        "Person",
        "servesOn",
    ),
    (
        "Venue",
        [
            "ConferenceCenter",
            "UniversityCampus",
            "OnlinePlatform",
            "HotelVenue",
        ],
        "Conference",
        "heldAt",
    ),
    (
        "Award",
        ["BestPaperAward", "TestOfTimeAward", "DistinguishedReview"],
        "Publication",
        "received",
    ),
)


def _bibliographic_ontology() -> ConceptualModel:
    """The 75-class source CM (17 keyed classes + 1 reified + fillers)."""
    cm = ConceptualModel("bibliographic")
    cm.add_class("Publication", attributes=["pubid", "title", "year"], key=["pubid"])
    cm.add_class("Article", attributes=["pages"])
    cm.add_class("InProceedings", attributes=["booktitle"])
    cm.add_class("Book", attributes=["isbn"])
    cm.add_class("PhDThesis", attributes=["school"])
    cm.add_class("MastersThesis", attributes=["advisor"])
    cm.add_class("Person", attributes=["pname", "homepage"], key=["pname"])
    cm.add_class("Author")
    cm.add_class("Editor")
    cm.add_class("Reviewer")
    cm.add_class("Journal", attributes=["jname"], key=["jname"])
    cm.add_class("Proceedings", attributes=["prockey"], key=["prockey"])
    cm.add_class("Conference", attributes=["confname", "cyear"], key=["confname"])
    cm.add_class("Publisher", attributes=["pubname"], key=["pubname"])
    cm.add_class("Series", attributes=["sname"], key=["sname"])
    cm.add_class("Institution", attributes=["iname"], key=["iname"])
    cm.add_class("Keyword", attributes=["kw"], key=["kw"])

    for sub in ["Article", "InProceedings", "Book", "PhDThesis", "MastersThesis"]:
        cm.add_isa(sub, "Publication")
    for sub in ["Author", "Editor", "Reviewer"]:
        cm.add_isa(sub, "Person")
    cm.add_disjointness(["Article", "InProceedings"])
    cm.add_disjointness(["PhDThesis", "MastersThesis"])

    cm.add_relationship("publishedIn", "Article", "Journal", "1..1", "0..*")
    cm.add_relationship("presentedAt", "InProceedings", "Proceedings", "1..1", "0..*")
    cm.add_relationship("publishedBy", "Book", "Publisher", "1..1", "0..*")
    cm.add_relationship(
        "partOfSeries",
        "Book",
        "Series",
        "0..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("submittedTo", "PhDThesis", "Institution", "0..1", "0..*")
    cm.add_relationship("proceedingsOf", "Proceedings", "Conference", "1..1", "0..*")
    cm.add_relationship("memberOf", "Person", "Institution", "0..1", "0..*")
    cm.add_relationship("writes", "Person", "Publication", "0..*", "1..*")
    cm.add_relationship("edits", "Editor", "Proceedings", "0..*", "1..*")
    cm.add_relationship("cites", "Publication", "Publication", "0..*", "0..*")
    cm.add_relationship("hasKeyword", "Publication", "Keyword", "0..*", "0..*")
    cm.add_reified_relationship(
        "ReviewAssignment",
        roles={"reviewer": "Reviewer", "paper": "Publication"},
        attributes=["rdate"],
    )

    for root, subclasses, anchor, link in _FILLER_FAMILIES:
        cm.add_class(root, attributes=["label"])
        for sub in subclasses:
            cm.add_class(sub)
            cm.add_isa(sub, root)
        cm.add_relationship(link, anchor, root, "0..*", "0..*")
    return cm


def _dblp2_er() -> ConceptualModel:
    """The 7-class reverse-engineered target ER model."""
    cm = ConceptualModel("dblp2_er")
    cm.add_class("Publication", attributes=["pid", "title", "year"], key=["pid"])
    cm.add_class("Person", attributes=["name", "url"], key=["name"])
    cm.add_class("Journal", attributes=["jtitle"], key=["jtitle"])
    cm.add_class("Conference", attributes=["cname", "cyear2"], key=["cname"])
    cm.add_class("Publisher", attributes=["pname2"], key=["pname2"])
    cm.add_class("Series2", attributes=["sname2"], key=["sname2"])
    cm.add_class("Institution2", attributes=["iname2"], key=["iname2"])
    cm.add_relationship("atConference", "Publication", "Conference", "0..1", "0..*")
    cm.add_relationship("inJournal", "Publication", "Journal", "0..1", "0..*")
    cm.add_relationship(
        "partOfSeries2",
        "Publication",
        "Series2",
        "0..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("publishedBy2", "Publication", "Publisher", "0..1", "0..*")
    cm.add_relationship("memberOf2", "Person", "Institution2", "0..1", "0..*")
    cm.add_relationship("authored", "Person", "Publication", "0..*", "1..*")
    cm.add_relationship("cited", "Publication", "Publication", "0..*", "0..*")
    return cm


@register("DBLP")
def build() -> DatasetPair:
    source = design_schema(_bibliographic_ontology(), "dblp1")
    target = design_schema(_dblp2_er(), "dblp2")
    cases = (
        case(
            "dblp-article-in-journal",
            "Articles with title and journal: an anchored functional tree "
            "through the Article subclass (both methods succeed).",
            [
                "publication.title <-> publication.title",
                "article.jname <-> publication.jtitle",
            ],
            [
                (
                    "ans(v1, v2) :- publication(p, v1, y), article(p, pg, v2)",
                    "ans(v1, v2) :- publication(p, v1, y, c, v2, s, pb)",
                )
            ],
        ),
        case(
            "dblp-author-of-publication",
            "Authors with the titles they wrote: the writes/authored "
            "many-many relationship on both sides.",
            [
                "person.pname <-> person.name",
                "publication.title <-> publication.title",
            ],
            [
                (
                    "ans(v1, v2) :- person(v1, h, i), writes(v1, p), "
                    "publication(p, v2, y)",
                    "ans(v1, v2) :- person(v1, u, i2), authored(v1, p), "
                    "publication(p, v2, y, c, j, s, pb)",
                )
            ],
        ),
        case(
            "dblp-author-in-journal",
            "Authors paired with journals carrying their articles: a "
            "composition across writes and publishedIn (semantic only).",
            [
                "person.pname <-> person.name",
                "journal.jname <-> journal.jtitle",
            ],
            [
                (
                    "ans(v1, v2) :- person(v1, h, i), writes(v1, p), "
                    "article(p, pg, v2), journal(v2)",
                    "ans(v1, v2) :- person(v1, u, i2), authored(v1, p), "
                    "publication(p, t, y, c, v2, s, pb), journal(v2)",
                )
            ],
        ),
        case(
            "dblp-paper-at-conference",
            "Conference papers with their conference: a functional chain "
            "through Proceedings (both methods succeed).",
            [
                "publication.title <-> publication.title",
                "conference.confname <-> conference.cname",
            ],
            [
                (
                    "ans(v1, v2) :- publication(p, v1, y), "
                    "inproceedings(p, bt, pr), proceedings(pr, v2), "
                    "conference(v2, cy)",
                    "ans(v1, v2) :- publication(p, v1, y, v2, j, s, pb), "
                    "conference(v2, cy2)",
                )
            ],
        ),
        case(
            "dblp-book-publisher",
            "Books with their publisher (functional through the Book "
            "subclass).",
            [
                "publication.title <-> publication.title",
                "publisher.pubname <-> publisher.pname2",
            ],
            [
                (
                    "ans(v1, v2) :- publication(p, v1, y), "
                    "book(p, isbn, s, v2), publisher(v2)",
                    "ans(v1, v2) :- publication(p, v1, y, c, j, s2, v2), "
                    "publisher(v2)",
                )
            ],
        ),
        case(
            "dblp-author-at-conference",
            "Authors, their paper titles, and the conferences the papers "
            "appeared at: a functional tree grown by a lossy attachment "
            "(semantic only).",
            [
                "person.pname <-> person.name",
                "publication.title <-> publication.title",
                "conference.confname <-> conference.cname",
            ],
            [
                (
                    "ans(v1, v2, v3) :- person(v1, h, i), writes(v1, p), "
                    "publication(p, v2, y), inproceedings(p, bt, pr), "
                    "proceedings(pr, v3), conference(v3, cy)",
                    "ans(v1, v2, v3) :- person(v1, u, i2), authored(v1, p), "
                    "publication(p, v2, y, v3, j, s, pb), conference(v3, cy2)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="DBLP",
        source_label="DBLP1",
        target_label="DBLP2",
        source_cm_label="Bibliographic",
        target_cm_label="DBLP2 ER",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Reconstructed bibliographic ontology + reverse-engineered ER.",
    )
