"""The Amalgam dataset pair (reconstruction of the paper's Amalgam1/2).

The originals were bibliography schemas "developed by students ... not
designed by professionals", used in the Clio evaluations; the paper notes
the semantic technique fared best here. The reconstruction mirrors the
signature student-design patterns:

* **Amalgam1** (source): a flat 8-concept ER model — one denormalized
  table per publication type (journal names, publishers, institutions
  stored as plain text columns), one authorship table per publication
  type, and assorted pairwise citation tables — 15 tables in all.
* **Amalgam2** (target): a professionally normalized 26-class model with
  a publication ISA hierarchy, reified authorship, and proper entity
  tables for journals/publishers/institutions — 27 tables.

The target-side connections routinely climb the ISA hierarchy and pass
through the reified Authorship class, which is invisible to RIC-only
techniques — exactly the Example 1.2 phenomenon.
"""

from __future__ import annotations

from repro.cm import ConceptualModel, SemanticType
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema


def _amalgam1_er() -> ConceptualModel:
    cm = ConceptualModel("amalgam1_er")
    cm.add_class("Author", attributes=["aid", "aname", "email"], key=["aid"])
    cm.add_class(
        "ArticleP",
        attributes=["artid", "atitle", "journal", "volume"],
        key=["artid"],
    )
    cm.add_class(
        "BookP",
        attributes=["bkid", "btitle", "publisher", "byear"],
        key=["bkid"],
    )
    cm.add_class(
        "TechRep", attributes=["trid", "rtitle", "institution"], key=["trid"]
    )
    cm.add_class(
        "InColl", attributes=["icid", "ictitle", "booktitle"], key=["icid"]
    )
    cm.add_class("MiscP", attributes=["mid", "mtitle", "note2"], key=["mid"])
    # Keyless leftovers of the students' ER diagram (no tables).
    cm.add_class("Venue1", attributes=["vdesc"])
    cm.add_class("Publisher1", attributes=["pdesc"])
    # One authorship relationship per publication type — the student way.
    cm.add_relationship("wroteArt", "Author", "ArticleP", "0..*", "1..*")
    cm.add_relationship("wroteBk", "Author", "BookP", "0..*", "1..*")
    cm.add_relationship("wroteTr", "Author", "TechRep", "0..*", "1..*")
    cm.add_relationship("wroteIc", "Author", "InColl", "0..*", "1..*")
    cm.add_relationship("wroteMisc", "Author", "MiscP", "0..*", "1..*")
    # Pairwise citation tables between some publication types.
    cm.add_relationship("citesAA", "ArticleP", "ArticleP", "0..*", "0..*")
    cm.add_relationship("citesAB", "ArticleP", "BookP", "0..*", "0..*")
    cm.add_relationship("citesBB", "BookP", "BookP", "0..*", "0..*")
    cm.add_relationship("citesTA", "TechRep", "ArticleP", "0..*", "0..*")
    # Keyless decorations.
    cm.add_relationship("venueOf", "MiscP", "Venue1", "0..1", "0..*")
    cm.add_relationship("publishedBy1", "BookP", "Publisher1", "0..1", "0..*")
    return cm


def _amalgam2_er() -> ConceptualModel:
    cm = ConceptualModel("amalgam2_er")
    cm.add_class(
        "Publication", attributes=["pubid", "title", "year"], key=["pubid"]
    )
    cm.add_class("Article", attributes=["pages2"])
    cm.add_class("Book", attributes=["isbn2"])
    cm.add_class("TechReport", attributes=["number2"])
    cm.add_class("InCollection", attributes=["chapno"])
    cm.add_class("Misc", attributes=["how"])
    cm.add_class("Thesis", attributes=["degree"])
    cm.add_class("Person", attributes=["pid", "pname2", "email2"], key=["pid"])
    cm.add_class("Author")
    cm.add_class("Editor")
    cm.add_class("Journal", attributes=["jtitle2"], key=["jtitle2"])
    cm.add_class("Publisher", attributes=["pubname3"], key=["pubname3"])
    cm.add_class("Institution", attributes=["iname3"], key=["iname3"])
    cm.add_class("Conference", attributes=["cname2"], key=["cname2"])
    cm.add_class("Proceedings", attributes=["procid"], key=["procid"])
    cm.add_class("Series", attributes=["sname3"], key=["sname3"])
    cm.add_class("Keyword", attributes=["word"], key=["word"])
    cm.add_class("Volume", attributes=["volno"], key=["volno"])
    cm.add_class("Chapter", attributes=["chtitle"], key=["chtitle"])
    cm.add_class("Topic", attributes=["tname"], key=["tname"])
    cm.add_class("Country", attributes=["cname3"], key=["cname3"])
    cm.add_class("Award", attributes=["awname"], key=["awname"])
    # Keyless auxiliary concepts.
    cm.add_class("Venue", attributes=["vdesc2"])
    cm.add_class("Role", attributes=["rdesc"])
    cm.add_class("Note", attributes=["ntext"])

    for sub in [
        "Article",
        "Book",
        "TechReport",
        "InCollection",
        "Misc",
        "Thesis",
    ]:
        cm.add_isa(sub, "Publication")
    cm.add_disjointness(["Article", "Book"])
    for sub in ["Author", "Editor"]:
        cm.add_isa(sub, "Person")

    cm.add_relationship("inJournal2", "Article", "Journal", "0..1", "0..*")
    cm.add_relationship("publishedBy3", "Book", "Publisher", "0..1", "0..*")
    cm.add_relationship("inSeries", "Book", "Series", "0..1", "0..*")
    cm.add_relationship(
        "fromInstitution", "TechReport", "Institution", "0..1", "0..*"
    )
    cm.add_relationship(
        "inBook",
        "InCollection",
        "Book",
        "0..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("thesisAt", "Thesis", "Institution", "0..1", "0..*")
    cm.add_relationship("procOf", "Proceedings", "Conference", "1..1", "0..*")
    cm.add_relationship(
        "volumeOf",
        "Volume",
        "Journal",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship(
        "chapterIn",
        "Chapter",
        "Book",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("aboutTopic", "Publication", "Topic", "0..1", "0..*")
    cm.add_relationship("locatedIn", "Institution", "Country", "0..1", "0..*")
    cm.add_relationship("wonAward", "Publication", "Award", "0..1", "0..*")
    cm.add_reified_relationship(
        "Authorship",
        roles={"auth": "Author", "pub": "Publication"},
        attributes=["position"],
    )
    cm.add_relationship("cites", "Publication", "Publication", "0..*", "0..*")
    cm.add_relationship("hasKeyword2", "Publication", "Keyword", "0..*", "0..*")
    cm.add_relationship("edited", "Editor", "Proceedings", "0..*", "1..*")
    cm.add_relationship("affiliated", "Person", "Institution", "0..*", "0..*")
    # Keyless decorations.
    cm.add_relationship("heldAt2", "Conference", "Venue", "0..1", "0..*")
    cm.add_relationship("hasRole", "Person", "Role", "0..*", "0..*")
    cm.add_relationship("annotatedBy", "Publication", "Note", "0..*", "0..*")
    return cm


@register("Amalgam")
def build() -> DatasetPair:
    source = design_schema(_amalgam1_er(), "amalgam1")
    target = design_schema(_amalgam2_er(), "amalgam2")
    cases = (
        case(
            "amalgam-article-basic",
            "Article titles with their journal: the denormalized source "
            "column vs the target's Journal entity (both methods succeed).",
            [
                "articlep.atitle <-> publication.title",
                "articlep.journal <-> journal.jtitle2",
            ],
            [
                (
                    "ans(v1, v2) :- articlep(a, v1, v2, vol)",
                    "ans(v1, v2) :- publication(p, v1, y, tn, aw), "
                    "article(p, pg, v2), journal(v2)",
                )
            ],
        ),
        case(
            "amalgam-author-of-article",
            "Authors with their article titles: per-type authorship table "
            "vs the reified Authorship (both methods succeed).",
            [
                "author.aname <-> person.pname2",
                "articlep.atitle <-> publication.title",
            ],
            [
                (
                    "ans(v1, v2) :- author(aid, v1, em), wroteart(aid, art), "
                    "articlep(art, v2, j, vol)",
                    "ans(v1, v2) :- person(pid, v1, em2), "
                    "authorship(pid, pub, pos), publication(pub, v2, y, tn, aw)",
                )
            ],
        ),
        case(
            "amalgam-author-journal",
            "Authors with the journals of their articles: the target "
            "connection climbs ISA and crosses Authorship (semantic only).",
            [
                "author.aname <-> person.pname2",
                "articlep.journal <-> journal.jtitle2",
            ],
            [
                (
                    "ans(v1, v2) :- author(aid, v1, em), wroteart(aid, art), "
                    "articlep(art, at, v2, vol)",
                    "ans(v1, v2) :- person(pid, v1, em2), "
                    "authorship(pid, pub, pos), article(pub, pg, v2), "
                    "journal(v2)",
                )
            ],
        ),
        case(
            "amalgam-techreport-institution",
            "Tech reports with their institution (both methods succeed).",
            [
                "techrep.rtitle <-> publication.title",
                "techrep.institution <-> institution.iname3",
            ],
            [
                (
                    "ans(v1, v2) :- techrep(t, v1, v2)",
                    "ans(v1, v2) :- publication(p, v1, y, tn, aw), "
                    "techreport(p, n2, v2), institution(v2, co)",
                )
            ],
        ),
        case(
            "amalgam-author-trivial",
            "Author names and emails onto persons (single table).",
            [
                "author.aname <-> person.pname2",
                "author.email <-> person.email2",
            ],
            [
                (
                    "ans(v1, v2) :- author(a, v1, v2)",
                    "ans(v1, v2) :- person(p, v1, v2)",
                )
            ],
        ),
        case(
            "amalgam-author-publisher",
            "Authors with the publishers of their books (semantic only).",
            [
                "author.aname <-> person.pname2",
                "bookp.publisher <-> publisher.pubname3",
            ],
            [
                (
                    "ans(v1, v2) :- author(aid, v1, em), wrotebk(aid, bk), "
                    "bookp(bk, bt, v2, by)",
                    "ans(v1, v2) :- person(pid, v1, em2), "
                    "authorship(pid, pub, pos), book(pub, ib, sn, v2), "
                    "publisher(v2)",
                )
            ],
        ),
        case(
            "amalgam-author-institution",
            "Authors with the institutions of their tech reports "
            "(semantic only).",
            [
                "author.aname <-> person.pname2",
                "techrep.institution <-> institution.iname3",
            ],
            [
                (
                    "ans(v1, v2) :- author(aid, v1, em), wrotetr(aid, tr), "
                    "techrep(tr, rt, v2)",
                    "ans(v1, v2) :- person(pid, v1, em2), "
                    "authorship(pid, pub, pos), techreport(pub, n2, v2), "
                    "institution(v2, co)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="Amalgam",
        source_label="Amalgam1",
        target_label="Amalgam2",
        source_cm_label="amalgam1 ER",
        target_cm_label="amalgam2 ER",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Student-designed flat schema vs normalized hierarchy.",
    )
