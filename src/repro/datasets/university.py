"""The University dataset pair (reconstruction of the paper's UTCS/UTDB).

UTCS is a small departmental database (8 tables) whose semantics were
recovered against the large *KA* (knowledge acquisition) ontology — 105
nodes, most of them concepts the database never touches. UTDB is the DB
group's database (13 tables) over a 62-node CS-department ontology. Only
two benchmark mappings were tested in the paper; the interesting part is
that discovery stays fast despite the large CM graphs.
"""

from __future__ import annotations

from repro.cm import ConceptualModel
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema


def _filler_families(prefix_count: list[tuple[str, int]]):
    """Generate keyless concept families: (root, n) → root + n subclasses."""
    for root, count in prefix_count:
        yield root, [f"{root}{i}" for i in range(1, count + 1)]


_KA_FILLERS = [
    ("ResearchTopic", 19),
    ("Methodology", 13),
    ("Event", 11),
    ("Artifact", 21),
    ("Activity", 9),
    ("Publication", 12),
    ("Role", 7),
]

_CSDEPT_FILLERS = [
    ("Facility", 9),
    ("Committee", 8),
    ("Degree", 7),
    ("Award", 6),
    ("Seminar", 19),
]


def _ka_ontology() -> ConceptualModel:
    """105 classes: the small keyed core plus KA concept hierarchies."""
    cm = ConceptualModel("ka_onto")
    cm.add_class("Person", attributes=["email", "fullname"], key=["email"])
    cm.add_class("Professor", attributes=["office"])
    cm.add_class("Student", attributes=["year5"])
    cm.add_class("Course", attributes=["courseno", "ctitle"], key=["courseno"])
    cm.add_class("Project", attributes=["projname", "budget"], key=["projname"])
    cm.add_class("ResearchGroup", attributes=["grpname"], key=["grpname"])
    cm.add_isa("Professor", "Person")
    cm.add_isa("Student", "Person")

    cm.add_relationship("advisor", "Student", "Professor", "1..1", "0..*")
    cm.add_relationship(
        "memberOfGroup", "Professor", "ResearchGroup", "0..1", "0..*"
    )
    cm.add_relationship("teaches", "Professor", "Course", "0..*", "1..*")
    cm.add_relationship("worksOn", "Person", "Project", "0..*", "0..*")

    for root, subclasses in _filler_families(_KA_FILLERS):
        cm.add_class(root, attributes=["note9"])
        for sub in subclasses:
            cm.add_class(sub)
            cm.add_isa(sub, root)
    cm.add_relationship("interestedIn", "Person", "ResearchTopic", "0..*", "0..*")
    cm.add_relationship("produces", "Project", "Artifact", "0..*", "0..*")
    cm.add_relationship("organizes", "ResearchGroup", "Event", "0..*", "0..*")
    return cm


def _csdept_ontology() -> ConceptualModel:
    """62 classes: the DB group's keyed core plus department concepts."""
    cm = ConceptualModel("csdept_onto")
    cm.add_class("Person8", attributes=["pemail", "pname8"], key=["pemail"])
    cm.add_class("Faculty", attributes=["rank8"])
    cm.add_class("GradStudent", attributes=["year8"])
    cm.add_class("Course8", attributes=["cno8", "cname8"], key=["cno8"])
    cm.add_class("Project8", attributes=["pname9", "funds"], key=["pname9"])
    cm.add_class("Group8", attributes=["gname8"], key=["gname8"])
    cm.add_class("Publication8", attributes=["pkey8", "ptitle8"], key=["pkey8"])
    cm.add_class("Lab", attributes=["labname"], key=["labname"])
    cm.add_isa("Faculty", "Person8")
    cm.add_isa("GradStudent", "Person8")

    cm.add_relationship("advisor8", "GradStudent", "Faculty", "1..1", "0..*")
    cm.add_relationship("memberOfGroup8", "Faculty", "Group8", "0..1", "0..*")
    cm.add_relationship("groupLab", "Group8", "Lab", "0..1", "0..*")
    cm.add_relationship("teaches8", "Faculty", "Course8", "0..*", "1..*")
    cm.add_relationship("worksOn8", "Person8", "Project8", "0..*", "0..*")
    cm.add_relationship("authorOf8", "Person8", "Publication8", "0..*", "1..*")

    for root, subclasses in _filler_families(_CSDEPT_FILLERS):
        cm.add_class(root, attributes=["note8"])
        for sub in subclasses:
            cm.add_class(sub)
            cm.add_isa(sub, root)
    cm.add_relationship("enrolled8", "GradStudent", "Course8", "0..*", "0..*")
    cm.add_relationship("collab8", "Group8", "Group8", "0..*", "0..*")
    cm.add_relationship("usesFacility", "Group8", "Facility", "0..*", "0..*")
    cm.add_relationship("servesOn8", "Faculty", "Committee", "0..*", "0..*")
    cm.add_relationship("pursues", "GradStudent", "Degree", "0..1", "0..*")
    return cm


@register("UT")
def build() -> DatasetPair:
    source = design_schema(_ka_ontology(), "utcs", inherit_attributes=True)
    target = design_schema(_csdept_ontology(), "utdb", inherit_attributes=True)
    cases = (
        case(
            "ut-professor-teaches-course",
            "Professors with the courses they teach (both methods succeed).",
            [
                "professor.fullname <-> faculty.pname8",
                "course.ctitle <-> course8.cname8",
            ],
            [
                (
                    "ans(v1, v2) :- professor(pe, v1, of, gr), "
                    "teaches(pe, cn), course(cn, v2)",
                    "ans(v1, v2) :- faculty(fe, v1, rk, gr8), "
                    "teaches8(fe, cn8), course8(cn8, v2)",
                )
            ],
        ),
        case(
            "ut-course-project-of-person",
            "Courses taught and projects worked on by the same person: a "
            "composition across two many-many tables (semantic only).",
            [
                "course.ctitle <-> course8.cname8",
                "project.projname <-> project8.pname9",
            ],
            [
                (
                    "ans(v1, v2) :- course(cn, v1), teaches(pe, cn), "
                    "workson(pe, v2), project(v2, bu)",
                    "ans(v1, v2) :- course8(cn8, v1), teaches8(fe, cn8), "
                    "workson8(fe, v2), project8(v2, fu)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="UT",
        source_label="UTCS",
        target_label="UTDB",
        source_cm_label="KA onto.",
        target_cm_label="CS dept. onto.",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Departmental databases over large recovered ontologies.",
    )
