"""Dataset framework: mapping cases, domain pairs, and the registry.

Each of the paper's seven test-data pairs (Table 1) is reconstructed as a
:class:`DatasetPair` — two independently designed schemas with their CMs
and table semantics — plus a list of :class:`MappingCase` benchmarks: the
"manually created non-trivial benchmark mappings" of Section 4, written
here as explicit table-level query pairs.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.correspondences import Correspondence, CorrespondenceSet
from repro.exceptions import DatasetError
from repro.mappings.expression import MappingCandidate
from repro.queries.parser import parse_query
from repro.semantics.lav import SchemaSemantics


@dataclass(frozen=True)
class MappingCase:
    """One benchmark: correspondences plus the gold mapping(s) ``R``."""

    case_id: str
    description: str
    correspondences: CorrespondenceSet
    benchmark: tuple[MappingCandidate, ...]

    def __post_init__(self) -> None:
        if not self.benchmark:
            raise DatasetError(
                f"case {self.case_id!r} needs at least one benchmark mapping"
            )


@dataclass
class DatasetPair:
    """A reconstructed source/target pair from Table 1."""

    name: str
    source_label: str
    target_label: str
    source_cm_label: str
    target_cm_label: str
    source: SchemaSemantics
    target: SchemaSemantics
    cases: tuple[MappingCase, ...]
    notes: str = ""

    def __post_init__(self) -> None:
        for case in self.cases:
            case.correspondences.validate(
                self.source.schema, self.target.schema
            )

    # Table 1 characteristics -------------------------------------------------
    def source_table_count(self) -> int:
        return len(self.source.schema)

    def target_table_count(self) -> int:
        return len(self.target.schema)

    def source_cm_node_count(self) -> int:
        return len(self.source.model.class_names())

    def target_cm_node_count(self) -> int:
        return len(self.target.model.class_names())

    def mapping_count(self) -> int:
        return len(self.cases)


def benchmark_mapping(
    source_query_text: str,
    target_query_text: str,
    correspondence_texts: Sequence[str],
) -> MappingCandidate:
    """Author one gold mapping from textual queries and correspondences.

    >>> gold = benchmark_mapping(
    ...     "ans(v1) :- person(v1)",
    ...     "ans(v1) :- author(v1)",
    ...     ["person.pname <-> author.aname"],
    ... )
    >>> gold.method
    'benchmark'
    """
    return MappingCandidate(
        parse_query(source_query_text),
        parse_query(target_query_text),
        tuple(Correspondence.parse(text) for text in correspondence_texts),
        method="benchmark",
    )


def case(
    case_id: str,
    description: str,
    correspondence_texts: Sequence[str],
    benchmarks: Sequence[tuple[str, str]],
) -> MappingCase:
    """Compact case constructor: the benchmarks cover all correspondences.

    ``benchmarks`` is a list of (source query, target query) text pairs;
    each is assumed to cover the case's full correspondence list (the
    usual situation for the paper's non-trivial benchmark mappings).
    """
    correspondences = CorrespondenceSet.parse(list(correspondence_texts))
    gold = tuple(
        benchmark_mapping(source_text, target_text, correspondence_texts)
        for source_text, target_text in benchmarks
    )
    return MappingCase(case_id, description, correspondences, gold)


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

_BUILDERS: dict[str, Callable[[], DatasetPair]] = {}


def register(name: str) -> Callable:
    """Decorator registering a dataset builder under ``name``."""

    def wrap(builder: Callable[[], DatasetPair]) -> Callable[[], DatasetPair]:
        _BUILDERS[name] = builder
        return builder

    return wrap


def dataset_names() -> tuple[str, ...]:
    """Registered dataset names, in Table 1 order."""
    _ensure_loaded()
    return tuple(_BUILDERS)


def load_dataset(name: str) -> DatasetPair:
    """Build one registered dataset pair by name."""
    _ensure_loaded()
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise DatasetError(
            f"unknown dataset {name!r}; have {sorted(_BUILDERS)}"
        ) from None
    return builder()


def load_all_datasets() -> tuple[DatasetPair, ...]:
    """Build every registered dataset pair, in Table 1 order."""
    _ensure_loaded()
    return tuple(builder() for builder in _BUILDERS.values())


_LOADED = False
_LOAD_LOCK = threading.Lock()


def _ensure_loaded() -> None:
    """Import the dataset modules so their builders register.

    Guarded by a lock and a flag set only *after* every module has
    registered: checking ``_BUILDERS`` itself is racy — it is non-empty
    as soon as the first module registers, so a concurrent caller (the
    service handles requests on many threads) could see a partially
    populated registry and reject a perfectly registered dataset.
    """
    global _LOADED
    if _LOADED:
        return
    with _LOAD_LOCK:
        if _LOADED:
            return
        from repro.datasets import (  # noqa: F401
            dblp,
            mondial,
            amalgam,
            sdb3,
            university,
            hotel,
            network,
        )
        _LOADED = True
