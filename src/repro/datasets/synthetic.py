"""Parameterized synthetic conceptual models for scale benchmarking.

The paper's datasets top out at a few dozen classes, which says nothing
about how discovery scales. This module grows three structurally
different CM families to arbitrary size, forward-engineers both sides
through :func:`repro.semantics.design_schema`, and anchors a fixed pair
of correspondences so every size has a discoverable mapping:

* **chain** — an entity chain joined by functional relationships with a
  pendant class per link (the Steiner search's worst case: the marked
  classes sit at the two ends, every pendant is a dead branch);
* **isa_fan** — the same functional backbone where every chain class
  additionally fans out into ISA subclasses (stresses subclass lifting
  and the merged-table semantics);
* **reified_web** — entities joined by *reified many-many*
  relationships (no functional end-to-end path exists, so discovery
  exercises the Section 3.3 lossy-path search; the correspondences are
  anchored two hops apart to stay inside ``max_path_edges``).

The marked classes sit a *fixed* span apart (:data:`MARKED_SPAN` hops)
regardless of model size: the discovered mapping — and therefore the
translation cost — stays constant while the graph grows, so the curve
isolates the search layers (root enumeration, Steiner expansion, lossy
branch-and-bound) that the distance oracle accelerates. A blind search
pays for every extra class; an oracle-guided one proves most of the
graph irrelevant up front.

Everything here is deterministic — sizes map to models, models map to
schemas, no randomness — so ``BENCH_scale.json`` is reproducible and
the oracle-on/oracle-off equivalence gate compares like with like.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.semantics import design_schema

#: The family vocabulary, in report order.
FAMILY_NAMES = ("chain", "isa_fan", "reified_web")

#: Subclasses per chain class in the ``isa_fan`` family.
ISA_FAN_WIDTH = 4

#: Hops between the two marked classes, independent of model size.
MARKED_SPAN = 8


def class_count(cm: ConceptualModel) -> int:
    """Number of classes (reified ones included) in ``cm``."""
    return len(cm.class_names())


# ----------------------------------------------------------------------
# Model generators
# ----------------------------------------------------------------------
def chain_model(name: str, length: int) -> ConceptualModel:
    """``C0 →f0→ C1 → ... → Cn`` plus one pendant class per link.

    ``2 * (length + 1)`` classes.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    cm = ConceptualModel(name)
    for index in range(length + 1):
        cm.add_class(
            f"C{index}",
            attributes=[f"k{index}", f"a{index}"],
            key=[f"k{index}"],
        )
        cm.add_class(
            f"P{index}", attributes=[f"pk{index}"], key=[f"pk{index}"]
        )
        cm.add_relationship(
            f"pend{index}", f"C{index}", f"P{index}", "0..1", "0..*"
        )
    for index in range(length):
        cm.add_relationship(
            f"f{index}", f"C{index}", f"C{index + 1}", "1..1", "0..*"
        )
    return cm


def isa_fan_model(
    name: str, length: int, width: int = ISA_FAN_WIDTH
) -> ConceptualModel:
    """A functional chain whose every class fans into ISA subclasses.

    ``(length + 1) * (width + 1)`` classes.
    """
    if length < 1:
        raise ValueError(f"length must be >= 1, got {length}")
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    cm = ConceptualModel(name)
    for index in range(length + 1):
        cm.add_class(
            f"R{index}",
            attributes=[f"k{index}", f"a{index}"],
            key=[f"k{index}"],
        )
        for sub in range(width):
            cm.add_class(f"R{index}S{sub}", attributes=[f"s{index}x{sub}"])
            cm.add_isa(f"R{index}S{sub}", f"R{index}")
    for index in range(length):
        cm.add_relationship(
            f"f{index}", f"R{index}", f"R{index + 1}", "1..1", "0..*"
        )
    return cm


def reified_web_model(name: str, links: int) -> ConceptualModel:
    """Entities joined by reified many-many links: ``E0 –W0– E1 – ...``.

    ``2 * links + 1`` classes. No functional path crosses a link, so
    the marked classes must be bridged by the lossy-path search.
    """
    if links < 2:
        raise ValueError(f"links must be >= 2, got {links}")
    cm = ConceptualModel(name)
    for index in range(links + 1):
        cm.add_class(
            f"E{index}",
            attributes=[f"k{index}", f"a{index}"],
            key=[f"k{index}"],
        )
    for index in range(links):
        cm.add_reified_relationship(
            f"W{index}",
            roles={
                f"w{index}src": f"E{index}",
                f"w{index}tgt": f"E{index + 1}",
            },
            attributes=[f"wa{index}"],
        )
    return cm


# ----------------------------------------------------------------------
# Scenario builders (source semantics, target semantics, correspondences)
# ----------------------------------------------------------------------
def chain_scenario(length: int, span: int | None = None):
    source = design_schema(chain_model("syn_chain_src", length), "src")
    target = design_schema(chain_model("syn_chain_tgt", length), "tgt")
    span = min(length, MARKED_SPAN if span is None else span)
    correspondences = CorrespondenceSet.parse(
        [
            "c0.a0 <-> c0.a0",
            f"c{span}.a{span} <-> c{span}.a{span}",
        ]
    )
    return source.semantics, target.semantics, correspondences


def isa_fan_scenario(
    length: int, width: int = ISA_FAN_WIDTH, span: int | None = None
):
    source = design_schema(isa_fan_model("syn_fan_src", length, width), "src")
    target = design_schema(isa_fan_model("syn_fan_tgt", length, width), "tgt")
    span = min(length, MARKED_SPAN if span is None else span)
    correspondences = CorrespondenceSet.parse(
        [
            "r0.a0 <-> r0.a0",
            f"r{span}.a{span} <-> r{span}.a{span}",
        ]
    )
    return source.semantics, target.semantics, correspondences


def reified_web_scenario(links: int):
    source = design_schema(reified_web_model("syn_web_src", links), "src")
    target = design_schema(reified_web_model("syn_web_tgt", links), "tgt")
    # Two entity hops (four graph edges, within the default
    # ``max_path_edges``): the web beyond is pure search pressure.
    correspondences = CorrespondenceSet.parse(
        ["e0.a0 <-> e0.a0", "e2.a2 <-> e2.a2"]
    )
    return source.semantics, target.semantics, correspondences


# ----------------------------------------------------------------------
# Evolution chains (v1 → v2 → ... version sequences for the algebra)
# ----------------------------------------------------------------------
#: Families usable as evolution chains: each version must expose the
#: *same* table and column names, so one correspondence set anchors
#: every hop and the hop mappings compose without renaming.
EVOLUTION_FAMILIES = ("chain", "isa_fan")


@dataclass(frozen=True)
class EvolutionChain:
    """A schema-version sequence ``V0 → V1 → ... → Vn`` plus anchors.

    Every version is a structurally identical forward-engineered schema
    (same tables, same columns — only the model name differs), so the
    one :attr:`correspondences` set is valid for every hop *and* for the
    direct ``V0 → Vn`` scenario. That makes the chain the controlled
    experiment for :func:`repro.mappings.algebra.compose`: discover each
    hop, compose the per-hop mappings, and the result must be equivalent
    to discovering ``V0 → Vn`` directly.
    """

    chain_id: str
    family: str
    length: int
    span: int
    versions: tuple
    correspondences: CorrespondenceSet

    @property
    def hops(self) -> int:
        return len(self.versions) - 1

    def hop(self, index: int):
        """Hop ``index``'s ``(source, target, correspondences)``."""
        return (
            self.versions[index],
            self.versions[index + 1],
            self.correspondences,
        )

    def direct(self):
        """The end-to-end ``(V0, Vn, correspondences)`` scenario."""
        return self.versions[0], self.versions[-1], self.correspondences


def evolution_chain(
    family: str,
    length: int,
    hops: int = 2,
    span: int | None = None,
    isa_width: int = 2,
) -> EvolutionChain:
    """Build a ``hops + 1``-version evolution chain of one family.

    Deterministic, like everything in this module. ``span`` anchors the
    marked attributes (defaults to the full ``length``, capped at
    :data:`MARKED_SPAN`); ``isa_width`` sizes the ``isa_fan`` family's
    subclass fans.
    """
    if hops < 1:
        raise ValueError(f"hops must be >= 1, got {hops}")
    span = min(length, MARKED_SPAN if span is None else span)
    if family == "chain":
        models = [
            chain_model(f"evo_chain_v{i}", length) for i in range(hops + 1)
        ]
        anchor = "c"
    elif family == "isa_fan":
        models = [
            isa_fan_model(f"evo_fan_v{i}", length, isa_width)
            for i in range(hops + 1)
        ]
        anchor = "r"
    else:
        raise ValueError(
            f"unknown evolution family {family!r}; known: "
            f"{sorted(EVOLUTION_FAMILIES)}"
        )
    versions = tuple(
        design_schema(model, f"v{i}").semantics
        for i, model in enumerate(models)
    )
    correspondences = CorrespondenceSet.parse(
        [
            f"{anchor}0.a0 <-> {anchor}0.a0",
            f"{anchor}{span}.a{span} <-> {anchor}{span}.a{span}",
        ]
    )
    return EvolutionChain(
        chain_id=f"{family}-L{length}-S{span}-H{hops}",
        family=family,
        length=length,
        span=span,
        versions=versions,
        correspondences=correspondences,
    )


# ----------------------------------------------------------------------
# Size-driven selection
# ----------------------------------------------------------------------
def scale_point(family: str, classes: int):
    """The ``family`` scenario closest to ``classes`` classes per side.

    Returns ``(actual_classes, (source, target, correspondences))``;
    ``actual_classes`` is exact for the generated model, at or below
    the requested budget.
    """
    if family == "chain":
        length = max(1, classes // 2 - 1)
        model = chain_model("probe", length)
        return class_count(model), chain_scenario(length)
    if family == "isa_fan":
        length = max(1, classes // (ISA_FAN_WIDTH + 1) - 1)
        model = isa_fan_model("probe", length)
        return class_count(model), isa_fan_scenario(length)
    if family == "reified_web":
        links = max(2, (classes - 1) // 2)
        model = reified_web_model("probe", links)
        return class_count(model), reified_web_scenario(links)
    raise ValueError(
        f"unknown family {family!r}; known: {sorted(FAMILY_NAMES)}"
    )
