"""The Network dataset pair (reconstruction of the paper's NetworkA/B).

The originals are I3CON ontology-alignment contest ontologies about
computer networks, forward-engineered into relational schemas. The two
reconstructions model the same infrastructure domain with different
vocabularies and slightly different modeling choices, and deliberately
carry the paper's two precision mechanisms:

* NetworkA has **two** functional relationships from Interface to Device
  — ``ifOf`` (a **partOf** role: the interface is physically part of the
  device) and ``managedFrom`` (plain: which controller manages it) —
  while NetworkB's ``portOf`` is partOf: Example 1.3's disambiguation;
* both sides have device-type subclass hierarchies (router/switch/host
  vs gateway/bridge/server), so sibling tables merge through the
  invisible superclass: Example 1.2's phenomenon.
"""

from __future__ import annotations

from repro.cm import ConceptualModel, SemanticType
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema

_NETA_FILLERS = (
    ("ProtocolFamily", ["OSPF", "BGP", "ISIS", "RIP", "Spanning"]),
    ("ServiceClass", ["VoiceService", "VideoService", "DataService"]),
    ("PolicyKind", ["QoSPolicy", "ACLPolicy"]),
)

_NETB_FILLERS = (
    ("RoutingScheme", ["StaticScheme", "DynamicScheme"]),
    ("TrafficKind", ["Bulk", "Interactive", "Streaming"]),
    ("Zone", ["DMZ", "CoreZone", "EdgeZone"]),
)


def _network_a() -> ConceptualModel:
    cm = ConceptualModel("networkA_onto")
    cm.add_class("Device", attributes=["devname", "model"], key=["devname"])
    cm.add_class("Router", attributes=["ios"])
    cm.add_class("Switch", attributes=["vlancount"])
    cm.add_class("Host", attributes=["os"])
    cm.add_class("Interface", attributes=["ifname", "speed"], key=["ifname"])
    cm.add_class("Link", attributes=["linkid", "bandwidth"], key=["linkid"])
    cm.add_class("Subnet", attributes=["cidr"], key=["cidr"])
    cm.add_class("Vlan", attributes=["vlanid"], key=["vlanid"])
    cm.add_class("Site", attributes=["sitename", "region"], key=["sitename"])
    cm.add_class("Admin", attributes=["adminname"], key=["adminname"])
    cm.add_class("Vendor", attributes=["vendorname"], key=["vendorname"])
    cm.add_class("Rack", attributes=["rackid"], key=["rackid"])
    cm.add_class("Datacenter", attributes=["dcname"], key=["dcname"])
    cm.add_class("Circuit", attributes=["circuitid"], key=["circuitid"])
    cm.add_class("Provider", attributes=["provname"], key=["provname"])
    for sub in ["Router", "Switch", "Host"]:
        cm.add_isa(sub, "Device")
    # L3 switches exist: Router and Switch overlap; hosts are disjoint
    # from both.
    cm.add_disjointness(["Host", "Router"])
    cm.add_disjointness(["Host", "Switch"])

    cm.add_relationship(
        "ifOf",
        "Interface",
        "Device",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("managedFrom", "Interface", "Device", "0..1", "0..*")
    cm.add_relationship("atSite", "Device", "Site", "0..1", "0..*")
    cm.add_relationship("madeBy", "Device", "Vendor", "0..1", "0..*")
    cm.add_relationship("inRack", "Device", "Rack", "0..1", "0..*")
    cm.add_relationship(
        "rackIn",
        "Rack",
        "Datacenter",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("onSubnet", "Interface", "Subnet", "0..1", "0..*")
    cm.add_relationship("subnetAt", "Subnet", "Site", "0..1", "0..*")
    cm.add_relationship("onCircuit", "Link", "Circuit", "0..1", "0..*")
    cm.add_relationship("providedBy", "Circuit", "Provider", "0..1", "0..*")
    cm.add_relationship("inVlan", "Interface", "Vlan", "0..*", "0..*")
    cm.add_relationship("managedBy", "Device", "Admin", "0..*", "1..*")
    cm.add_relationship("linkEnds", "Link", "Interface", "0..*", "0..*")

    for root, subclasses in _NETA_FILLERS:
        cm.add_class(root, attributes=["pfnote"])
        for sub in subclasses:
            cm.add_class(sub)
            cm.add_isa(sub, root)
    cm.add_relationship("speaks9", "Router", "ProtocolFamily", "0..*", "0..*")
    cm.add_relationship("carries9", "Link", "ServiceClass", "0..*", "0..*")
    return cm


def _network_b() -> ConceptualModel:
    cm = ConceptualModel("networkB_onto")
    cm.add_class("Node", attributes=["nodename", "hw"], key=["nodename"])
    cm.add_class("Gateway", attributes=["gwproto"])
    cm.add_class("Bridge", attributes=["brports"])
    cm.add_class("Server", attributes=["svcos"])
    cm.add_class("Port2", attributes=["portname", "rate"], key=["portname"])
    cm.add_class(
        "Connection2", attributes=["connid", "capacity"], key=["connid"]
    )
    cm.add_class("Net2", attributes=["prefix"], key=["prefix"])
    cm.add_class("Lan2", attributes=["lanid"], key=["lanid"])
    cm.add_class("Location", attributes=["locname", "zone9"], key=["locname"])
    cm.add_class("Operator", attributes=["opname"], key=["opname"])
    cm.add_class("Maker", attributes=["makername"], key=["makername"])
    cm.add_class("Cabinet", attributes=["cabid"], key=["cabid"])
    cm.add_class("Facility", attributes=["facname"], key=["facname"])
    cm.add_class("Line2", attributes=["lineid"], key=["lineid"])
    cm.add_class("Carrier", attributes=["carrname"], key=["carrname"])
    cm.add_class("Tenant", attributes=["tenname"], key=["tenname"])
    for sub in ["Gateway", "Bridge", "Server"]:
        cm.add_isa(sub, "Node")
    cm.add_disjointness(["Server", "Gateway"])

    cm.add_relationship(
        "portOf",
        "Port2",
        "Node",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("sited", "Node", "Location", "0..1", "0..*")
    cm.add_relationship("builtBy", "Node", "Maker", "0..1", "0..*")
    cm.add_relationship("inCabinet", "Node", "Cabinet", "0..1", "0..*")
    cm.add_relationship(
        "cabinetIn",
        "Cabinet",
        "Facility",
        "1..1",
        "0..*",
        semantic_type=SemanticType.PART_OF,
    )
    cm.add_relationship("onNet", "Port2", "Net2", "0..1", "0..*")
    cm.add_relationship("netAt", "Net2", "Location", "0..1", "0..*")
    cm.add_relationship("onLine", "Connection2", "Line2", "0..1", "0..*")
    cm.add_relationship("linedBy", "Line2", "Carrier", "0..1", "0..*")
    cm.add_relationship("ownedBy9", "Node", "Tenant", "0..1", "0..*")
    cm.add_relationship("portLan", "Port2", "Lan2", "0..*", "0..*")
    cm.add_relationship("operates", "Node", "Operator", "0..*", "1..*")
    cm.add_relationship("connPorts", "Connection2", "Port2", "0..*", "0..*")

    for root, subclasses in _NETB_FILLERS:
        cm.add_class(root, attributes=["note7"])
        for sub in subclasses:
            cm.add_class(sub)
            cm.add_isa(sub, root)
    cm.add_relationship("routesVia", "Gateway", "RoutingScheme", "0..*", "0..*")
    cm.add_relationship("shapedAs", "Connection2", "TrafficKind", "0..*", "0..*")
    return cm


@register("Network")
def build() -> DatasetPair:
    source = design_schema(_network_a(), "networkA")
    target = design_schema(_network_b(), "networkB")
    cases = (
        case(
            "network-interface-of-device",
            "Interfaces with their device: two candidate functional "
            "relationships in the source, disambiguated by partOf "
            "(Example 1.3's phenomenon).",
            [
                "interface.ifname <-> port2.portname",
                "device.devname <-> node.nodename",
            ],
            [
                (
                    "ans(v1, v2) :- interface(v1, sp, v2, mf, cd), "
                    "device(v2, mo, si, ra, ve)",
                    "ans(v1, v2) :- port2(v1, ra2, pf, v2), "
                    "node(v2, hw, ma, ca, te, lo)",
                )
            ],
        ),
        case(
            "network-router-switch-merge",
            "L3 switches: merging the router and switch tables through "
            "the invisible Device superclass (Example 1.2; semantic only).",
            [
                "router.ios <-> gateway.gwproto",
                "switch.vlancount <-> bridge.brports",
            ],
            [
                (
                    "ans(v1, v2) :- router(d, v1), switch(d, v2)",
                    "ans(v1, v2) :- gateway(n, v1), bridge(n, v2)",
                )
            ],
        ),
        case(
            "network-device-at-site",
            "Devices with their site/location (both methods succeed).",
            [
                "device.devname <-> node.nodename",
                "site.sitename <-> location.locname",
            ],
            [
                (
                    "ans(v1, v2) :- device(v1, mo, v2, ra, ve), "
                    "site(v2, re)",
                    "ans(v1, v2) :- node(v1, hw, ma, ca, te, v2), "
                    "location(v2, zo)",
                )
            ],
        ),
        case(
            "network-link-carrier",
            "Links with the provider of their circuit: a functional chain "
            "(both methods succeed).",
            [
                "link.bandwidth <-> connection2.capacity",
                "provider.provname <-> carrier.carrname",
            ],
            [
                (
                    "ans(v1, v2) :- link(li, v1, ci), circuit(ci, v2), "
                    "provider(v2)",
                    "ans(v1, v2) :- connection2(co, v1, ln), line2(ln, v2), "
                    "carrier(v2)",
                )
            ],
        ),
        case(
            "network-vlan-membership",
            "Interfaces in VLANs (many-many on both sides; both methods "
            "succeed).",
            [
                "interface.ifname <-> port2.portname",
                "vlan.vlanid <-> lan2.lanid",
            ],
            [
                (
                    "ans(v1, v2) :- interface(v1, sp, de, mf, cd), "
                    "invlan(v1, v2), vlan(v2)",
                    "ans(v1, v2) :- port2(v1, ra2, pf, no), "
                    "portlan(v1, v2), lan2(v2)",
                )
            ],
        ),
        case(
            "network-vlan-link",
            "VLANs and the links touching their interfaces: a composition "
            "of two many-many tables (semantic only).",
            [
                "vlan.vlanid <-> lan2.lanid",
                "link.bandwidth <-> connection2.capacity",
            ],
            [
                (
                    "ans(v1, v2) :- vlan(v1), invlan(ifc, v1), "
                    "linkends(li, ifc), link(li, v2, ci)",
                    "ans(v1, v2) :- lan2(v1), portlan(po, v1), "
                    "connports(co, po), connection2(co, v2, ln)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="Network",
        source_label="NetworkA",
        target_label="NetworkB",
        source_cm_label="networkA onto.",
        target_cm_label="networkB onto.",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Reconstructed I3CON-style network ontologies.",
    )
