"""The paper's worked examples as ready-to-run scenarios.

Each function builds the schemas, conceptual models, table semantics, and
correspondences of one worked example from the paper, so tests, example
scripts, and documentation all share a single faithful construction:

* :func:`bookstore_example` — Examples 1.1 / 3.2 / 3.3 / 3.4 (the
  author–bookstore composition through ``writes`` and ``soldAt``);
* :func:`employee_example` — Example 1.2 (merging overlapping ISA
  siblings encoded as separate tables);
* :func:`partof_example` — Example 1.3 (``chairOf`` vs ``deanOf``
  disambiguated by the **partOf** semantic type);
* :func:`project_example` — Example 3.1 (Case A.1's anchored functional
  tree over ``control`` and ``manage``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cm import CMGraph, ConceptualModel, SemanticType
from repro.correspondences import CorrespondenceSet
from repro.relational import RelationalSchema, Table
from repro.semantics import (
    SchemaSemantics,
    SemanticTree,
    design_schema,
)


@dataclass(frozen=True)
class ExampleScenario:
    """One ready-to-map scenario: two schemas + semantics + matches."""

    name: str
    source: SchemaSemantics
    target: SchemaSemantics
    correspondences: CorrespondenceSet
    description: str = ""


def bookstore_example() -> ExampleScenario:
    """Example 1.1: five source tables, one many-many target table.

    The expected best mapping is the paper's ``M5`` — person ⋈ writes ⋈
    soldAt ⋈ bookstore feeding ``hasBookSoldAt(pname, sid)``.
    """
    source_cm = ConceptualModel("books_source")
    source_cm.add_class("Person", attributes=["pname"], key=["pname"])
    source_cm.add_class("Book", attributes=["bid"], key=["bid"])
    source_cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
    source_cm.add_relationship("writes", "Person", "Book", "0..*", "1..*")
    source_cm.add_relationship("soldAt", "Book", "Bookstore", "0..*", "0..*")
    source = design_schema(source_cm, "source")

    target_cm = ConceptualModel("books_target")
    target_cm.add_class("Author", attributes=["aname"], key=["aname"])
    target_cm.add_class("Bookstore", attributes=["sid"], key=["sid"])
    target_cm.add_relationship(
        "hasBookSoldAt", "Author", "Bookstore", "0..*", "0..*"
    )
    target = design_schema(target_cm, "target")

    correspondences = CorrespondenceSet.parse(
        [
            "person.pname <-> hasbooksoldat.aname",
            "bookstore.sid <-> hasbooksoldat.sid",
        ]
    )
    return ExampleScenario(
        "bookstore",
        source.semantics,
        target.semantics,
        correspondences,
        description="Example 1.1 / 3.2: minimally lossy many-many composition",
    )


def employee_example(
    disjoint_subclasses: bool = False,
) -> ExampleScenario:
    """Example 1.2: ISA siblings as tables vs one merged employee table.

    ``disjoint_subclasses=True`` builds the variant where Engineer and
    Programmer are declared disjoint, which must *eliminate* the merging
    candidate (the tree would denote the empty class).
    """

    def employee_cm(name: str, key_attribute: str) -> ConceptualModel:
        cm = ConceptualModel(name)
        cm.add_class(
            "Employee", attributes=[key_attribute, "name"], key=[key_attribute]
        )
        cm.add_class("Engineer", attributes=["site"])
        cm.add_class("Programmer", attributes=["acnt"])
        cm.add_isa("Engineer", "Employee")
        cm.add_isa("Programmer", "Employee")
        cm.add_cover("Employee", ["Engineer", "Programmer"])
        if disjoint_subclasses:
            cm.add_disjointness(["Engineer", "Programmer"])
        return cm

    source_cm = employee_cm("employees_source", "ssn")
    source = design_schema(source_cm, "source", inherit_attributes=True)

    target_cm = employee_cm("employees_target", "eid")
    target_graph = CMGraph(target_cm)
    target_schema = RelationalSchema("target")
    target_schema.add_table(
        Table("employee", ["eid", "name", "site", "acnt"], ["eid"])
    )
    tree = SemanticTree.build(
        target_graph,
        "Employee",
        [
            ("Employee", "isa⁻", "Engineer"),
            ("Employee", "isa⁻", "Programmer"),
        ],
        {
            "eid": "Employee.eid",
            "name": "Employee.name",
            "site": "Engineer.site",
            "acnt": "Programmer.acnt",
        },
    )
    target = SchemaSemantics(target_schema, target_graph, {"employee": tree})

    correspondences = CorrespondenceSet.parse(
        [
            "programmer.name <-> employee.name",
            "programmer.acnt <-> employee.acnt",
            "engineer.name <-> employee.name",
            "engineer.site <-> employee.site",
        ]
    )
    return ExampleScenario(
        "employee",
        source.semantics,
        target,
        correspondences,
        description="Example 1.2: merging ISA siblings via the invisible "
        "superclass",
    )


def partof_example(target_is_partof: bool = True) -> ExampleScenario:
    """Example 1.3: chairOf (partOf) vs deanOf (plain) against foo.

    With ``target_is_partof`` (the paper's setting) only the ``chairOf``
    candidate should survive; with a plain target both are plausible.
    """
    source_cm = ConceptualModel("university_source")
    source_cm.add_class("Department", attributes=["dname"], key=["dname"])
    source_cm.add_class("Faculty", attributes=["fname"], key=["fname"])
    source_cm.add_relationship(
        "chairOf",
        "Faculty",
        "Department",
        "0..1",
        "0..1",
        semantic_type=SemanticType.PART_OF,
    )
    source_cm.add_relationship(
        "deanOf", "Faculty", "Department", "0..1", "0..1"
    )
    source = design_schema(source_cm, "source", merge_functional=False)

    target_cm = ConceptualModel("university_target")
    target_cm.add_class("Dept", attributes=["dn"], key=["dn"])
    target_cm.add_class("Prof", attributes=["pn"], key=["pn"])
    target_cm.add_relationship(
        "foo",
        "Prof",
        "Dept",
        "0..1",
        "0..1",
        semantic_type=(
            SemanticType.PART_OF if target_is_partof else SemanticType.PLAIN
        ),
    )
    target = design_schema(target_cm, "target", merge_functional=False)

    correspondences = CorrespondenceSet.parse(
        [
            "faculty.fname <-> prof.pn",
            "department.dname <-> dept.dn",
        ]
    )
    return ExampleScenario(
        "partof",
        source.semantics,
        target.semantics,
        correspondences,
        description="Example 1.3: semantic-type (partOf) disambiguation",
    )


def project_example() -> ExampleScenario:
    """Example 3.1: Case A.1's anchored functional tree.

    Source tables ``control(proj, dept)`` and ``manage(dept, mgr)``;
    target table ``proj(pnum, dept, emp)``.
    """
    source_cm = ConceptualModel("projects_source")
    source_cm.add_class("Project", attributes=["proj"], key=["proj"])
    source_cm.add_class("Department", attributes=["dept"], key=["dept"])
    source_cm.add_class("Employee", attributes=["mgr"], key=["mgr"])
    source_cm.add_relationship(
        "controlledBy", "Project", "Department", "1..1", "0..*"
    )
    source_cm.add_relationship(
        "hasManager", "Department", "Employee", "1..1", "0..*"
    )
    source = design_schema(source_cm, "source", merge_functional=False)

    target_cm = ConceptualModel("projects_target")
    target_cm.add_class("Proj", attributes=["pnum"], key=["pnum"])
    target_cm.add_class("Dept", attributes=["dept"], key=["dept"])
    target_cm.add_class("Emp", attributes=["emp"], key=["emp"])
    target_cm.add_relationship("inDept", "Proj", "Dept", "1..1", "0..*")
    target_cm.add_relationship("managedBy", "Proj", "Emp", "1..1", "0..*")
    target = design_schema(target_cm, "target")

    correspondences = CorrespondenceSet.parse(
        [
            "controlledby.proj <-> proj.pnum",
            "controlledby.dept <-> proj.dept",
            "hasmanager.mgr <-> proj.emp",
        ]
    )
    return ExampleScenario(
        "project",
        source.semantics,
        target.semantics,
        correspondences,
        description="Example 3.1: Case A.1 anchored functional tree",
    )
