"""The Hotel dataset pair (reconstruction of the paper's HotelA/HotelB).

The originals came from the I3CON ontology-alignment contest and were
forward-engineered into relational schemas, "demonstrating a certain
degree of modeling heterogeneity". The reconstruction follows suit: two
independently designed 7-class hotel ontologies (different vocabulary,
different keyless auxiliary classes), forward-engineered with er2rel into
6- and 5-table schemas, matching Table 1's characteristics.
"""

from __future__ import annotations

from repro.cm import ConceptualModel
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema


def _hotel_a() -> ConceptualModel:
    cm = ConceptualModel("hotelA_onto")
    cm.add_class("Hotel", attributes=["hid", "hname", "city"], key=["hid"])
    cm.add_class("Room", attributes=["rno", "beds"], key=["rno"])
    cm.add_class("Guest", attributes=["gid", "gname"], key=["gid"])
    cm.add_class("Amenity", attributes=["aname", "adesc"], key=["aname"])
    cm.add_class("RatePlan", attributes=["rpid", "price"], key=["rpid"])
    # Keyless auxiliary concept: present in the ontology, no table.
    cm.add_class("CancellationPolicy", attributes=["terms"])
    cm.add_relationship("roomOf", "Room", "Hotel", "1..1", "0..*")
    cm.add_relationship("mainAmenity", "Room", "Amenity", "0..1", "0..*")
    cm.add_relationship("rateFor", "RatePlan", "Room", "1..1", "0..*")
    cm.add_relationship(
        "governedBy", "RatePlan", "CancellationPolicy", "0..1", "0..*"
    )
    cm.add_reified_relationship(
        "Booking",
        roles={"bookedRoom": "Room", "bookedBy": "Guest"},
        attributes=["bdate"],
    )
    return cm


def _hotel_b() -> ConceptualModel:
    cm = ConceptualModel("hotelB_onto")
    cm.add_class("Property", attributes=["pid", "pname", "town"], key=["pid"])
    cm.add_class("Unit", attributes=["uno", "capacity"], key=["uno"])
    cm.add_class("Customer", attributes=["cid", "cname"], key=["cid"])
    cm.add_class("Tariff", attributes=["tid", "amount"], key=["tid"])
    # Keyless auxiliary concepts (no tables).
    cm.add_class("Feature", attributes=["fdesc"])
    cm.add_class("LoyaltyProgram", attributes=["tier"])
    cm.add_relationship("unitOf", "Unit", "Property", "1..1", "0..*")
    cm.add_relationship("offers", "Unit", "Feature", "0..*", "0..*")
    cm.add_relationship("tariffFor", "Tariff", "Unit", "1..1", "0..*")
    cm.add_relationship(
        "enrolledIn", "Customer", "LoyaltyProgram", "0..1", "0..*"
    )
    cm.add_reified_relationship(
        "Stay",
        roles={"stayUnit": "Unit", "stayBy": "Customer"},
        attributes=["sdate"],
    )
    return cm


@register("Hotel")
def build() -> DatasetPair:
    source = design_schema(_hotel_a(), "hotelA")
    target = design_schema(_hotel_b(), "hotelB")
    cases = (
        case(
            "hotel-room-of-hotel",
            "Rooms with their hotel's name: one FK hop on both sides "
            "(both methods should succeed).",
            [
                "room.rno <-> unit.uno",
                "hotel.hname <-> property.pname",
            ],
            [
                (
                    "ans(v1, v2) :- room(v1, b, a, h), hotel(h, v2, c)",
                    "ans(v1, v2) :- unit(v1, cap, p), property(p, v2, t)",
                )
            ],
        ),
        case(
            "hotel-guest-stays-at-hotel",
            "Guests paired with the hotels they booked: a lossy "
            "composition through the reified Booking/Stay (semantic only).",
            [
                "guest.gname <-> customer.cname",
                "hotel.hname <-> property.pname",
            ],
            [
                (
                    "ans(v1, v2) :- guest(g, v1), booking(r, g, d), "
                    "room(r, b, a, h), hotel(h, v2, c)",
                    "ans(v1, v2) :- customer(cu, v1), stay(u, cu, s), "
                    "unit(u, cap, p), property(p, v2, t)",
                )
            ],
        ),
        case(
            "hotel-rate-of-room",
            "Rate plans with their room: functional edge on both sides.",
            [
                "rateplan.price <-> tariff.amount",
                "room.rno <-> unit.uno",
            ],
            [
                (
                    "ans(v1, v2) :- rateplan(rp, v1, v2), room(v2, b, a, h)",
                    "ans(v1, v2) :- tariff(t, v1, v2), unit(v2, cap, p)",
                )
            ],
        ),
        case(
            "hotel-guest-rate",
            "Guests with the price of rooms they booked: composition "
            "reaching across Booking and rateFor (semantic only).",
            [
                "guest.gname <-> customer.cname",
                "rateplan.price <-> tariff.amount",
            ],
            [
                (
                    "ans(v1, v2) :- guest(g, v1), booking(r, g, d), "
                    "rateplan(rp, v2, r)",
                    "ans(v1, v2) :- customer(cu, v1), stay(u, cu, s), "
                    "tariff(t, v2, u)",
                )
            ],
        ),
        case(
            "hotel-trivial-hotel-property",
            "Hotels onto properties: a single-table mapping.",
            [
                "hotel.hname <-> property.pname",
                "hotel.city <-> property.town",
            ],
            [
                (
                    "ans(v1, v2) :- hotel(h, v1, v2)",
                    "ans(v1, v2) :- property(p, v1, v2)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="Hotel",
        source_label="HotelA",
        target_label="HotelB",
        source_cm_label="hotelA onto.",
        target_cm_label="hotelB onto.",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Reconstructed I3CON-style hotel ontologies.",
    )
