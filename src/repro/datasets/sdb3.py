"""The 3Sdb dataset pair (reconstruction of the paper's 3Sdb1/3Sdb2).

The originals are "two versions of a repository of data on biological
samples explored during gene expression analysis" (Jiang et al., RE'06).
The reconstruction models the same pipeline — samples, assays/tests run
on platforms/chips within experiments/studies, probes targeting genes,
and reified quantitative measurements — with the two versions differing
in vocabulary and in where the sample link lives (a many-many usage
table vs a merged foreign key).
"""

from __future__ import annotations

from repro.cm import ConceptualModel
from repro.datasets.registry import DatasetPair, case, register
from repro.semantics.er2rel import design_schema


def _sdb1_er() -> ConceptualModel:
    cm = ConceptualModel("3sdb1_er")
    cm.add_class("Sample", attributes=["sampleid", "tissue"], key=["sampleid"])
    cm.add_class("Experiment", attributes=["expid", "edate"], key=["expid"])
    cm.add_class("Assay", attributes=["assayid", "atype"], key=["assayid"])
    cm.add_class("Gene", attributes=["genename"], key=["genename"])
    cm.add_class("Probe", attributes=["probeid"], key=["probeid"])
    cm.add_class("Researcher", attributes=["resname"], key=["resname"])
    cm.add_class("Platform", attributes=["platname"], key=["platname"])
    # Keyless auxiliary concept.
    cm.add_class("Protocol", attributes=["steps"])

    cm.add_relationship("runOn", "Assay", "Platform", "1..1", "0..*")
    cm.add_relationship("partOfExp", "Assay", "Experiment", "1..1", "0..*")
    cm.add_relationship("targets", "Probe", "Gene", "1..1", "0..*")
    cm.add_relationship("conductedBy", "Experiment", "Researcher", "0..1", "0..*")
    cm.add_relationship("follows", "Experiment", "Protocol", "0..1", "0..*")
    # An assay can pool several samples: a genuine many-many.
    cm.add_relationship("usesSample", "Assay", "Sample", "1..*", "0..*")
    cm.add_reified_relationship(
        "Measurement",
        roles={"massay": "Assay", "mgene": "Gene"},
        attributes=["level"],
    )
    return cm


def _sdb2_er() -> ConceptualModel:
    cm = ConceptualModel("3sdb2_er")
    cm.add_class("BioSample", attributes=["bsid", "bstissue"], key=["bsid"])
    cm.add_class("Study", attributes=["studyid", "sdate"], key=["studyid"])
    cm.add_class("Test", attributes=["testid", "ttype"], key=["testid"])
    cm.add_class("Gene2", attributes=["gname2"], key=["gname2"])
    cm.add_class("Probe2", attributes=["pbid2"], key=["pbid2"])
    cm.add_class("Scientist", attributes=["sciname"], key=["sciname"])
    cm.add_class("Chip", attributes=["chipname"], key=["chipname"])
    # Keyless auxiliary concepts.
    cm.add_class("SOP", attributes=["sopsteps"])
    cm.add_class("Reagent", attributes=["lot"])
    cm.add_class("Facility", attributes=["room"])

    cm.add_relationship("onChip", "Test", "Chip", "1..1", "0..*")
    cm.add_relationship("inStudy", "Test", "Study", "1..1", "0..*")
    # This version records a single sample per test: a merged FK.
    cm.add_relationship("ofSample", "Test", "BioSample", "1..1", "0..*")
    cm.add_relationship("detects", "Probe2", "Gene2", "1..1", "0..*")
    cm.add_relationship("runBy2", "Study", "Scientist", "0..*", "0..*")
    cm.add_relationship("usesSOP", "Study", "SOP", "0..1", "0..*")
    cm.add_relationship("consumes", "Test", "Reagent", "0..*", "0..*")
    cm.add_relationship("hostedAt", "Study", "Facility", "0..1", "0..*")
    cm.add_reified_relationship(
        "Quantification",
        roles={"qtest": "Test", "qgene": "Gene2"},
        attributes=["value2"],
    )
    return cm


@register("3Sdb")
def build() -> DatasetPair:
    source = design_schema(_sdb1_er(), "sdb1")
    target = design_schema(_sdb2_er(), "sdb2")
    cases = (
        case(
            "sdb-assay-in-experiment",
            "Assays with the date of their experiment/study: a functional "
            "edge on both sides (both methods succeed).",
            [
                "assay.atype <-> test.ttype",
                "experiment.edate <-> study.sdate",
            ],
            [
                (
                    "ans(v1, v2) :- assay(a, v1, e, pl), experiment(e, v2, r)",
                    "ans(v1, v2) :- test(t, v1, st, bs, ch), study(st, v2)",
                )
            ],
        ),
        case(
            "sdb-measurement-levels",
            "Measured expression levels per gene: reified relationships "
            "with attributes on both sides (both methods succeed).",
            [
                "gene.genename <-> gene2.gname2",
                "measurement.level <-> quantification.value2",
            ],
            [
                (
                    "ans(v1, v2) :- measurement(a, v1, v2), gene(v1)",
                    "ans(v1, v2) :- quantification(t, v1, v2), gene2(v1)",
                )
            ],
        ),
        case(
            "sdb-sample-gene",
            "Tissue samples with the genes measured on them: the source "
            "crosses a many-many usage table into the reified measurement "
            "(semantic only).",
            [
                "sample.tissue <-> biosample.bstissue",
                "gene.genename <-> gene2.gname2",
            ],
            [
                (
                    "ans(v1, v2) :- sample(s, v1), usessample(a, s), "
                    "measurement(a, v2, le), gene(v2)",
                    "ans(v1, v2) :- biosample(b, v1), "
                    "test(t, ty, st, b, ch), quantification(t, v2, va), "
                    "gene2(v2)",
                )
            ],
        ),
    )
    return DatasetPair(
        name="3Sdb",
        source_label="3Sdb1",
        target_label="3Sdb2",
        source_cm_label="3Sdb1 ER",
        target_cm_label="3Sdb2 ER",
        source=source.semantics,
        target=target.semantics,
        cases=cases,
        notes="Reconstructed gene-expression sample repositories.",
    )
