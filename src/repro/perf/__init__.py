"""The shared-computation performance layer.

Cross-cutting caches and instrumentation for the discovery pipeline:

* :mod:`repro.perf.config` — a global on/off switch (``disabled()``
  restores the uncached seed behaviour for equivalence testing);
* :mod:`repro.perf.counters` — named counters and per-phase wall time,
  surfaced through ``DiscoveryResult.stats``;
* :mod:`repro.perf.index` — immutable per-``CMGraph`` indexes with
  lazily cached per-root shortest-path tables;
* :mod:`repro.perf.bench` — the JSON-emitting benchmark core behind
  ``python -m repro bench`` and ``benchmarks/benchmark_batch.py``.

See ``docs/performance.md`` for the architecture (cache keys, index
lifetimes, and invalidation by immutability).
"""

from repro.perf.config import (
    DEFAULT_CACHE_SIZES,
    cache_size,
    cache_size_overrides,
    disabled,
    distance_oracle,
    distance_oracle_enabled,
    enabled,
    set_enabled,
)
from repro.perf.counters import (
    PerfCounters,
    global_counters,
    phase,
    record,
    record_time,
    reset,
    scope,
)
from repro.perf.index import GraphIndex

__all__ = [
    "DEFAULT_CACHE_SIZES",
    "cache_size",
    "cache_size_overrides",
    "disabled",
    "distance_oracle",
    "distance_oracle_enabled",
    "enabled",
    "set_enabled",
    "PerfCounters",
    "global_counters",
    "phase",
    "record",
    "record_time",
    "reset",
    "scope",
    "GraphIndex",
]


def clear_caches() -> None:
    """Drop every process-wide cache of the perf layer.

    Benchmarks call this between cold runs; the per-object caches
    (reasoner memos, semantics-keyed translation memos) die with their
    owners and are additionally bypassed under :func:`disabled`. When a
    persistent cache directory is active
    (:mod:`repro.discovery.engine.persist`), its entries are cleared
    too — "clear the caches" must mean all tiers, or a stale disk
    artifact would silently resurrect what the caller just invalidated.
    """
    GraphIndex.clear_registry()
    from repro.discovery import compatibility, translate
    from repro.discovery.engine.cache import clear_stage_cache
    from repro.discovery.engine.persist import clear_active_store
    from repro.queries.rewrite import clear_rewrite_caches

    compatibility.clear_profile_cache()
    translate.clear_translation_cache()
    clear_stage_cache()
    clear_active_store()
    clear_rewrite_caches()
