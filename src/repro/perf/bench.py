"""The JSON-emitting discovery benchmark behind ``python -m repro bench``.

Three exhibits, written to ``BENCH_discovery.json``:

* **paper scenarios** — every benchmark case of every dataset pair runs
  through :func:`repro.discovery.discover_many`; the report records
  per-scenario wall time, candidate counts, and the cache counters from
  ``DiscoveryResult.stats``. Candidate counts are checked against
  :data:`repro.perf.invariants.EXPECTED_CANDIDATE_COUNTS` and any drift
  fails the run — the perf layer must change speed, never results.
* **chain-12 warm vs cold** — a 12-hop chain model (the worst case for
  the Steiner search) is discovered once with the perf layer disabled
  (the uncached seed path) and twice with it enabled; the second enabled
  run hits warm caches. The report records both times and the speedup.
* **mode equivalence** — the chain scenario's TGD output must be
  byte-identical across disabled, cold, and warm runs, and the paper
  scenarios must be byte-identical between ``workers=1`` and
  ``workers=N`` batches.

Benchmarks are repo-root artifacts: run from a checkout, the JSON lands
next to ``pyproject.toml`` unless ``--output`` says otherwise.
"""

from __future__ import annotations

import json
import time

import repro.perf as perf
from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.datasets.registry import load_all_datasets
from repro.discovery.batch import Scenario, discover_many
from repro.discovery.mapper import DiscoveryResult, SemanticMapper
from repro.perf.invariants import EXPECTED_CANDIDATE_COUNTS
from repro.semantics import design_schema

#: Chain length of the warm-vs-cold exhibit (matches the largest point
#: of ``benchmarks/benchmark_scalability.py``).
CHAIN_LENGTH = 12

#: Counters worth surfacing per scenario (the full vocabulary lives in
#: ``repro.perf.counters``; the rest stays available via ``--stats``).
_REPORTED_COUNTERS = (
    "dijkstra_sweeps",
    "dijkstra_cache_hits",
    "dijkstra_cache_misses",
    "lossy_paths_expanded",
    "lossy_paths_pruned",
    "tied_paths_dropped",
    "path_consistency_cache_hits",
    "tree_consistency_cache_hits",
    "profile_cache_hits",
    "translate_cache_hits",
    "translate_cache_misses",
)


def _chain_model(name: str, length: int) -> ConceptualModel:
    """``C0 →f0→ C1 → ... → Cn`` plus one pendant class per link."""
    cm = ConceptualModel(name)
    for index in range(length + 1):
        cm.add_class(
            f"C{index}",
            attributes=[f"k{index}", f"a{index}"],
            key=[f"k{index}"],
        )
        cm.add_class(f"P{index}", attributes=[f"pk{index}"], key=[f"pk{index}"])
        cm.add_relationship(
            f"pend{index}", f"C{index}", f"P{index}", "0..1", "0..*"
        )
    for index in range(length):
        cm.add_relationship(
            f"f{index}", f"C{index}", f"C{index + 1}", "1..1", "0..*"
        )
    return cm


def build_chain_scenario(length: int = CHAIN_LENGTH):
    """Fresh (source, target, correspondences) for one chain length."""
    source = design_schema(_chain_model("chain_src", length), "src")
    target = design_schema(_chain_model("chain_tgt", length), "tgt")
    correspondences = CorrespondenceSet.parse(
        [
            "c0.a0 <-> c0.a0",
            f"c{length}.a{length} <-> c{length}.a{length}",
        ]
    )
    return source.semantics, target.semantics, correspondences


def _tgds(result: DiscoveryResult) -> tuple[str, ...]:
    """Canonical text of a result — the byte-identity equivalence key."""
    return tuple(
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(result, start=1)
    )


def _timed_discover(source, target, correspondences):
    start = time.perf_counter()
    result = SemanticMapper(source, target, correspondences).discover()
    return time.perf_counter() - start, result


def _paper_scenarios() -> list[tuple[str, Scenario]]:
    rows = []
    for pair in load_all_datasets():
        for mapping_case in pair.cases:
            key = f"{pair.name}/{mapping_case.case_id}"
            rows.append(
                (
                    key,
                    Scenario.create(
                        key,
                        pair.source,
                        pair.target,
                        mapping_case.correspondences,
                    ),
                )
            )
    return rows


def run_paper_scenarios(workers: int) -> tuple[dict, list[str]]:
    """Serial batch + parallel batch over every paper case."""
    rows = _paper_scenarios()
    scenarios = [scenario for _, scenario in rows]

    perf.clear_caches()
    start = time.perf_counter()
    serial = discover_many(scenarios, workers=1)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = discover_many(scenarios, workers=workers)
    parallel_seconds = time.perf_counter() - start

    failures: list[str] = []
    scenario_rows = []
    for (key, _), (scenario_id, result) in zip(rows, serial.results):
        expected = EXPECTED_CANDIDATE_COUNTS.get(key)
        if expected is None:
            failures.append(f"{key}: no expected candidate count recorded")
        elif len(result) != expected:
            failures.append(
                f"{key}: candidate count drifted "
                f"(expected {expected}, got {len(result)})"
            )
        counters = {
            name: result.stats.get(name, 0) for name in _REPORTED_COUNTERS
        }
        scenario_rows.append(
            {
                "scenario": scenario_id,
                "wall_seconds": result.stats.get(
                    "time_discover_s", result.elapsed_seconds
                ),
                "candidates": len(result),
                "counters": counters,
            }
        )

    for (key, _), (_, serial_result), (_, parallel_result) in zip(
        rows, serial.results, parallel.results
    ):
        if _tgds(serial_result) != _tgds(parallel_result):
            failures.append(
                f"{key}: workers={workers} output differs from serial"
            )

    report = {
        "scenarios": scenario_rows,
        "serial_seconds": round(serial_seconds, 4),
        f"workers_{workers}_seconds": round(parallel_seconds, 4),
        "batch_counters": dict(serial.stats),
        "notes": serial.notes + parallel.notes,
    }
    return report, failures


def run_chain_benchmark() -> tuple[dict, list[str]]:
    """Chain-12 warm vs cold plus disabled/cold/warm equivalence."""
    failures: list[str] = []

    # The seed path: perf layer off, nothing cached anywhere.
    source, target, correspondences = build_chain_scenario()
    with perf.disabled():
        perf.clear_caches()
        disabled_seconds, disabled_result = _timed_discover(
            source, target, correspondences
        )

    # Enabled, cold: fresh semantics so no per-object memo survives.
    source, target, correspondences = build_chain_scenario()
    perf.clear_caches()
    cold_seconds, cold_result = _timed_discover(
        source, target, correspondences
    )
    # Enabled, warm: same objects again — every cache layer hits.
    warm_seconds, warm_result = _timed_discover(
        source, target, correspondences
    )

    speedup = disabled_seconds / warm_seconds if warm_seconds else float("inf")
    if speedup < 2.0:
        failures.append(
            f"chain-{CHAIN_LENGTH}: warm speedup {speedup:.2f}x < 2x "
            f"(cold {disabled_seconds:.3f}s, warm {warm_seconds:.3f}s)"
        )

    reference = _tgds(disabled_result)
    for label, result in (("cold", cold_result), ("warm", warm_result)):
        if _tgds(result) != reference:
            failures.append(
                f"chain-{CHAIN_LENGTH}: {label} output differs from the "
                "uncached seed path"
            )

    report = {
        "chain_length": CHAIN_LENGTH,
        "cold_seed_seconds": round(disabled_seconds, 4),
        "cold_indexed_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 6),
        "warm_speedup": round(speedup, 2),
        "candidates": len(warm_result),
        "counters": {
            name: warm_result.stats.get(name, 0)
            for name in _REPORTED_COUNTERS
        },
    }
    return report, failures


def run_benchmarks(workers: int = 2) -> tuple[dict, list[str]]:
    """Both exhibits; returns (report, failures)."""
    paper_report, paper_failures = run_paper_scenarios(workers)
    chain_report, chain_failures = run_chain_benchmark()
    report = {
        "benchmark": "discovery",
        "workers": workers,
        "paper_scenarios": paper_report,
        "chain": chain_report,
    }
    return report, paper_failures + chain_failures


def main(output: str = "BENCH_discovery.json", workers: int = 2) -> int:
    report, failures = run_benchmarks(workers=workers)
    report["failures"] = failures
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    chain = report["chain"]
    print(
        f"chain-{chain['chain_length']}: "
        f"cold {chain['cold_seed_seconds']}s, "
        f"warm {chain['warm_seconds']}s "
        f"({chain['warm_speedup']}x)"
    )
    print(
        f"paper scenarios: {len(report['paper_scenarios']['scenarios'])} "
        f"cases, serial {report['paper_scenarios']['serial_seconds']}s"
    )
    print(f"report written to {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
