"""The JSON-emitting discovery benchmark behind ``python -m repro bench``.

Three exhibits, written to ``BENCH_discovery.json``:

* **paper scenarios** — every benchmark case of every dataset pair runs
  through :func:`repro.discovery.discover_many`; the report records
  per-scenario wall time, candidate counts, and the cache counters from
  ``DiscoveryResult.stats``. Candidate counts are checked against
  :data:`repro.perf.invariants.EXPECTED_CANDIDATE_COUNTS` and any drift
  fails the run — the perf layer must change speed, never results.
* **chain-12 warm vs cold** — a 12-hop chain model (the worst case for
  the Steiner search) is discovered once with the perf layer disabled
  (the uncached seed path) and twice with it enabled; the second enabled
  run hits warm caches. The report records both times and the speedup.
* **mode equivalence** — the chain scenario's TGD output must be
  byte-identical across disabled, cold, and warm runs, and the paper
  scenarios must be byte-identical between ``workers=1`` and
  ``workers=N`` batches.
* **trace** — the chain scenario runs once more under an explain-mode
  :class:`repro.trace.Tracer`; the report gains accumulated per-phase
  wall times (``trace.phase_seconds``) plus a disabled-tracer overhead
  estimate: the measured cost of one no-op span times the traced run's
  span count, as a fraction of the untraced wall time. The run fails if
  that estimate reaches 5% — the tracing instrumentation must stay free
  when off. The untraced denominator runs with ``stage_cache_size=0``:
  a warm stage-cache full hit skips the pipeline entirely, and dividing
  span cost by that near-zero wall time would report a meaningless
  overhead figure.
* **incremental** — a multi-segment scenario is discovered once, one
  correspondence is edited, and :func:`repro.discovery.rediscover` runs
  the edited scenario against the warm stage cache. The report records
  cold-vs-rediscover times, the per-target unit replays, and the reuse
  report; the run fails unless rediscovery is at least
  :data:`INCREMENTAL_SPEEDUP_FLOOR` times faster than cold with
  byte-identical TGDs. ``benchmarks/benchmark_incremental.py`` publishes
  this exhibit on its own as ``BENCH_incremental.json``.

Benchmarks are repo-root artifacts: run from a checkout, the JSON lands
next to ``pyproject.toml`` unless ``--output`` says otherwise.
"""

from __future__ import annotations

import json
import time

import repro.perf as perf
from repro.cm import ConceptualModel
from repro.correspondences import CorrespondenceSet
from repro.datasets.registry import load_all_datasets
from repro.discovery.batch import Scenario, discover_many
from repro.discovery.incremental import rediscover
from repro.discovery.mapper import DiscoveryResult, SemanticMapper
from repro.discovery.options import DiscoveryOptions
from repro.perf.invariants import EXPECTED_CANDIDATE_COUNTS
from repro.semantics import design_schema
from repro.trace import Tracer, phase_seconds

#: The trace-overhead smoke check's ceiling: with tracing disabled, the
#: estimated per-span cost must stay below this fraction of wall time.
TRACE_OVERHEAD_LIMIT = 0.05

#: Chain length of the warm-vs-cold exhibit (matches the largest point
#: of ``benchmarks/benchmark_scalability.py``).
CHAIN_LENGTH = 12

#: Shape of the incremental exhibit: disjoint chain segments, so a
#: one-correspondence edit invalidates exactly one segment's per-target
#: search unit and every other segment replays from cache.
INCREMENTAL_SEGMENTS = 4
#: Chain length 14 (up from 10): the distance oracle made the search
#: part of cold runs much cheaper, which narrowed the
#: rediscover-vs-cold ratio on the old shape. Longer segments put the
#: weight back on per-segment translation — exactly the work the
#: per-target unit cache lets rediscovery skip.
INCREMENTAL_CHAIN_LENGTH = 14

#: The incremental gate: rediscovery after a single-correspondence edit
#: must beat a cold run of the edited scenario by at least this factor.
INCREMENTAL_SPEEDUP_FLOOR = 2.0

#: Cold/rediscover cycle repetitions; the report keeps per-leg minima.
INCREMENTAL_RUNS = 3

#: Counters worth surfacing per scenario (the full vocabulary lives in
#: ``repro.perf.counters``; the rest stays available via ``--stats``).
_REPORTED_COUNTERS = (
    "dijkstra_sweeps",
    "dijkstra_cache_hits",
    "dijkstra_cache_misses",
    "lossy_paths_expanded",
    "lossy_paths_pruned",
    "tied_paths_dropped",
    "path_consistency_cache_hits",
    "tree_consistency_cache_hits",
    "profile_cache_hits",
    "translate_cache_hits",
    "translate_cache_misses",
    "astar_expansions",
    "bound_prunes",
    "oracle_sweeps",
    "oracle_cache_hits",
    "oracle_cache_misses",
    "lossy_prefix_skips",
    "required_subtree_prunes",
    "subtree_cache_hits",
    "subtree_cache_misses",
)


def _chain_model(name: str, length: int) -> ConceptualModel:
    """``C0 →f0→ C1 → ... → Cn`` plus one pendant class per link."""
    cm = ConceptualModel(name)
    for index in range(length + 1):
        cm.add_class(
            f"C{index}",
            attributes=[f"k{index}", f"a{index}"],
            key=[f"k{index}"],
        )
        cm.add_class(f"P{index}", attributes=[f"pk{index}"], key=[f"pk{index}"])
        cm.add_relationship(
            f"pend{index}", f"C{index}", f"P{index}", "0..1", "0..*"
        )
    for index in range(length):
        cm.add_relationship(
            f"f{index}", f"C{index}", f"C{index + 1}", "1..1", "0..*"
        )
    return cm


def build_chain_scenario(length: int = CHAIN_LENGTH):
    """Fresh (source, target, correspondences) for one chain length."""
    source = design_schema(_chain_model("chain_src", length), "src")
    target = design_schema(_chain_model("chain_tgt", length), "tgt")
    correspondences = CorrespondenceSet.parse(
        [
            "c0.a0 <-> c0.a0",
            f"c{length}.a{length} <-> c{length}.a{length}",
        ]
    )
    return source.semantics, target.semantics, correspondences


def _tgds(result: DiscoveryResult) -> tuple[str, ...]:
    """Canonical text of a result — the byte-identity equivalence key."""
    return tuple(
        candidate.to_tgd(f"M{index}")
        for index, candidate in enumerate(result, start=1)
    )


def _timed_discover(source, target, correspondences, options=None):
    start = time.perf_counter()
    mapper = (
        SemanticMapper(source, target, correspondences, options=options)
        if options is not None
        else SemanticMapper(source, target, correspondences)
    )
    result = mapper.discover()
    return time.perf_counter() - start, result


def _segmented_model(
    name: str, segments: int, length: int, pendants: int = 2
) -> ConceptualModel:
    """``segments`` disjoint chains, each chain node carrying
    ``pendants`` pendant classes (dead-end branches that widen the
    Steiner search without adding candidates)."""
    cm = ConceptualModel(name)
    for seg in range(segments):
        for index in range(length + 1):
            cm.add_class(
                f"S{seg}C{index}",
                attributes=[f"k{index}", f"a{index}", f"b{index}"],
                key=[f"k{index}"],
            )
            for p in range(pendants):
                cm.add_class(
                    f"S{seg}P{index}x{p}",
                    attributes=[f"pk{index}"],
                    key=[f"pk{index}"],
                )
                cm.add_relationship(
                    f"s{seg}pend{index}x{p}",
                    f"S{seg}C{index}",
                    f"S{seg}P{index}x{p}",
                    "0..1",
                    "0..*",
                )
        for index in range(length):
            cm.add_relationship(
                f"s{seg}f{index}",
                f"S{seg}C{index}",
                f"S{seg}C{index + 1}",
                "1..1",
                "0..*",
            )
    return cm


def build_incremental_scenario(
    segments: int = INCREMENTAL_SEGMENTS,
    length: int = INCREMENTAL_CHAIN_LENGTH,
    edited: bool = False,
):
    """Fresh (source, target, correspondences) for the incremental exhibit.

    Each disjoint segment carries two endpoint correspondences; with
    ``edited=True``, segment 0's first correspondence moves from ``a0``
    to ``b0`` — the single-correspondence edit. Segments 1..n-1 are
    untouched, so their target CSGs and relevant correspondences (the
    per-target unit cache key) are identical across the two variants.
    """
    source = design_schema(
        _segmented_model("segmented_src", segments, length), "src"
    )
    target = design_schema(
        _segmented_model("segmented_tgt", segments, length), "tgt"
    )
    lines = []
    for seg in range(segments):
        first = "b0" if edited and seg == 0 else "a0"
        lines.append(f"s{seg}c0.{first} <-> s{seg}c0.{first}")
        lines.append(
            f"s{seg}c{length}.a{length} <-> s{seg}c{length}.a{length}"
        )
    correspondences = CorrespondenceSet.parse(lines)
    return source.semantics, target.semantics, correspondences


def _paper_scenarios() -> list[tuple[str, Scenario]]:
    rows = []
    for pair in load_all_datasets():
        for mapping_case in pair.cases:
            key = f"{pair.name}/{mapping_case.case_id}"
            rows.append(
                (
                    key,
                    Scenario.create(
                        key,
                        pair.source,
                        pair.target,
                        mapping_case.correspondences,
                    ),
                )
            )
    return rows


#: Cold serial repetitions in :func:`run_paper_scenarios`. The batch is
#: sub-second, so single-shot wall time is dominated by machine noise;
#: the report keeps the minimum (the least-interrupted run) plus the
#: full list for inspection.
SERIAL_RUNS = 3


def run_paper_scenarios(workers: int) -> tuple[dict, list[str]]:
    """Serial batch + parallel batch over every paper case."""
    rows = _paper_scenarios()
    scenarios = [scenario for _, scenario in rows]

    serial_runs = []
    for _ in range(SERIAL_RUNS):
        perf.clear_caches()
        start = time.perf_counter()
        serial = discover_many(scenarios, workers=1)
        serial_runs.append(time.perf_counter() - start)
    serial_seconds = min(serial_runs)

    start = time.perf_counter()
    parallel = discover_many(scenarios, workers=workers)
    parallel_seconds = time.perf_counter() - start

    failures: list[str] = []
    scenario_rows = []
    for (key, _), (scenario_id, result) in zip(rows, serial.results):
        expected = EXPECTED_CANDIDATE_COUNTS.get(key)
        if expected is None:
            failures.append(f"{key}: no expected candidate count recorded")
        elif len(result) != expected:
            failures.append(
                f"{key}: candidate count drifted "
                f"(expected {expected}, got {len(result)})"
            )
        counters = {
            name: result.stats.get(name, 0) for name in _REPORTED_COUNTERS
        }
        scenario_rows.append(
            {
                "scenario": scenario_id,
                "wall_seconds": result.stats.get(
                    "time_discover_s", result.elapsed_seconds
                ),
                "candidates": len(result),
                "counters": counters,
            }
        )

    for (key, _), (_, serial_result), (_, parallel_result) in zip(
        rows, serial.results, parallel.results
    ):
        if _tgds(serial_result) != _tgds(parallel_result):
            failures.append(
                f"{key}: workers={workers} output differs from serial"
            )

    report = {
        "scenarios": scenario_rows,
        "serial_seconds": round(serial_seconds, 4),
        "serial_runs": [round(value, 4) for value in serial_runs],
        f"workers_{workers}_seconds": round(parallel_seconds, 4),
        "batch_counters": dict(serial.stats),
        "notes": serial.notes + parallel.notes,
    }
    return report, failures


def run_chain_benchmark() -> tuple[dict, list[str]]:
    """Chain-12 warm vs cold plus disabled/cold/warm equivalence."""
    failures: list[str] = []

    # The seed path: perf layer off, nothing cached anywhere.
    source, target, correspondences = build_chain_scenario()
    with perf.disabled():
        perf.clear_caches()
        disabled_seconds, disabled_result = _timed_discover(
            source, target, correspondences
        )

    # Enabled, cold: fresh semantics so no per-object memo survives.
    source, target, correspondences = build_chain_scenario()
    perf.clear_caches()
    cold_seconds, cold_result = _timed_discover(
        source, target, correspondences
    )
    # Enabled, warm: same objects again — every cache layer hits.
    warm_seconds, warm_result = _timed_discover(
        source, target, correspondences
    )

    speedup = disabled_seconds / warm_seconds if warm_seconds else float("inf")
    if speedup < 2.0:
        failures.append(
            f"chain-{CHAIN_LENGTH}: warm speedup {speedup:.2f}x < 2x "
            f"(cold {disabled_seconds:.3f}s, warm {warm_seconds:.3f}s)"
        )

    reference = _tgds(disabled_result)
    for label, result in (("cold", cold_result), ("warm", warm_result)):
        if _tgds(result) != reference:
            failures.append(
                f"chain-{CHAIN_LENGTH}: {label} output differs from the "
                "uncached seed path"
            )

    report = {
        "chain_length": CHAIN_LENGTH,
        "cold_seed_seconds": round(disabled_seconds, 4),
        "cold_indexed_seconds": round(cold_seconds, 4),
        "warm_seconds": round(warm_seconds, 6),
        "warm_speedup": round(speedup, 2),
        "candidates": len(warm_result),
        # The cold run is where the search counters carry information —
        # the warm run mostly short-circuits through the caches, so its
        # counters used to make the exhibit read as if the oracle never
        # fired. Warm cache hits are still reported, separately.
        "counters": {
            name: cold_result.stats.get(name, 0)
            for name in _REPORTED_COUNTERS
        },
        "warm_counters": {
            name: warm_result.stats.get(name, 0)
            for name in _REPORTED_COUNTERS
        },
    }
    return report, failures


def _noop_span_cost_seconds(iterations: int = 100_000) -> float:
    """The measured per-call cost of a disabled tracer's span."""
    from repro.trace.tracer import NOOP

    start = time.perf_counter()
    for _ in range(iterations):
        with NOOP.span("bench"):
            pass
    return (time.perf_counter() - start) / iterations


def run_trace_benchmark() -> tuple[dict, list[str]]:
    """Per-phase wall times from a traced run + the overhead estimate.

    The overhead check is an *estimate* on purpose: the span count of a
    traced run times the measured cost of one no-op span, divided by the
    untraced wall time, is stable under machine noise in a way that two
    raw wall-clock measurements of the same few-millisecond run are not.
    """
    failures: list[str] = []
    source, target, correspondences = build_chain_scenario()
    perf.clear_caches()
    # Warm the memo caches first so the untraced measurement (the
    # overhead denominator) reflects the steady-state serving path —
    # but keep the stage cache out of it (stage_cache_size=0): a stage
    # full hit skips the pipeline the spans instrument, which would
    # shrink the denominator to microseconds and report nonsense.
    no_stage_cache = DiscoveryOptions(stage_cache_size=0)
    SemanticMapper(
        source, target, correspondences, options=no_stage_cache
    ).discover()
    untraced_seconds, _ = _timed_discover(
        source, target, correspondences, options=no_stage_cache
    )

    tracer = Tracer(explain=True)
    start = time.perf_counter()
    result = SemanticMapper(
        source, target, correspondences
    ).discover(tracer=tracer)
    traced_seconds = time.perf_counter() - start

    noop_cost = _noop_span_cost_seconds()
    estimated = (
        tracer.span_count * noop_cost / untraced_seconds
        if untraced_seconds
        else 0.0
    )
    if estimated >= TRACE_OVERHEAD_LIMIT:
        failures.append(
            f"trace: estimated disabled-tracer overhead "
            f"{estimated:.2%} >= {TRACE_OVERHEAD_LIMIT:.0%} "
            f"({tracer.span_count} span sites x {noop_cost * 1e9:.0f} ns "
            f"over {untraced_seconds:.4f}s)"
        )
    report = {
        "phase_seconds": {
            name: round(value, 6)
            for name, value in phase_seconds(result.trace).items()
        },
        "span_count": tracer.span_count,
        "prune_events": len(tracer.prunes),
        "prune_rules": tracer.prune_rules(),
        "untraced_seconds": round(untraced_seconds, 6),
        "traced_seconds": round(traced_seconds, 6),
        "noop_span_cost_seconds": round(noop_cost, 9),
        "estimated_overhead_fraction": round(estimated, 6),
        "overhead_limit": TRACE_OVERHEAD_LIMIT,
    }
    return report, failures


def run_incremental_benchmark(
    segments: int = INCREMENTAL_SEGMENTS,
    length: int = INCREMENTAL_CHAIN_LENGTH,
) -> tuple[dict, list[str]]:
    """Cold vs rediscover-after-edit on the multi-segment scenario.

    Three measurements, each from fresh schema objects so per-object
    memos never blur the comparison:

    1. cold run of the *edited* scenario (empty caches) — the baseline;
    2. base run of the unedited scenario — populates the stage cache;
    3. :func:`repro.discovery.rediscover` of the edited scenario against
       that warm cache — must replay every unedited segment's per-target
       unit, produce TGDs byte-identical to (1), and beat (1) by
       :data:`INCREMENTAL_SPEEDUP_FLOOR`.

    The whole cycle repeats :data:`INCREMENTAL_RUNS` times and the
    reported cold/rediscover figures are the per-leg minima (both legs
    finish in well under a second, where a single shot is mostly
    machine noise); the equivalence and unit-replay checks run on every
    cycle.
    """
    failures: list[str] = []

    cold_runs: list[float] = []
    warm_runs: list[float] = []
    for _ in range(INCREMENTAL_RUNS):
        perf.clear_caches()
        cold_seconds, cold_result = _timed_discover(
            *build_incremental_scenario(segments, length, edited=True)
        )
        cold_runs.append(cold_seconds)

        perf.clear_caches()
        source, target, correspondences = build_incremental_scenario(
            segments, length
        )
        base_scenario = Scenario.create(
            "incremental/base", source, target, correspondences
        )
        base_result = base_scenario.run()

        e_source, e_target, e_corr = build_incremental_scenario(
            segments, length, edited=True
        )
        edited_scenario = Scenario.create(
            "incremental/edited", e_source, e_target, e_corr
        )
        start = time.perf_counter()
        outcome = rediscover(base_result, edited_scenario)
        warm_runs.append(time.perf_counter() - start)

        if _tgds(outcome.result) != _tgds(cold_result):
            failures.append(
                "incremental: rediscover output differs from the cold run "
                "of the edited scenario"
            )
            break
        if outcome.unit_cache_hits < segments - 1:
            failures.append(
                f"incremental: expected >= {segments - 1} per-target unit "
                f"replays, got {outcome.unit_cache_hits}"
            )
            break

    cold_seconds = min(cold_runs)
    warm_seconds = min(warm_runs)
    speedup = cold_seconds / warm_seconds if warm_seconds else float("inf")
    if not failures and speedup < INCREMENTAL_SPEEDUP_FLOOR:
        failures.append(
            f"incremental: rediscover speedup {speedup:.2f}x < "
            f"{INCREMENTAL_SPEEDUP_FLOOR:.0f}x "
            f"(cold {cold_seconds:.3f}s, warm {warm_seconds:.3f}s)"
        )

    report = {
        "segments": segments,
        "chain_length": length,
        "cold_seconds": round(cold_seconds, 6),
        "cold_runs": [round(value, 6) for value in cold_runs],
        "rediscover_seconds": round(warm_seconds, 6),
        "rediscover_runs": [round(value, 6) for value in warm_runs],
        "speedup": round(speedup, 2),
        "speedup_floor": INCREMENTAL_SPEEDUP_FLOOR,
        "candidates": len(cold_result),
        "base_candidates": len(base_result),
        "reuse": outcome.report(),
    }
    return report, failures


def run_benchmarks(workers: int = 2) -> tuple[dict, list[str]]:
    """All exhibits; returns (report, failures)."""
    paper_report, paper_failures = run_paper_scenarios(workers)
    chain_report, chain_failures = run_chain_benchmark()
    trace_report, trace_failures = run_trace_benchmark()
    incremental_report, incremental_failures = run_incremental_benchmark()
    report = {
        "benchmark": "discovery",
        "workers": workers,
        "paper_scenarios": paper_report,
        "chain": chain_report,
        "trace": trace_report,
        "incremental": incremental_report,
    }
    return report, (
        paper_failures
        + chain_failures
        + trace_failures
        + incremental_failures
    )


def main(
    output: str = "BENCH_discovery.json",
    workers: int = 2,
    trace: bool = False,
) -> int:
    report, failures = run_benchmarks(workers=workers)
    report["failures"] = failures
    with open(output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    chain = report["chain"]
    print(
        f"chain-{chain['chain_length']}: "
        f"cold {chain['cold_seed_seconds']}s, "
        f"warm {chain['warm_seconds']}s "
        f"({chain['warm_speedup']}x)"
    )
    print(
        f"paper scenarios: {len(report['paper_scenarios']['scenarios'])} "
        f"cases, serial {report['paper_scenarios']['serial_seconds']}s"
    )
    incremental = report["incremental"]
    print(
        f"incremental: cold {incremental['cold_seconds']}s, "
        f"rediscover {incremental['rediscover_seconds']}s "
        f"({incremental['speedup']}x, "
        f"{incremental['reuse']['unit_cache_hits']} unit replays)"
    )
    trace_report = report["trace"]
    print(
        f"trace overhead (disabled): "
        f"~{trace_report['estimated_overhead_fraction']:.2%} "
        f"of {trace_report['untraced_seconds']}s "
        f"({trace_report['span_count']} spans)"
    )
    if trace:
        print("per-phase wall time (traced chain run):")
        for name, value in trace_report["phase_seconds"].items():
            print(f"  {name:<16} {value * 1000:9.2f} ms")
        print(
            f"prune events: {trace_report['prune_events']} "
            f"{trace_report['prune_rules']}"
        )
    print(f"report written to {output}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
