"""Immutable per-``CMGraph`` indexes for the discovery search.

A :class:`GraphIndex` snapshots everything the tree/path search reads
from a CM graph — functional adjacency, full (non-attribute) adjacency,
the class-node list, and the reified-node set — into plain dicts and
tuples, and lazily caches per-root shortest-path tables keyed by
``(root, CostModel)``.

Correctness rests on *invalidation by immutability*: a ``CMGraph`` is
fully built in its constructor and never mutated afterwards, so an index
taken at any point stays valid for the graph's lifetime. Indexes are
shared through a weak-keyed registry (the index holds no reference back
to the graph, so entries die exactly when their graph does). When the
perf layer is disabled (:mod:`repro.perf.config`) a fresh, unshared
index is built per request so no state survives between calls.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Callable, Hashable

from repro.perf import config, counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cm.graph import CMEdge, CMGraph


class GraphIndex:
    """Precomputed adjacency and cached search tables for one CM graph."""

    __slots__ = (
        "class_nodes",
        "reified_nodes",
        "adjacency",
        "functional_adjacency",
        "_shortest",
        "__weakref__",
    )

    def __init__(self, graph: "CMGraph") -> None:
        self.class_nodes: tuple[str, ...] = graph.class_nodes()
        self.reified_nodes: frozenset[str] = frozenset(
            node for node in self.class_nodes if graph.is_reified(node)
        )
        self.adjacency: dict[str, tuple["CMEdge", ...]] = {
            node: graph.edges_from(node) for node in self.class_nodes
        }
        self.functional_adjacency: dict[str, tuple["CMEdge", ...]] = {
            node: tuple(
                edge for edge in self.adjacency[node] if edge.is_functional
            )
            for node in self.class_nodes
        }
        # (root, CostModel) → node → (cost, tied shortest paths); tables
        # are computed by the caller-provided function on first request.
        self._shortest: dict[tuple[str, Hashable], object] = {}

    _REGISTRY: "weakref.WeakKeyDictionary[CMGraph, GraphIndex]" = (
        weakref.WeakKeyDictionary()
    )

    @classmethod
    def of(cls, graph: "CMGraph") -> "GraphIndex":
        """The shared index of ``graph`` (fresh/unshared when disabled)."""
        if not config.enabled():
            return cls(graph)
        index = cls._REGISTRY.get(graph)
        if index is None:
            index = cls(graph)
            cls._REGISTRY[graph] = index
        return index

    @classmethod
    def clear_registry(cls) -> None:
        """Drop every shared index (benchmarks use this to force cold runs)."""
        cls._REGISTRY.clear()

    def out_edges(self, node: str) -> tuple["CMEdge", ...]:
        """Non-attribute outgoing edges (precomputed, already sorted)."""
        return self.adjacency[node]

    def shortest_paths(
        self,
        root: str,
        cost_model: Hashable,
        compute: Callable[[], object],
    ):
        """The cached Dijkstra table for ``(root, cost_model)``.

        ``compute`` runs on a miss; the returned table must be treated as
        read-only by callers (it is shared across hits).
        """
        key = (root, cost_model)
        table = self._shortest.get(key)
        if table is not None:
            counters.record("dijkstra_cache_hits")
            return table
        counters.record("dijkstra_cache_misses")
        counters.record("dijkstra_sweeps")
        table = compute()
        if config.enabled():
            self._shortest[key] = table
        return table

    def __repr__(self) -> str:
        return (
            f"GraphIndex(classes={len(self.class_nodes)}, "
            f"cached_roots={len(self._shortest)})"
        )
