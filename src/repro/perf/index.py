"""Immutable per-``CMGraph`` indexes for the discovery search.

A :class:`GraphIndex` snapshots everything the tree/path search reads
from a CM graph — functional adjacency, full (non-attribute) adjacency,
the class-node list, and the reified-node set — into plain dicts and
tuples, and lazily caches per-root shortest-path tables keyed by
``(root, CostModel)``.

Correctness rests on *invalidation by immutability*: a ``CMGraph`` is
fully built in its constructor and never mutated afterwards, so an index
taken at any point stays valid for the graph's lifetime. Indexes are
shared through a weak-keyed registry (the index holds no reference back
to the graph, so entries die exactly when their graph does). When the
perf layer is disabled (:mod:`repro.perf.config`) a fresh, unshared
index is built per request so no state survives between calls.
"""

from __future__ import annotations

import weakref
from typing import TYPE_CHECKING, Callable, Hashable

from repro.perf import config, counters

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cm.graph import CMEdge, CMGraph


class GraphIndex:
    """Precomputed adjacency and cached search tables for one CM graph."""

    __slots__ = (
        "class_nodes",
        "reified_nodes",
        "adjacency",
        "functional_adjacency",
        "_shortest",
        "_reverse",
        "_reverse_functional",
        "_oracle",
        "__weakref__",
    )

    def __init__(self, graph: "CMGraph") -> None:
        self.class_nodes: tuple[str, ...] = graph.class_nodes()
        self.reified_nodes: frozenset[str] = frozenset(
            node for node in self.class_nodes if graph.is_reified(node)
        )
        self.adjacency: dict[str, tuple["CMEdge", ...]] = {
            node: graph.edges_from(node) for node in self.class_nodes
        }
        self.functional_adjacency: dict[str, tuple["CMEdge", ...]] = {
            node: tuple(
                edge for edge in self.adjacency[node] if edge.is_functional
            )
            for node in self.class_nodes
        }
        # (root, CostModel) → node → (cost, tied shortest paths); tables
        # are computed by the caller-provided function on first request.
        self._shortest: dict[tuple[Hashable, Hashable], object] = {}
        # Lazily-built reverse adjacencies (distance-oracle support).
        self._reverse: dict[str, tuple["CMEdge", ...]] | None = None
        self._reverse_functional: dict[str, tuple["CMEdge", ...]] | None = None
        # Distance-oracle tables, namespaced by kind:
        # ("bd", target, CostModel)    → node → min functional cost node→target
        # ("lossy", end, CostModel)    → lower-bound tables for the
        #                                branch-and-bound lossy search.
        # Invalidation rides the same rules as ``_shortest``: the graph is
        # immutable, the index dies with it, and :meth:`clear_registry`
        # (called by ``perf.clear_caches``) drops every shared index.
        self._oracle: dict[tuple, object] = {}

    _REGISTRY: "weakref.WeakKeyDictionary[CMGraph, GraphIndex]" = (
        weakref.WeakKeyDictionary()
    )

    @classmethod
    def of(cls, graph: "CMGraph") -> "GraphIndex":
        """The shared index of ``graph`` (fresh/unshared when disabled)."""
        if not config.enabled():
            return cls(graph)
        index = cls._REGISTRY.get(graph)
        if index is None:
            index = cls(graph)
            cls._REGISTRY[graph] = index
        return index

    @classmethod
    def clear_registry(cls) -> None:
        """Drop every shared index (benchmarks use this to force cold runs)."""
        cls._REGISTRY.clear()

    def out_edges(self, node: str) -> tuple["CMEdge", ...]:
        """Non-attribute outgoing edges (precomputed, already sorted)."""
        return self.adjacency[node]

    def reverse_edges(self) -> dict[str, tuple["CMEdge", ...]]:
        """``node → incoming edges`` over the full non-attribute adjacency.

        Built on first request; the edges kept are the *forward* edges
        (so their cost under a :class:`CostModel` is the cost of
        traversing them forward), grouped by their target node.
        """
        reverse = self._reverse
        if reverse is None:
            grouped: dict[str, list["CMEdge"]] = {}
            for edges in self.adjacency.values():
                for edge in edges:
                    grouped.setdefault(edge.target, []).append(edge)
            reverse = {node: tuple(edges) for node, edges in grouped.items()}
            self._reverse = reverse
        return reverse

    def reverse_functional_edges(self) -> dict[str, tuple["CMEdge", ...]]:
        """``node → incoming functional edges`` (see :meth:`reverse_edges`)."""
        reverse = self._reverse_functional
        if reverse is None:
            grouped: dict[str, list["CMEdge"]] = {}
            for edges in self.functional_adjacency.values():
                for edge in edges:
                    grouped.setdefault(edge.target, []).append(edge)
            reverse = {node: tuple(edges) for node, edges in grouped.items()}
            self._reverse_functional = reverse
        return reverse

    def oracle_table(
        self,
        key: tuple,
        compute: Callable[[], object],
    ):
        """A cached distance-oracle table (backward distances, lossy bounds).

        ``key`` is namespaced by the caller (e.g. ``("bd", target,
        cost_model)``); ``compute`` runs on a miss. Tables are only
        retained while the perf layer is enabled — mirroring
        :meth:`shortest_paths` — and die with the index, so
        :meth:`clear_registry` invalidates them together with every
        other per-graph artifact.
        """
        table = self._oracle.get(key)
        if table is not None:
            counters.record("oracle_cache_hits")
            return table
        counters.record("oracle_cache_misses")
        counters.record("oracle_sweeps")
        table = compute()
        if config.enabled():
            self._oracle[key] = table
        return table

    def shortest_paths(
        self,
        root: Hashable,
        cost_model: Hashable,
        compute: Callable[[], object],
    ):
        """The cached Dijkstra table for ``(root, cost_model)``.

        ``compute`` runs on a miss; the returned table must be treated as
        read-only by callers (it is shared across hits). ``root`` is a
        plain node name for full sweeps; the oracle-guided targeted
        search keys its (target-set-dependent) tables as
        ``(root, frozenset(targets))`` — the two key shapes never
        collide.
        """
        key = (root, cost_model)
        table = self._shortest.get(key)
        if table is not None:
            counters.record("dijkstra_cache_hits")
            return table
        counters.record("dijkstra_cache_misses")
        counters.record("dijkstra_sweeps")
        table = compute()
        if config.enabled():
            self._shortest[key] = table
        return table

    def __repr__(self) -> str:
        return (
            f"GraphIndex(classes={len(self.class_nodes)}, "
            f"cached_roots={len(self._shortest)})"
        )
