"""Tier-1 discovery invariants guarded by ``python -m repro bench``.

Candidate counts per paper benchmark scenario, recorded when the
shared-computation layer landed. ``repro.perf.bench`` recomputes them on
every run and fails on drift — a perf change must never alter *what* the
pipeline discovers, only how fast it discovers it. Update these numbers
deliberately (alongside the change that justifies them), never to make
a red bench green.
"""

from __future__ import annotations

#: ``"<dataset>/<case_id>" → number of candidates`` from ``discover()``.
EXPECTED_CANDIDATE_COUNTS: dict[str, int] = {
    "DBLP/dblp-article-in-journal": 1,
    "DBLP/dblp-author-of-publication": 1,
    "DBLP/dblp-author-in-journal": 1,
    "DBLP/dblp-paper-at-conference": 1,
    "DBLP/dblp-book-publisher": 1,
    "DBLP/dblp-author-at-conference": 1,
    "Mondial/mondial-city-in-country": 1,
    "Mondial/mondial-river-through-country": 1,
    "Mondial/mondial-language-spoken": 1,
    "Mondial/mondial-org-hq-city": 1,
    "Mondial/mondial-mountain-continent": 1,
    "Amalgam/amalgam-article-basic": 1,
    "Amalgam/amalgam-author-of-article": 1,
    "Amalgam/amalgam-author-journal": 1,
    "Amalgam/amalgam-techreport-institution": 2,
    "Amalgam/amalgam-author-trivial": 1,
    "Amalgam/amalgam-author-publisher": 1,
    "Amalgam/amalgam-author-institution": 5,
    "3Sdb/sdb-assay-in-experiment": 1,
    "3Sdb/sdb-measurement-levels": 1,
    "3Sdb/sdb-sample-gene": 1,
    "UT/ut-professor-teaches-course": 1,
    "UT/ut-course-project-of-person": 2,
    "Hotel/hotel-room-of-hotel": 1,
    "Hotel/hotel-guest-stays-at-hotel": 1,
    "Hotel/hotel-rate-of-room": 1,
    "Hotel/hotel-guest-rate": 1,
    "Hotel/hotel-trivial-hotel-property": 1,
    "Network/network-interface-of-device": 1,
    "Network/network-router-switch-merge": 1,
    "Network/network-device-at-site": 1,
    "Network/network-link-carrier": 1,
    "Network/network-vlan-membership": 1,
    "Network/network-vlan-link": 1,
}
