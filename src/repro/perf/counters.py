"""Lightweight instrumentation: named counters and per-phase wall time.

Counters are recorded into a stack of *frames*. The root frame lives for
the whole process and is shared by every thread; :func:`scope` pushes a
fresh frame onto the **calling thread's** stack, so one ``discover()``
call (or one batch run) reports exactly the events it caused even when
other threads — e.g. the ``repro.service`` worker pool — are running
their own scoped discoveries concurrently. Recording walks the calling
thread's stack (at most a few frames deep) plus one locked increment on
the shared root, so the hot-path cost stays at a few dict increments.

Thread-safety contract:

* scoped frames are thread-confined — a frame only ever sees events
  recorded by the thread that opened the scope;
* the root frame aggregates across all threads; its mutations and
  :meth:`PerfCounters.snapshot` both run under a per-instance lock, so
  ``GET /metrics`` can snapshot while workers record.

Counter names used across the codebase:

``dijkstra_sweeps``, ``dijkstra_cache_hits``, ``dijkstra_cache_misses``
    per-root shortest-path table computations vs :class:`GraphIndex` hits;
``tied_paths_dropped``
    tied shortest paths truncated by ``MAX_TIED_PATHS`` (satellite:
    truncation is no longer silent);
``lossy_paths_expanded``, ``lossy_paths_pruned``
    branch-and-bound search effort in ``minimally_lossy_paths``;
``path_consistency_cache_*``, ``tree_consistency_cache_*``
    :class:`CMReasoner` memo traffic;
``profile_cache_*``
    ``ConnectionProfile.of_path`` memo traffic;
``translate_cache_*``
    CSG → table-query translation memo traffic;
``stage_cache_hits``, ``stage_cache_misses``
    staged-engine artifact cache traffic in aggregate (see
    :mod:`repro.discovery.engine.cache`);
``stage_cache_hit_<stage>``, ``stage_cache_miss_<stage>``
    the same traffic broken down by stage name (the engine's
    ``STAGE_NAMES`` vocabulary plus ``source_search.unit`` for the
    fused block's per-target units and ``clio`` for the baseline
    engine);
``oracle_sweeps``, ``oracle_cache_hits``, ``oracle_cache_misses``
    distance-oracle table computations (backward Dijkstra sweeps) vs
    :class:`GraphIndex` oracle-table hits;
``astar_expansions``, ``bound_prunes``
    nodes expanded vs nodes cut by the oracle's admissible bounds in
    the targeted Steiner search and the lossy branch-and-bound;
``lossy_prefix_skips``
    lossy path prefixes rejected by the monotone consistency check
    before full enumeration;
``required_subtree_prunes``
    rewrite DFS subtrees skipped because no downstream rule choice
    could mention a required table;
``subtree_cache_hits``, ``subtree_cache_misses``
    rewrite prefix-state memo traffic (resumed vs re-unified body
    prefixes).
"""

from __future__ import annotations

import threading
import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterator


class PerfCounters:
    """One frame of counters plus per-phase wall-time accumulators.

    Instances are cheap thread-confined scratchpads by default; the
    module's shared root frame is the one instance that multiple
    threads hit concurrently, so every cross-thread touch point
    (increment, merge, snapshot, clear) takes the per-instance lock.
    Reading ``counts``/``timings`` directly is fine for thread-confined
    frames (scoped frames, test fixtures) but unsynchronised for the
    root — use :meth:`snapshot` for a consistent view of it.
    """

    __slots__ = ("counts", "timings", "_lock")

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()
        self.timings: Counter[str] = Counter()
        self._lock = threading.Lock()

    def add(self, name: str, amount: int = 1) -> None:
        """Locked increment — safe for frames shared across threads."""
        with self._lock:
            self.counts[name] += amount

    def add_time(self, name: str, seconds: float) -> None:
        """Locked wall-time accumulation (see :meth:`add`)."""
        with self._lock:
            self.timings[name] += seconds

    def snapshot(self) -> dict[str, int | float]:
        """A JSON-friendly view: counters plus ``time_<phase>_s`` keys."""
        with self._lock:
            counts = dict(self.counts)
            timings = dict(self.timings)
        data: dict[str, int | float] = {
            name: int(value) for name, value in sorted(counts.items())
        }
        for name, seconds in sorted(timings.items()):
            data[f"time_{name}_s"] = round(seconds, 6)
        return data

    def merge(self, other: "PerfCounters | dict[str, int | float]") -> None:
        """Fold another frame (or a snapshot dict) into this one."""
        if isinstance(other, PerfCounters):
            with other._lock:
                counts = dict(other.counts)
                timings = dict(other.timings)
            with self._lock:
                self.counts.update(counts)
                self.timings.update(timings)
            return
        with self._lock:
            for name, value in other.items():
                if name.startswith("time_") and name.endswith("_s"):
                    self.timings[name[len("time_") : -len("_s")]] += float(
                        value
                    )
                else:
                    self.counts[name] += int(value)

    def clear(self) -> None:
        """Drop every counter and timing (locked)."""
        with self._lock:
            self.counts.clear()
            self.timings.clear()

    def __repr__(self) -> str:
        return f"PerfCounters({dict(self.counts)}, {dict(self.timings)})"


#: Process-lifetime aggregate, shared by every thread.
_ROOT = PerfCounters()

_SCOPES = threading.local()


def _scope_stack() -> list[PerfCounters]:
    """The calling thread's stack of active scoped frames."""
    stack = getattr(_SCOPES, "stack", None)
    if stack is None:
        stack = []
        _SCOPES.stack = stack
    return stack


def record(name: str, amount: int = 1) -> None:
    """Increment ``name`` in the root and every active frame of this thread."""
    _ROOT.add(name, amount)
    for frame in _scope_stack():
        frame.counts[name] += amount


def record_time(name: str, seconds: float) -> None:
    _ROOT.add_time(name, seconds)
    for frame in _scope_stack():
        frame.timings[name] += seconds


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate the block's wall time under ``time_<name>_s``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record_time(name, time.perf_counter() - start)


@contextmanager
def scope() -> Iterator[PerfCounters]:
    """Push a fresh frame on this thread's stack; yields it for snapshots."""
    frame = PerfCounters()
    stack = _scope_stack()
    stack.append(frame)
    try:
        yield frame
    finally:
        stack.remove(frame)


def global_counters() -> PerfCounters:
    """The process-lifetime root frame (shared across threads)."""
    return _ROOT


def reset() -> None:
    """Clear the root frame (scoped frames are unaffected)."""
    _ROOT.clear()
