"""Lightweight instrumentation: named counters and per-phase wall time.

Counters are recorded into a stack of *frames*. The root frame lives for
the whole process; :func:`scope` pushes a fresh frame so one
``discover()`` call (or one batch run) can report exactly the events it
caused while outer scopes keep accumulating. Recording walks the stack,
which is at most a few frames deep, so the hot-path cost is two or three
dict increments.

Counter names used across the codebase:

``dijkstra_sweeps``, ``dijkstra_cache_hits``, ``dijkstra_cache_misses``
    per-root shortest-path table computations vs :class:`GraphIndex` hits;
``tied_paths_dropped``
    tied shortest paths truncated by ``MAX_TIED_PATHS`` (satellite:
    truncation is no longer silent);
``lossy_paths_expanded``, ``lossy_paths_pruned``
    branch-and-bound search effort in ``minimally_lossy_paths``;
``path_consistency_cache_*``, ``tree_consistency_cache_*``
    :class:`CMReasoner` memo traffic;
``profile_cache_*``
    ``ConnectionProfile.of_path`` memo traffic;
``translate_cache_*``
    CSG → table-query translation memo traffic.
"""

from __future__ import annotations

import time
from collections import Counter
from contextlib import contextmanager
from typing import Iterator


class PerfCounters:
    """One frame of counters plus per-phase wall-time accumulators."""

    __slots__ = ("counts", "timings")

    def __init__(self) -> None:
        self.counts: Counter[str] = Counter()
        self.timings: Counter[str] = Counter()

    def snapshot(self) -> dict[str, int | float]:
        """A JSON-friendly view: counters plus ``time_<phase>_s`` keys."""
        data: dict[str, int | float] = {
            name: int(value) for name, value in sorted(self.counts.items())
        }
        for name, seconds in sorted(self.timings.items()):
            data[f"time_{name}_s"] = round(seconds, 6)
        return data

    def merge(self, other: "PerfCounters | dict[str, int | float]") -> None:
        """Fold another frame (or a snapshot dict) into this one."""
        if isinstance(other, PerfCounters):
            self.counts.update(other.counts)
            self.timings.update(other.timings)
            return
        for name, value in other.items():
            if name.startswith("time_") and name.endswith("_s"):
                self.timings[name[len("time_") : -len("_s")]] += float(value)
            else:
                self.counts[name] += int(value)

    def __repr__(self) -> str:
        return f"PerfCounters({dict(self.counts)}, {dict(self.timings)})"


_STACK: list[PerfCounters] = [PerfCounters()]


def record(name: str, amount: int = 1) -> None:
    """Increment ``name`` in every active frame."""
    for frame in _STACK:
        frame.counts[name] += amount


def record_time(name: str, seconds: float) -> None:
    for frame in _STACK:
        frame.timings[name] += seconds


@contextmanager
def phase(name: str) -> Iterator[None]:
    """Accumulate the block's wall time under ``time_<name>_s``."""
    start = time.perf_counter()
    try:
        yield
    finally:
        record_time(name, time.perf_counter() - start)


@contextmanager
def scope() -> Iterator[PerfCounters]:
    """Push a fresh frame; yields it so callers can snapshot afterwards."""
    frame = PerfCounters()
    _STACK.append(frame)
    try:
        yield frame
    finally:
        _STACK.remove(frame)


def global_counters() -> PerfCounters:
    """The process-lifetime root frame."""
    return _STACK[0]


def reset() -> None:
    """Clear the root frame (scoped frames are unaffected)."""
    root = _STACK[0]
    root.counts.clear()
    root.timings.clear()
