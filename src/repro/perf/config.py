"""Global switch for the shared-computation layer.

Every cache in the performance layer (graph indexes, shortest-path
tables, consistency memos, translation memos) consults :func:`enabled`
before reading or writing. Disabling the layer — typically via the
:func:`disabled` context manager — restores the seed behaviour where
every ``discover()`` call recomputes from scratch, which is what the
equivalence tests and the cold-baseline benchmarks compare against.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

_ENABLED = True


def enabled() -> bool:
    """Whether the shared-computation caches are active."""
    return _ENABLED


def set_enabled(value: bool) -> None:
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with every perf cache bypassed (the seed code path)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous
