"""Global switch and sizing knobs for the shared-computation layer.

Every cache in the performance layer (graph indexes, shortest-path
tables, consistency memos, translation memos, the staged engine's stage
cache) consults :func:`enabled` before reading or writing. Disabling the
layer — typically via the :func:`disabled` context manager — restores
the seed behaviour where every ``discover()`` call recomputes from
scratch, which is what the equivalence tests and the cold-baseline
benchmarks compare against.

Cache *sizes* are owned here too. Each memo cache has a module default
(:data:`DEFAULT_CACHE_SIZES`) and consults :func:`cache_size` at its
bound check, so a run can override a size without touching the cache
module: :class:`~repro.discovery.options.DiscoveryOptions` carries
``profile_cache_size`` / ``translation_cache_size`` /
``stage_cache_size`` fields (``None`` = keep the default, so default
options still serialise to ``()`` and existing scenario fingerprints
stay stable), and ``SemanticMapper.discover`` installs them for the
run's dynamic extent via :func:`cache_size_overrides`. Overrides are
contextvar-scoped: concurrent service jobs with different sizing never
see each other's values.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator

_ENABLED = True

#: Default entry bounds per cache, by the name each cache passes to
#: :func:`cache_size`. ``None`` means unbounded (the translation memo is
#: per-semantics and dies with its owner, so it defaults to unbounded).
DEFAULT_CACHE_SIZES: dict[str, int | None] = {
    "profile": 8192,
    "translation": None,
    "stage": 512,
    # Prefix-state entries of the rewrite subtree memo (per plan);
    # ``DiscoveryOptions.subtree_cache_size`` overrides per run, 0
    # disables the memo entirely.
    "subtree": 2048,
}

_SIZE_OVERRIDES: ContextVar[tuple[tuple[str, int], ...]] = ContextVar(
    "repro_perf_cache_size_overrides", default=()
)

#: Contextvar gate for the distance-oracle search guidance (backward
#: distance tables, A*-pruned Dijkstra, lossy lower bounds). Defaults to
#: on; ``DiscoveryOptions.distance_oracle`` installs a per-run override.
_DISTANCE_ORACLE: ContextVar[bool] = ContextVar(
    "repro_perf_distance_oracle", default=True
)


def enabled() -> bool:
    """Whether the shared-computation caches are active."""
    return _ENABLED


def distance_oracle_enabled() -> bool:
    """Whether oracle-guided search (A* pruning, lossy bounds) is active.

    Follows the global perf switch: with the layer disabled the search
    runs the seed code path, blind expansion included. Both modes are
    output-equivalent — the oracle only prunes work that provably cannot
    contribute to the result.
    """
    return _ENABLED and _DISTANCE_ORACLE.get()


@contextmanager
def distance_oracle(active: bool) -> Iterator[None]:
    """Override the distance-oracle gate for the block's dynamic extent."""
    token = _DISTANCE_ORACLE.set(bool(active))
    try:
        yield
    finally:
        _DISTANCE_ORACLE.reset(token)


def set_enabled(value: bool) -> None:
    global _ENABLED
    _ENABLED = bool(value)


@contextmanager
def disabled() -> Iterator[None]:
    """Run a block with every perf cache bypassed (the seed code path)."""
    global _ENABLED
    previous = _ENABLED
    _ENABLED = False
    try:
        yield
    finally:
        _ENABLED = previous


def cache_size(name: str) -> int | None:
    """The effective entry bound of cache ``name`` in this context.

    ``None`` means unbounded; ``0`` (meaningful only for the stage
    cache) disables the cache for the current run.
    """
    for key, value in _SIZE_OVERRIDES.get():
        if key == name:
            return value
    return DEFAULT_CACHE_SIZES.get(name)


@contextmanager
def cache_size_overrides(**sizes: int) -> Iterator[None]:
    """Install per-cache entry bounds for the block's dynamic extent.

    Merges over any outer overrides; unknown names are accepted (a
    cache that never consults them simply never sees them).
    """
    merged = dict(_SIZE_OVERRIDES.get())
    merged.update(sizes)
    token = _SIZE_OVERRIDES.set(tuple(sorted(merged.items())))
    try:
        yield
    finally:
        _SIZE_OVERRIDES.reset(token)
