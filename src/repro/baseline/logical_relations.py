"""Logical relations: the RIC-based technique's building blocks.

Following the paper's description of Clio (Example 1.1 and Section 4), a
*logical relation* is the result of chasing one table's canonical atom
with the schema's referential integrity constraints — the maximal set of
"logically connected elements". For the bookstore source, chasing
``writes`` with ``r1``/``r2`` yields ``person ⋈ writes ⋈ book``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.queries.chase import (
    ChaseEngine,
    InclusionDependency,
    table_seed_atom,
)
from repro.queries.conjunctive import (
    Atom,
    DB_PREFIX,
    Term,
    VariableFactory,
)
from repro.relational.schema import Column, RelationalSchema


@dataclass(frozen=True)
class LogicalRelation:
    """The chased join expression rooted at one table."""

    schema_name: str
    root_table: str
    atoms: tuple[Atom, ...]

    def tables(self) -> tuple[str, ...]:
        """Tables mentioned, in chase order (root first)."""
        result: dict[str, None] = {}
        for atom in self.atoms:
            result.setdefault(atom.bare_predicate)
        return tuple(result)

    def atoms_of_table(self, table_name: str) -> tuple[Atom, ...]:
        return tuple(
            atom
            for atom in self.atoms
            if atom.bare_predicate == table_name
        )

    def covers_column(self, column: Column, schema: RelationalSchema) -> bool:
        return bool(self.terms_for_column(column, schema))

    def terms_for_column(
        self, column: Column, schema: RelationalSchema
    ) -> tuple[Term, ...]:
        """The terms realizing ``column`` in each atom of its table."""
        if not schema.has_column(column):
            return ()
        table = schema.table(column.table)
        position = table.columns.index(column.name)
        return tuple(
            atom.terms[position] for atom in self.atoms_of_table(column.table)
        )

    def __str__(self) -> str:
        joined = " ⋈ ".join(str(atom) for atom in self.atoms)
        return f"LR({self.root_table}): {joined}"


def compute_logical_relations(
    schema: RelationalSchema, max_depth: int = 8
) -> tuple[LogicalRelation, ...]:
    """One logical relation per table of ``schema``, via the chase.

    The chase follows every RIC as long as it is not already satisfied;
    ``max_depth`` bounds cyclic schemas the standard way.
    """
    dependencies = [
        InclusionDependency.from_ric(ric, schema, DB_PREFIX)
        for ric in schema.rics
    ]
    engine = ChaseEngine(dependencies, max_depth=max_depth)
    relations = []
    for table_name in schema.table_names():
        fresh = VariableFactory(prefix=f"_{table_name}_v")
        seed = table_seed_atom(schema, table_name, DB_PREFIX)
        atoms = engine.chase([seed], fresh)
        relations.append(LogicalRelation(schema.name, table_name, atoms))
    return tuple(relations)
