"""The RIC-based mapping technique (the paper's baseline, Section 4).

For each pair of one source and one target logical relation, the
correspondences whose source column occurs in the source relation and
whose target column occurs in the target relation are *covered*; every
pair covering at least one correspondence yields a mapping candidate
⟨S, T, 𝓛⟩ — exactly how Example 1.1 derives ``M1``–``M4``.

Per the paper's methodology, a trimming heuristic first removes
unnecessary joins: atoms that neither carry a corresponded column nor are
needed to keep the join connected (also described in Fuxman et al.,
VLDB'06).
"""

from __future__ import annotations

import itertools
import time

from repro.correspondences import Correspondence, CorrespondenceSet
from repro.baseline.logical_relations import (
    LogicalRelation,
    compute_logical_relations,
)
from repro.discovery.mapper import DiscoveryResult
from repro.mappings.expression import (
    MappingCandidate,
    deduplicate_candidates,
)
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Term,
    Variable,
)
from repro.relational.schema import RelationalSchema


def trim_unnecessary_joins(
    atoms: tuple[Atom, ...], needed_terms: frozenset[Term]
) -> tuple[Atom, ...]:
    """Drop leaf atoms that add no corresponded attributes.

    An atom is removable when it carries no needed term and shares
    variables with at most one other remaining atom (so removing it never
    disconnects the join). Applied to fixpoint.
    """
    remaining = list(atoms)
    changed = True
    while changed and len(remaining) > 1:
        changed = False
        for index, atom in enumerate(remaining):
            terms = set(atom.terms)
            if terms & needed_terms:
                continue
            neighbours = 0
            for other_index, other in enumerate(remaining):
                if other_index == index:
                    continue
                if terms & set(other.terms):
                    neighbours += 1
            if neighbours <= 1:
                remaining.pop(index)
                changed = True
                break
    return tuple(remaining)


class RICBasedMapper:
    """Clio-style mapping generation from schemas and constraints alone."""

    def __init__(
        self,
        source_schema: RelationalSchema,
        target_schema: RelationalSchema,
        correspondences: CorrespondenceSet,
        trim: bool = True,
        max_depth: int = 8,
    ) -> None:
        correspondences.validate(source_schema, target_schema)
        self.source_schema = source_schema
        self.target_schema = target_schema
        self.correspondences = correspondences
        self.trim = trim
        self.max_depth = max_depth

    def discover(self) -> DiscoveryResult:
        start = time.perf_counter()
        source_relations = compute_logical_relations(
            self.source_schema, self.max_depth
        )
        target_relations = compute_logical_relations(
            self.target_schema, self.max_depth
        )
        candidates: list[MappingCandidate] = []
        for source_lr, target_lr in itertools.product(
            source_relations, target_relations
        ):
            candidate = self._pair(source_lr, target_lr)
            if candidate is not None:
                candidates.append(candidate)
        candidates = deduplicate_candidates(candidates, criterion="connection")
        candidates.sort(key=lambda c: (-len(c.covered), str(c)))
        elapsed = time.perf_counter() - start
        return DiscoveryResult(candidates, elapsed)

    # ------------------------------------------------------------------
    # Pairing
    # ------------------------------------------------------------------
    def _pair(
        self, source_lr: LogicalRelation, target_lr: LogicalRelation
    ) -> MappingCandidate | None:
        covered: list[Correspondence] = []
        source_head: list[Term] = []
        target_head: list[Term] = []
        for correspondence in self.correspondences:
            source_terms = source_lr.terms_for_column(
                correspondence.source, self.source_schema
            )
            target_terms = target_lr.terms_for_column(
                correspondence.target, self.target_schema
            )
            if not source_terms or not target_terms:
                continue
            covered.append(correspondence)
            source_head.append(source_terms[0])
            target_head.append(target_terms[0])
        if not covered:
            return None
        source_atoms = source_lr.atoms
        target_atoms = target_lr.atoms
        if self.trim:
            source_atoms = trim_unnecessary_joins(
                source_atoms, frozenset(source_head)
            )
            target_atoms = trim_unnecessary_joins(
                target_atoms, frozenset(target_head)
            )
        return MappingCandidate(
            ConjunctiveQuery(source_head, source_atoms, "ans"),
            ConjunctiveQuery(target_head, target_atoms, "ans"),
            tuple(covered),
            method="ric",
            notes=f"{source_lr.root_table}→{target_lr.root_table}",
        )


def discover_ric_mappings(
    source_schema: RelationalSchema,
    target_schema: RelationalSchema,
    correspondences: CorrespondenceSet,
    trim: bool = True,
) -> DiscoveryResult:
    """One-shot convenience wrapper around :class:`RICBasedMapper`."""
    return RICBasedMapper(
        source_schema, target_schema, correspondences, trim
    ).discover()
