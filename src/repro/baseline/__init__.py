"""The RIC-based baseline technique (Clio-style)."""

from repro.baseline.logical_relations import (
    LogicalRelation,
    compute_logical_relations,
)
from repro.baseline.clio import (
    RICBasedMapper,
    discover_ric_mappings,
    trim_unnecessary_joins,
)

__all__ = [
    "LogicalRelation",
    "compute_logical_relations",
    "RICBasedMapper",
    "discover_ric_mappings",
    "trim_unnecessary_joins",
]
