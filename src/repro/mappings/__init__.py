"""Mapping expressions: tgds, candidates, and data exchange."""

from repro.mappings.tgd import SourceToTargetTGD, align_queries
from repro.mappings.expression import (
    MappingCandidate,
    deduplicate_candidates,
    query_to_algebra,
    trim_redundant_joins,
)
from repro.mappings.exchange import certain_rows, exchange
from repro.mappings.sql import insert_sql, select_sql
from repro.mappings.serialize import dump_candidates, load_candidates
from repro.mappings.coverage import (
    ColumnCoverage,
    ColumnStatus,
    coverage_summary,
    target_coverage,
)
from repro.mappings.diff import MappingDiff, diff_candidates
from repro.mappings.verify import (
    VerificationReport,
    Violation,
    satisfies,
    tgd_violations,
    verify_mappings,
)
from repro.mappings.refinement import (
    optional_classes,
    optional_tables,
    outer_join_algebra,
)

__all__ = [
    "SourceToTargetTGD",
    "align_queries",
    "MappingCandidate",
    "deduplicate_candidates",
    "query_to_algebra",
    "trim_redundant_joins",
    "optional_classes",
    "optional_tables",
    "outer_join_algebra",
    "insert_sql",
    "dump_candidates",
    "ColumnCoverage",
    "ColumnStatus",
    "coverage_summary",
    "target_coverage",
    "MappingDiff",
    "diff_candidates",
    "load_candidates",
    "VerificationReport",
    "Violation",
    "satisfies",
    "tgd_violations",
    "verify_mappings",
    "select_sql",
    "certain_rows",
    "exchange",
]
