"""Mapping expressions: tgds, candidates, exchange, and the lifecycle algebra."""

from repro.mappings.tgd import SourceToTargetTGD, align_queries
from repro.mappings.expression import (
    MappingCandidate,
    MappingSet,
    candidates_of,
    deduplicate_candidates,
    query_to_algebra,
    trim_redundant_joins,
)
from repro.mappings.exchange import (
    certain_rows,
    exchange,
    isomorphic_instances,
    skolem_function,
)
from repro.mappings.algebra import (
    InversionReport,
    InversionResult,
    compose,
    contains,
    equivalent,
    implies,
    invert,
    minimize_mapping_set,
)
from repro.mappings.sql import insert_sql, select_sql
from repro.mappings.serialize import (
    dump_candidates,
    dump_mapping_set,
    load_candidates,
    load_mapping_set,
)
from repro.mappings.coverage import (
    ColumnCoverage,
    ColumnStatus,
    coverage_summary,
    target_coverage,
)
from repro.mappings.diff import MappingDiff, diff_candidates
from repro.mappings.verify import (
    VerificationReport,
    Violation,
    satisfies,
    tgd_violations,
    verify_mappings,
)
from repro.mappings.refinement import (
    optional_classes,
    optional_tables,
    outer_join_algebra,
)

__all__ = [
    "SourceToTargetTGD",
    "align_queries",
    "MappingCandidate",
    "MappingSet",
    "candidates_of",
    "deduplicate_candidates",
    "query_to_algebra",
    "trim_redundant_joins",
    "InversionReport",
    "InversionResult",
    "compose",
    "contains",
    "equivalent",
    "implies",
    "invert",
    "minimize_mapping_set",
    "optional_classes",
    "optional_tables",
    "outer_join_algebra",
    "insert_sql",
    "dump_candidates",
    "dump_mapping_set",
    "load_candidates",
    "load_mapping_set",
    "ColumnCoverage",
    "ColumnStatus",
    "coverage_summary",
    "target_coverage",
    "MappingDiff",
    "diff_candidates",
    "VerificationReport",
    "Violation",
    "satisfies",
    "tgd_violations",
    "verify_mappings",
    "select_sql",
    "certain_rows",
    "exchange",
    "isomorphic_instances",
    "skolem_function",
]
