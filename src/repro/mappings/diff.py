"""Diffing mapping sets — change review for evolving schemas.

Mapping sets live next to schemas and get regenerated when either side
changes; :func:`diff_candidates` reports what changed between two
generations: unchanged, added, and removed candidates, grouped under
covered-correspondence keys so near-misses sit next to each other.
Matching is *semantic* (chase-based tgd equivalence via
:func:`repro.mappings.algebra.equivalent`), so a regenerated candidate
that merely renamed variables or reordered joins does not show up as
churn. Rendering is byte-stable: groups and lines are sorted, never
emitted in candidate-set or dict order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.mappings.expression import MappingCandidate, candidates_of


def _covered_key(candidate: MappingCandidate) -> str:
    covered = ", ".join(sorted(str(c) for c in candidate.covered))
    return f"{{{covered}}}"


def _sorted_lines(
    candidates: Sequence[MappingCandidate], sign: str
) -> list[str]:
    """Stable rendering: group by covered key, sort within each group."""
    groups: dict[str, list[str]] = {}
    for candidate in candidates:
        groups.setdefault(_covered_key(candidate), []).append(
            str(candidate)
        )
    lines: list[str] = []
    for key in sorted(groups):
        for text in sorted(groups[key]):
            lines.append(f"  {sign} {text}")
    return lines


@dataclass(frozen=True)
class MappingDiff:
    """The outcome of comparing two candidate sets."""

    unchanged: tuple[MappingCandidate, ...]
    added: tuple[MappingCandidate, ...]
    removed: tuple[MappingCandidate, ...]

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def summary(self) -> str:
        return (
            f"{len(self.unchanged)} unchanged, "
            f"{len(self.added)} added, {len(self.removed)} removed"
        )

    def render(self) -> str:
        lines = [self.summary()]
        lines.extend(_sorted_lines(self.added, "+"))
        lines.extend(_sorted_lines(self.removed, "-"))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def diff_candidates(
    old: "Sequence[MappingCandidate] | Iterable[MappingCandidate]",
    new: "Sequence[MappingCandidate] | Iterable[MappingCandidate]",
) -> MappingDiff:
    """Compare two candidate sets (or :class:`MappingSet`\\ s) semantically.

    Matching is greedy one-to-one: each old candidate consumes at most
    one equivalent new candidate. Candidates count as unchanged when
    their tgds are logically equivalent *and* they cover the same
    correspondences — the same criterion semantic deduplication uses —
    so cosmetic regeneration differences never read as churn.
    """
    from repro.mappings.algebra import equivalent

    old_candidates = candidates_of(old)
    remaining = list(candidates_of(new))
    unchanged: list[MappingCandidate] = []
    removed: list[MappingCandidate] = []
    for candidate in old_candidates:
        match_index = next(
            (
                index
                for index, other in enumerate(remaining)
                if set(candidate.covered) == set(other.covered)
                and equivalent(candidate, other)
            ),
            None,
        )
        if match_index is None:
            removed.append(candidate)
        else:
            unchanged.append(candidate)
            remaining.pop(match_index)
    return MappingDiff(tuple(unchanged), tuple(remaining), tuple(removed))
