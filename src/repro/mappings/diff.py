"""Diffing mapping sets — change review for evolving schemas.

Mapping sets live next to schemas and get regenerated when either side
changes; :func:`diff_candidates` reports what changed between two
generations using the same identity criterion as the evaluation (the
paper's "same pair of connections"): unchanged, added, and removed
candidates, with covered-correspondence keys to group near-misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.mappings.expression import MappingCandidate


@dataclass(frozen=True)
class MappingDiff:
    """The outcome of comparing two candidate sets."""

    unchanged: tuple[MappingCandidate, ...]
    added: tuple[MappingCandidate, ...]
    removed: tuple[MappingCandidate, ...]

    @property
    def is_empty(self) -> bool:
        return not self.added and not self.removed

    def summary(self) -> str:
        return (
            f"{len(self.unchanged)} unchanged, "
            f"{len(self.added)} added, {len(self.removed)} removed"
        )

    def render(self) -> str:
        lines = [self.summary()]
        for candidate in self.added:
            lines.append(f"  + {candidate}")
        for candidate in self.removed:
            lines.append(f"  - {candidate}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def diff_candidates(
    old: Sequence[MappingCandidate],
    new: Sequence[MappingCandidate],
) -> MappingDiff:
    """Compare two candidate sets under mapping identity.

    Matching is greedy one-to-one: each old candidate consumes at most
    one identical new candidate.
    """
    remaining = list(new)
    unchanged: list[MappingCandidate] = []
    removed: list[MappingCandidate] = []
    for candidate in old:
        match_index = next(
            (
                index
                for index, other in enumerate(remaining)
                if candidate.same_mapping_as(other)
            ),
            None,
        )
        if match_index is None:
            removed.append(candidate)
        else:
            unchanged.append(candidate)
            remaining.pop(match_index)
    return MappingDiff(tuple(unchanged), tuple(remaining), tuple(removed))
