"""Mapping candidates: the objects both discovery methods produce.

A :class:`MappingCandidate` is the triple ⟨E₁, E₂, 𝓛_M⟩ of Section 3.1: a
source expression, a target expression, and the correspondences the pair
covers. Candidates compare by *signature* — the paper's "same pair of
connections" criterion: two candidates are the same mapping when their
source queries join the same tables the same way (equivalent as boolean
queries), likewise their target queries, and they cover the same
correspondences.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from repro.correspondences import Correspondence
from repro.queries.conjunctive import ConjunctiveQuery, Variable
from repro.queries.homomorphism import are_equivalent
from repro.mappings.tgd import SourceToTargetTGD, align_queries
from repro.relational.algebra import (
    AlgebraExpression,
    BaseRelation,
    NaturalJoin,
    Projection,
    Rename,
)
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class MappingCandidate:
    """⟨source expression, target expression, covered correspondences⟩.

    ``source_optional_tables`` carries the Section 6 outer-join hints:
    source tables realizing CM objects reached over min-cardinality-0
    edges, whose joins a data-exchange engine may want to treat as outer
    joins (see :mod:`repro.mappings.refinement`). The field never
    participates in candidate identity.
    """

    source_query: ConjunctiveQuery
    target_query: ConjunctiveQuery
    covered: tuple[Correspondence, ...]
    method: str = "semantic"
    notes: str = ""
    source_optional_tables: frozenset[str] = frozenset()

    def to_tgd(self, name: str = "M") -> SourceToTargetTGD:
        tgd = align_queries(self.source_query, self.target_query)
        return SourceToTargetTGD(tgd.source, tgd.target, name)

    # ------------------------------------------------------------------
    # Identity (the paper's evaluation criterion)
    # ------------------------------------------------------------------
    def boolean_source(self) -> ConjunctiveQuery:
        return _booleanize(self.source_query)

    def boolean_target(self) -> ConjunctiveQuery:
        return _booleanize(self.target_query)

    def same_mapping_as(self, other: "MappingCandidate") -> bool:
        """Same pair of connections covering the same correspondences."""
        if set(self.covered) != set(other.covered):
            return False
        return are_equivalent(
            self.boolean_source(), other.boolean_source()
        ) and are_equivalent(self.boolean_target(), other.boolean_target())

    def __str__(self) -> str:
        covered = ", ".join(str(c) for c in self.covered)
        return (
            f"[{self.method}] {self.source_query}  ⇒  {self.target_query}"
            f"  covering {{{covered}}}"
        )


def _booleanize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The body of ``query`` as a boolean (closed) query."""
    return ConjunctiveQuery([], query.body, query.name)


@dataclass(frozen=True)
class MappingSet:
    """The first-class discovery artifact: an immutable set of candidates.

    Wraps the ranked candidate tuple together with the provenance that
    makes it reusable downstream — the content-addressed fingerprint of
    the scenario it was discovered from and (when known) the scenario
    id. ``MappingSet`` is what :func:`repro.discover` hands back, what
    :mod:`repro.mappings.algebra` composes and inverts, and what the
    versioned ``repro-mappings/1`` wire format serializes.

    The set iterates in rank order (best candidate first) and compares
    by value, so two discoveries of the same scenario produce equal
    sets.
    """

    candidates: tuple[MappingCandidate, ...] = ()
    fingerprint: str | None = None
    scenario_id: str | None = None

    @classmethod
    def of(
        cls,
        candidates: "MappingSet | MappingCandidate | Iterable[MappingCandidate]",
        *,
        fingerprint: str | None = None,
        scenario_id: str | None = None,
    ) -> "MappingSet":
        """Coerce candidates (or another set) into a :class:`MappingSet`."""
        if isinstance(candidates, MappingSet):
            return replace(
                candidates,
                fingerprint=fingerprint or candidates.fingerprint,
                scenario_id=scenario_id or candidates.scenario_id,
            )
        if isinstance(candidates, MappingCandidate):
            candidates = (candidates,)
        return cls(
            candidates=tuple(candidates),
            fingerprint=fingerprint,
            scenario_id=scenario_id,
        )

    def __iter__(self) -> Iterator[MappingCandidate]:
        return iter(self.candidates)

    def __len__(self) -> int:
        return len(self.candidates)

    def __bool__(self) -> bool:
        return bool(self.candidates)

    def __getitem__(self, index: int) -> MappingCandidate:
        return self.candidates[index]

    def best(self) -> MappingCandidate | None:
        """The top-ranked candidate, or ``None`` when empty."""
        return self.candidates[0] if self.candidates else None

    def to_tgds(self, prefix: str = "M") -> tuple[SourceToTargetTGD, ...]:
        """The candidates as named tgds (``M1``, ``M2``, ... by default)."""
        return tuple(
            candidate.to_tgd(f"{prefix}{index}")
            for index, candidate in enumerate(self.candidates, 1)
        )

    def render(self) -> str:
        """All candidates in the paper's tgd notation, one per line."""
        return "\n".join(tgd.render() for tgd in self.to_tgds())

    def dedup(self) -> "MappingSet":
        """This set with semantically equivalent candidates collapsed."""
        return replace(
            self, candidates=tuple(deduplicate_candidates(self.candidates))
        )

    def dumps(self, indent: int | None = 2) -> str:
        """Serialize in the versioned ``repro-mappings/1`` format."""
        from repro.mappings.serialize import dump_mapping_set

        return dump_mapping_set(self, indent=indent)

    @classmethod
    def loads(cls, text: str) -> "MappingSet":
        """Parse a ``repro-mappings/1`` document."""
        from repro.mappings.serialize import load_mapping_set

        return load_mapping_set(text)


def candidates_of(
    mapping: MappingSet | MappingCandidate | Iterable[MappingCandidate],
) -> tuple[MappingCandidate, ...]:
    """Normalize any of the accepted mapping shapes to a candidate tuple.

    The algebra and diff entry points accept a :class:`MappingSet`, a
    bare candidate, or any iterable of candidates; this is the single
    coercion point.
    """
    if isinstance(mapping, MappingSet):
        return mapping.candidates
    if isinstance(mapping, MappingCandidate):
        return (mapping,)
    return tuple(mapping)


def deduplicate_candidates(
    candidates: Sequence[MappingCandidate],
    *,
    criterion: str = "semantic",
) -> list[MappingCandidate]:
    """Drop candidates equivalent (per ``criterion``) to an earlier one.

    ``criterion="semantic"`` (the default, what :meth:`MappingSet.dedup`
    and the lifecycle algebra use) is *logical equivalence of the tgds*,
    checked by chasing (:func:`repro.mappings.algebra.equivalent`) —
    head-sensitive, so two candidates that wire exports differently
    (``q(x, y)`` vs ``q(y, x)``) both survive even though their bodies
    are boolean-equivalent. Candidates are bucketed by
    covered-correspondence set first: the paper treats the covered set
    as part of candidate identity, so candidates covering different
    correspondences are distinct artifacts and skip the (more
    expensive) chase check.

    ``criterion="connection"`` is the paper's within-one-discovery-run
    notion (:meth:`~MappingCandidate.same_mapping_as`): same pair of
    connections covering the same correspondences. Within a run the
    exports are determined by the correspondences, so alternative LAV
    rewritings of the same CSG pair — differing only in which
    corresponded table supplies a shared attribute — are one mapping.
    This is what the discovery engine's rank stage and the RIC baseline
    use; it is *not* sound for candidates of mixed provenance, where
    boolean-equivalent bodies can still wire exports differently.
    """
    if criterion == "connection":
        return _deduplicate_by_connection(candidates)
    if criterion != "semantic":
        raise ValueError(f"unknown dedup criterion: {criterion!r}")
    from repro.mappings.algebra import equivalent

    unique: list[MappingCandidate] = []
    buckets: dict[frozenset, list[MappingCandidate]] = {}
    for candidate in candidates:
        bucket = buckets.setdefault(frozenset(candidate.covered), [])
        if not any(equivalent(kept, candidate) for kept in bucket):
            bucket.append(candidate)
            unique.append(candidate)
    return unique


def _deduplicate_by_connection(
    candidates: Sequence[MappingCandidate],
) -> list[MappingCandidate]:
    """The paper's dedup: bucketed pairwise :meth:`same_mapping_as`.

    Candidates are bucketed by (covered set, source predicate set,
    target predicate set) before the pairwise equivalence checks: a
    homomorphism maps atoms predicate-preservingly, so mutually
    contained queries have equal predicate sets — candidates in
    different buckets are provably distinct and skip the check.
    """
    unique: list[MappingCandidate] = []
    buckets: dict[tuple, list[MappingCandidate]] = {}
    for candidate in candidates:
        key = (
            frozenset(candidate.covered),
            frozenset(atom.predicate for atom in candidate.source_query.body),
            frozenset(atom.predicate for atom in candidate.target_query.body),
        )
        bucket = buckets.setdefault(key, [])
        if not any(candidate.same_mapping_as(kept) for kept in bucket):
            bucket.append(candidate)
            unique.append(candidate)
    return unique


def _tables_of(query: ConjunctiveQuery) -> frozenset[str]:
    return frozenset(atom.bare_predicate for atom in query.body)


def trim_redundant_joins(
    candidates: list[MappingCandidate],
) -> list[MappingCandidate]:
    """Drop candidates whose joins add nothing over a leaner sibling.

    The paper's unnecessary-join heuristic (applied to the RIC baseline in
    Section 4, and implicitly by Example 3.4's pruning): among candidates
    covering the same correspondences, a candidate joining a strict
    superset of another's tables — on both sides — introduces no new
    corresponded attributes and is removed.
    """
    survivors: list[MappingCandidate] = []
    for index, candidate in enumerate(candidates):
        dominated = False
        for other_index, other in enumerate(candidates):
            if index == other_index:
                continue
            if set(other.covered) != set(candidate.covered):
                continue
            source_sub = _tables_of(other.source_query) <= _tables_of(
                candidate.source_query
            )
            target_sub = _tables_of(other.target_query) <= _tables_of(
                candidate.target_query
            )
            strictly = (
                _tables_of(other.source_query)
                != _tables_of(candidate.source_query)
                or _tables_of(other.target_query)
                != _tables_of(candidate.target_query)
            )
            if source_sub and target_sub and strictly:
                dominated = True
                break
        if not dominated:
            survivors.append(candidate)
    return survivors


def query_to_algebra(
    query: ConjunctiveQuery, schema: RelationalSchema
) -> AlgebraExpression:
    """Convert a table-level CQ into a relational algebra expression.

    Each atom becomes a renamed base relation (columns renamed to the
    atom's variable names); shared variables join naturally; the head
    projects the exported variables. The result evaluates identically to
    :func:`repro.queries.datalog.evaluate_query` on any instance.
    """
    expression: AlgebraExpression | None = None
    for atom in query.body:
        table = schema.table(atom.bare_predicate)
        renaming = {}
        for column, term in zip(table.columns, atom.terms):
            if not isinstance(term, Variable):
                raise ValueError(
                    f"algebra conversion supports variable terms only, got "
                    f"{term} in {atom}"
                )
            if column != term.name:
                renaming[column] = term.name
        node: AlgebraExpression = BaseRelation(table.name)
        if renaming:
            node = Rename(node, renaming)
        expression = node if expression is None else NaturalJoin(expression, node)
    if expression is None:
        raise ValueError("cannot convert an empty query to algebra")
    head = [
        term.name for term in query.head_terms if isinstance(term, Variable)
    ]
    return Projection(expression, head)
