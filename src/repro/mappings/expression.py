"""Mapping candidates: the objects both discovery methods produce.

A :class:`MappingCandidate` is the triple ⟨E₁, E₂, 𝓛_M⟩ of Section 3.1: a
source expression, a target expression, and the correspondences the pair
covers. Candidates compare by *signature* — the paper's "same pair of
connections" criterion: two candidates are the same mapping when their
source queries join the same tables the same way (equivalent as boolean
queries), likewise their target queries, and they cover the same
correspondences.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.correspondences import Correspondence
from repro.queries.conjunctive import ConjunctiveQuery, Variable
from repro.queries.homomorphism import are_equivalent
from repro.mappings.tgd import SourceToTargetTGD, align_queries
from repro.relational.algebra import (
    AlgebraExpression,
    BaseRelation,
    NaturalJoin,
    Projection,
    Rename,
)
from repro.relational.schema import RelationalSchema


@dataclass(frozen=True)
class MappingCandidate:
    """⟨source expression, target expression, covered correspondences⟩.

    ``source_optional_tables`` carries the Section 6 outer-join hints:
    source tables realizing CM objects reached over min-cardinality-0
    edges, whose joins a data-exchange engine may want to treat as outer
    joins (see :mod:`repro.mappings.refinement`). The field never
    participates in candidate identity.
    """

    source_query: ConjunctiveQuery
    target_query: ConjunctiveQuery
    covered: tuple[Correspondence, ...]
    method: str = "semantic"
    notes: str = ""
    source_optional_tables: frozenset[str] = frozenset()

    def to_tgd(self, name: str = "M") -> SourceToTargetTGD:
        tgd = align_queries(self.source_query, self.target_query)
        return SourceToTargetTGD(tgd.source, tgd.target, name)

    # ------------------------------------------------------------------
    # Identity (the paper's evaluation criterion)
    # ------------------------------------------------------------------
    def boolean_source(self) -> ConjunctiveQuery:
        return _booleanize(self.source_query)

    def boolean_target(self) -> ConjunctiveQuery:
        return _booleanize(self.target_query)

    def same_mapping_as(self, other: "MappingCandidate") -> bool:
        """Same pair of connections covering the same correspondences."""
        if set(self.covered) != set(other.covered):
            return False
        return are_equivalent(
            self.boolean_source(), other.boolean_source()
        ) and are_equivalent(self.boolean_target(), other.boolean_target())

    def __str__(self) -> str:
        covered = ", ".join(str(c) for c in self.covered)
        return (
            f"[{self.method}] {self.source_query}  ⇒  {self.target_query}"
            f"  covering {{{covered}}}"
        )


def _booleanize(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The body of ``query`` as a boolean (closed) query."""
    return ConjunctiveQuery([], query.body, query.name)


def deduplicate_candidates(
    candidates: list[MappingCandidate],
) -> list[MappingCandidate]:
    """Drop candidates equal (per :meth:`same_mapping_as`) to an earlier one.

    Candidates are bucketed by (covered set, source predicate set,
    target predicate set) before the pairwise equivalence checks: a
    homomorphism maps atoms predicate-preservingly, so mutually
    contained queries have equal predicate sets — candidates in
    different buckets are provably distinct and skip the check.
    """
    unique: list[MappingCandidate] = []
    buckets: dict[tuple, list[MappingCandidate]] = {}
    for candidate in candidates:
        key = (
            frozenset(candidate.covered),
            frozenset(atom.predicate for atom in candidate.source_query.body),
            frozenset(atom.predicate for atom in candidate.target_query.body),
        )
        bucket = buckets.setdefault(key, [])
        if not any(candidate.same_mapping_as(kept) for kept in bucket):
            bucket.append(candidate)
            unique.append(candidate)
    return unique


def _tables_of(query: ConjunctiveQuery) -> frozenset[str]:
    return frozenset(atom.bare_predicate for atom in query.body)


def trim_redundant_joins(
    candidates: list[MappingCandidate],
) -> list[MappingCandidate]:
    """Drop candidates whose joins add nothing over a leaner sibling.

    The paper's unnecessary-join heuristic (applied to the RIC baseline in
    Section 4, and implicitly by Example 3.4's pruning): among candidates
    covering the same correspondences, a candidate joining a strict
    superset of another's tables — on both sides — introduces no new
    corresponded attributes and is removed.
    """
    survivors: list[MappingCandidate] = []
    for index, candidate in enumerate(candidates):
        dominated = False
        for other_index, other in enumerate(candidates):
            if index == other_index:
                continue
            if set(other.covered) != set(candidate.covered):
                continue
            source_sub = _tables_of(other.source_query) <= _tables_of(
                candidate.source_query
            )
            target_sub = _tables_of(other.target_query) <= _tables_of(
                candidate.target_query
            )
            strictly = (
                _tables_of(other.source_query)
                != _tables_of(candidate.source_query)
                or _tables_of(other.target_query)
                != _tables_of(candidate.target_query)
            )
            if source_sub and target_sub and strictly:
                dominated = True
                break
        if not dominated:
            survivors.append(candidate)
    return survivors


def query_to_algebra(
    query: ConjunctiveQuery, schema: RelationalSchema
) -> AlgebraExpression:
    """Convert a table-level CQ into a relational algebra expression.

    Each atom becomes a renamed base relation (columns renamed to the
    atom's variable names); shared variables join naturally; the head
    projects the exported variables. The result evaluates identically to
    :func:`repro.queries.datalog.evaluate_query` on any instance.
    """
    expression: AlgebraExpression | None = None
    for atom in query.body:
        table = schema.table(atom.bare_predicate)
        renaming = {}
        for column, term in zip(table.columns, atom.terms):
            if not isinstance(term, Variable):
                raise ValueError(
                    f"algebra conversion supports variable terms only, got "
                    f"{term} in {atom}"
                )
            if column != term.name:
                renaming[column] = term.name
        node: AlgebraExpression = BaseRelation(table.name)
        if renaming:
            node = Rename(node, renaming)
        expression = node if expression is None else NaturalJoin(expression, node)
    if expression is None:
        raise ValueError("cannot convert an empty query to algebra")
    head = [
        term.name for term in query.head_terms if isinstance(term, Variable)
    ]
    return Projection(expression, head)
