"""Source-to-target tuple-generating dependencies (GLAV mappings).

The output formalism of both the semantic approach and the RIC-based
baseline (Section 1): ``∀x̄ (φ_S(x̄) → ∃ȳ ψ_T(x̄', ȳ))`` with ``φ_S`` a
conjunction over source tables and ``ψ_T`` over target tables, sharing
the exported variables. Rendering follows the paper's ``M1``–``M5``
notation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import QueryError
from repro.queries.conjunctive import (
    Atom,
    ConjunctiveQuery,
    Variable,
)


@dataclass(frozen=True)
class SourceToTargetTGD:
    """A GLAV mapping given by a source query and a target query.

    The two queries share head terms positionally: position ``i`` of the
    source head feeds position ``i`` of the target head. Variables
    existential in the target body (not exported) are the ``∃``-quantified
    ones of the tgd.
    """

    source: ConjunctiveQuery
    target: ConjunctiveQuery
    name: str = "M"

    def __post_init__(self) -> None:
        if len(self.source.head_terms) != len(self.target.head_terms):
            raise QueryError(
                "source and target queries must export the same number of "
                f"terms: {len(self.source.head_terms)} vs "
                f"{len(self.target.head_terms)}"
            )

    @property
    def exported_arity(self) -> int:
        return len(self.source.head_terms)

    def universal_variables(self) -> tuple[Variable, ...]:
        return self.source.body_variables()

    def existential_variables(self) -> tuple[Variable, ...]:
        exported = set(self.target.head_variables())
        return tuple(
            variable
            for variable in self.target.body_variables()
            if variable not in exported
        )

    def render(self) -> str:
        """The paper's notation, e.g.::

            M: ∀pname, bid.(person(pname) ∧ writes(pname, bid)
               → ∃x hasBookSoldAt(pname, x))
        """
        universal = ", ".join(v.name for v in self.universal_variables())
        source_body = " ∧ ".join(
            _strip(atom) for atom in sorted(self.source.body)
        )
        existential = ", ".join(
            v.name for v in self.existential_variables()
        )
        target_body = " ∧ ".join(
            _strip(atom) for atom in sorted(self.target.body)
        )
        head = f"∃{existential} " if existential else ""
        return (
            f"{self.name}: ∀{universal}.({source_body} → {head}{target_body})"
        )

    def __str__(self) -> str:
        return self.render()


def _strip(atom: Atom) -> str:
    args = ", ".join(str(term) for term in atom.terms)
    return f"{atom.bare_predicate}({args})"


def align_queries(
    source: ConjunctiveQuery, target: ConjunctiveQuery
) -> SourceToTargetTGD:
    """Build a tgd, renaming target variables so exports share names.

    The source and target queries are produced independently; this renames
    each target head variable to the source head variable at the same
    position (and freshens any clashing target body variable).
    """
    if len(source.head_terms) != len(target.head_terms):
        raise QueryError("cannot align queries of different head arity")
    renaming: dict[Variable, Variable] = {}
    for source_term, target_term in zip(source.head_terms, target.head_terms):
        if isinstance(target_term, Variable) and isinstance(
            source_term, Variable
        ):
            renaming.setdefault(target_term, source_term)
    # Freshen non-exported target variables that clash with source ones.
    source_variables = set(source.variables())
    for variable in target.variables():
        if variable in renaming:
            continue
        if variable in source_variables:
            fresh = Variable(f"{variable.name}_t")
            counter = 2
            while fresh in source_variables or fresh in renaming.values():
                fresh = Variable(f"{variable.name}_t{counter}")
                counter += 1
            renaming[variable] = fresh
    return SourceToTargetTGD(source, target.substitute(renaming))
