"""Outer-join refinement of discovered mappings (the paper's Section 6).

    "a more careful look at the tree provides hints about when joins
    should really be treated as outer-joins (e.g., when the minimum
    cardinality of an edge being traversed is 0, not 1); such information
    could be quite useful in computing more accurate mappings"

This module implements that future-work item: an s-tree edge whose
forward lower bound is 0 means instances of the parent may lack a
partner, so joining the tables realizing the child's subtree must not
drop those instances. :func:`optional_classes` reads the hints off a CSG,
:func:`optional_tables` projects them onto a table-level query, and
:func:`outer_join_algebra` builds an executable plan where optional
tables join with ``⟕``/``⟗`` instead of ``⋈`` — for Example 1.2 this
yields exactly the full outer join of ``programmer`` and ``engineer``
the paper asks for.
"""

from __future__ import annotations

from typing import Iterable

from repro.discovery.csg import CSG
from repro.exceptions import QueryError
from repro.queries.conjunctive import ConjunctiveQuery, Variable
from repro.relational.algebra import (
    AlgebraExpression,
    BaseRelation,
    FullOuterJoin,
    LeftOuterJoin,
    NaturalJoin,
    Projection,
    Rename,
)
from repro.relational.schema import RelationalSchema
from repro.semantics.lav import SchemaSemantics
from repro.semantics.stree import STreeNode


def optional_classes(csg: CSG) -> frozenset[str]:
    """CM classes reached through a min-cardinality-0 tree edge.

    The whole subtree below such an edge is optional: the anchor object
    exists without it.
    """
    children: dict[STreeNode, list[STreeNode]] = {}
    optional_roots: list[STreeNode] = []
    for edge in csg.tree.edges:
        children.setdefault(edge.parent, []).append(edge.child)
        if edge.cm_edge.forward_card.lower == 0:
            optional_roots.append(edge.child)
    result: set[str] = set()
    frontier = list(optional_roots)
    while frontier:
        node = frontier.pop()
        result.add(node.cm_node)
        frontier.extend(children.get(node, ()))
    return frozenset(result)


def optional_tables(
    query: ConjunctiveQuery,
    csg: CSG,
    semantics: SchemaSemantics,
) -> frozenset[str]:
    """Tables of ``query`` whose s-tree anchor is an optional class."""
    hints = optional_classes(csg)
    result = set()
    for atom in query.body:
        table = atom.bare_predicate
        if not semantics.has_tree(table):
            continue
        if semantics.tree(table).anchor.cm_node in hints:
            result.add(table)
    return frozenset(result)


def outer_join_algebra(
    query: ConjunctiveQuery,
    schema: RelationalSchema,
    optional: Iterable[str] = (),
) -> AlgebraExpression:
    """An algebra plan joining optional tables with outer joins.

    Mandatory atoms natural-join first; optional atoms then attach with a
    left outer join — unless *every* atom is optional, in which case they
    merge pairwise with full outer joins (the Example 1.2 situation: all
    subclass tables are optional with respect to the superclass object).
    """
    optional_set = set(optional)
    nodes: list[tuple[bool, AlgebraExpression]] = []
    for atom in query.body:
        table = schema.table(atom.bare_predicate)
        renaming = {}
        for column, term in zip(table.columns, atom.terms):
            if not isinstance(term, Variable):
                raise QueryError(
                    f"outer-join conversion supports variable terms only: "
                    f"{atom}"
                )
            if column != term.name:
                renaming[column] = term.name
        node: AlgebraExpression = BaseRelation(table.name)
        if renaming:
            node = Rename(node, renaming)
        nodes.append((atom.bare_predicate in optional_set, node))
    if not nodes:
        raise QueryError("cannot convert an empty query")
    mandatory = [node for is_optional, node in nodes if not is_optional]
    optionals = [node for is_optional, node in nodes if is_optional]
    if mandatory:
        plan = mandatory[0]
        for node in mandatory[1:]:
            plan = NaturalJoin(plan, node)
        for node in optionals:
            plan = LeftOuterJoin(plan, node)
    else:
        plan = optionals[0]
        for node in optionals[1:]:
            plan = FullOuterJoin(plan, node)
    head = [
        term.name for term in query.head_terms if isinstance(term, Variable)
    ]
    return Projection(plan, head)
